// §5 future-work features working together over real HTTP bytes:
//
//   * popularity volumes top up piggybacks for a brand-new proxy that has
//     no co-access history with the server yet;
//   * the proxy counts cache hits attributable to each piggybacked volume
//     and reports them back with `Piggy-hits`;
//   * the server aggregates usefulness per volume with no per-proxy state
//     — input for tuning volume construction.
//
// Build & run:  ./build/examples/feedback_demo
#include <cstdio>

#include "core/feedback.h"
#include "http/piggy_headers.h"
#include "proxy/cache.h"
#include "proxy/coherency.h"
#include "server/origin.h"
#include "util/rng.h"
#include "volume/directory.h"
#include "volume/popularity.h"

using namespace piggyweb;

int main() {
  util::Rng rng(0xFEED);
  trace::SiteShape shape;
  shape.host = "www.example.org";
  shape.pages = 30;
  shape.top_dirs = 3;
  const trace::SiteModel site(shape, 10 * util::kDay, rng);

  util::InternTable paths;
  volume::DirectoryVolumeConfig dvc;
  dvc.level = 1;
  volume::DirectoryVolumes directory(dvc);
  directory.bind_paths(paths);
  volume::PopularityVolumeConfig pop_config;
  pop_config.top_n = 5;
  pop_config.min_primary = 2;
  volume::PopularityVolumes volumes(pop_config, directory);
  server::OriginServer origin(site, volumes, paths);

  proxy::CacheConfig cache_config;
  cache_config.freshness_interval = 600;
  proxy::ProxyCache cache(cache_config);
  proxy::CoherencyAgent coherency(cache);
  core::HitFeedback feedback;
  util::InternTable proxy_paths;
  const auto server_id = proxy_paths.intern(site.host());

  // Warm the popular volume: other proxies hammer the top pages.
  const auto& pages = site.pages_by_popularity();
  for (int i = 0; i < 40; ++i) {
    http::Request request;
    request.target = site.resource(pages[static_cast<std::size_t>(i) % 3]).path;
    core::ProxyFilter filter;
    http::attach_filter(request, filter);
    origin.handle(request, {100 + i}, /*source=*/2);
  }
  std::printf("popular volume after warm-up traffic:\n");
  for (const auto res : volumes.popular()) {
    std::printf("  %s\n", std::string(paths.str(res)).c_str());
  }

  // A brand-new proxy's very first request: the directory volume for this
  // cold corner is thin, so the popular volume tops the piggyback up.
  http::Request first;
  first.target = site.resource(pages[pages.size() - 1]).path;  // unpopular
  core::ProxyFilter filter;
  filter.max_elements = 8;
  http::attach_filter(first, filter);
  const auto response = origin.handle(first, {200}, /*source=*/7);

  const auto piggyback = http::extract_pvolume(response, proxy_paths);
  if (!piggyback) {
    std::printf("no piggyback received\n");
    return 1;
  }
  std::printf("\nfirst-contact piggyback (volume %u, %zu elements):\n",
              piggyback->volume, piggyback->elements.size());
  for (const auto& element : piggyback->elements) {
    std::printf("  %s\n",
                std::string(proxy_paths.str(element.resource)).c_str());
  }
  coherency.process(server_id, *piggyback, {200});
  feedback.note_piggyback(server_id, *piggyback);

  // The proxy prefetches the piggybacked resources and later serves three
  // client requests from cache — hits attributable to that volume.
  for (const auto& element : piggyback->elements) {
    cache.insert({server_id, element.resource}, element.size,
                 element.last_modified, {201});
  }
  for (int i = 0; i < 3; ++i) {
    const auto& element =
        piggyback->elements[static_cast<std::size_t>(i) %
                            piggyback->elements.size()];
    if (cache.lookup({server_id, element.resource}, {300 + i}) ==
        proxy::LookupOutcome::kFreshHit) {
      feedback.note_cache_hit(server_id, element.resource);
    }
  }

  // The next request reports the tallies; the server aggregates them.
  http::Request next;
  next.target = site.resource(pages[0]).path;
  http::attach_filter(next, filter);
  http::attach_hits(next, feedback.drain(server_id));
  std::printf("\nnext request carries: Piggy-hits: %s\n",
              std::string(*next.headers.get("Piggy-hits")).c_str());
  origin.handle(next, {400}, /*source=*/7);

  std::printf("\nserver-side usefulness ranking:\n");
  for (const auto& entry : origin.feedback().ranked()) {
    std::printf("  volume %5u: %u cache hits reported\n", entry.volume,
                entry.hits);
  }
  return 0;
}

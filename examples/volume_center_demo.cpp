// Transparent volume center (§1, §5): a router on the proxy-server path
// maintains volumes and injects piggybacks for MANY servers at once, with
// none of the origins modified. This demo replays an AT&T-like client
// trace through a center and reports per-center effectiveness —
// the deployment story for incremental adoption.
//
// Build & run:  ./build/examples/volume_center_demo [--scale=<x>]
#include <cstdio>
#include <iostream>
#include <string>

#include "core/frequency.h"
#include "core/rpv.h"
#include "server/volume_center.h"
#include "sim/report.h"
#include "trace/profiles.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  double scale = 0.03;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::stod(arg.substr(8));
  }
  const auto workload = trace::generate(trace::att_client_profile(scale));
  const auto& trace = workload.trace;
  std::printf("client trace: %zu requests to %zu servers\n\n", trace.size(),
              trace.servers().size());

  volume::DirectoryVolumeConfig dvc;
  dvc.level = 1;
  server::VolumeCenter center(dvc, trace.paths());

  // Per-(source, server) RPV lists, exactly what a proxy would keep.
  core::RpvConfig rpv_config;
  rpv_config.timeout = 60;
  std::unordered_map<std::uint64_t, core::RpvList> rpv;
  core::MinIntervalEnable frequency(10);

  std::uint64_t mentions = 0;
  // Count how often a mentioned resource is requested by the same source
  // within 5 minutes (true predictions, loosely).
  std::unordered_map<std::uint64_t, util::Seconds> mentioned_at;
  std::uint64_t fulfilled = 0;

  for (const auto& req : trace.requests()) {
    const auto pair_key =
        (static_cast<std::uint64_t>(req.source) << 32) | req.server;

    core::ProxyFilter filter;
    filter.max_elements = 10;
    filter.enabled = frequency.should_enable(req.server, req.time);
    if (filter.enabled) {
      filter.rpv = rpv.try_emplace(pair_key, rpv_config)
                       .first->second.live(req.time);
    }

    const auto sr_key =
        (static_cast<std::uint64_t>(req.source) << 32) | req.path;
    if (const auto it = mentioned_at.find(sr_key);
        it != mentioned_at.end() && req.time.value - it->second <= 300) {
      ++fulfilled;
      mentioned_at.erase(it);
    }

    const auto message =
        center.observe(req.server, req.source, req.path, req.time, req.size,
                       req.last_modified, filter);
    if (message.empty()) continue;
    frequency.on_piggyback(req.server, req.time);
    rpv.try_emplace(pair_key, rpv_config)
        .first->second.note(message.volume, req.time);
    mentions += message.elements.size();
    for (const auto& element : message.elements) {
      mentioned_at[(static_cast<std::uint64_t>(req.source) << 32) |
                   element.resource] = req.time.value;
    }
  }

  const auto stats = center.stats();
  sim::Table table({"metric", "value"});
  table.row({"exchanges observed", sim::Table::count(stats.exchanges_observed)});
  table.row({"servers tracked", sim::Table::count(stats.servers_tracked)});
  table.row({"piggybacks injected",
             sim::Table::count(stats.piggybacks_injected)});
  table.row({"piggyback elements",
             sim::Table::count(stats.elements_injected)});
  table.row({"avg elements / injected piggyback",
             sim::Table::num(stats.piggybacks_injected
                                 ? static_cast<double>(
                                       stats.elements_injected) /
                                       static_cast<double>(
                                           stats.piggybacks_injected)
                                 : 0.0,
                             1)});
  table.row({"predictions fulfilled within 5 min",
             sim::Table::count(fulfilled)});
  table.print(std::cout);
  std::printf(
      "\none center covers all %zu origin servers with no server-side "
      "changes — volumes are learned from the traffic passing through, "
      "and frequency control + RPV lists bound the injected bytes "
      "(%llu mentions total).\n",
      trace.servers().size(), static_cast<unsigned long long>(mentions));
  return 0;
}

// The §2.3 protocol exchange, byte for byte.
//
// A proxy builds a GET with `TE: chunked` and a `Piggy-filter` header; the
// simulated origin answers with a chunked response whose trailer carries
// the `P-volume` piggyback; the proxy parses it back and applies it to its
// cache. The actual on-the-wire messages are printed, mirroring the
// paper's request/response listing.
//
// Build & run:  ./build/examples/http_exchange
#include <cstdio>
#include <string>

#include "http/date.h"
#include "http/message.h"
#include "http/piggy_headers.h"
#include "proxy/cache.h"
#include "proxy/coherency.h"
#include "proxy/filter_policy.h"
#include "server/origin.h"
#include "util/rng.h"
#include "util/strings.h"
#include "volume/directory.h"

using namespace piggyweb;

namespace {

void print_wire(const char* label, const std::string& bytes,
                std::size_t body_limit = 400) {
  std::printf("----- %s (%zu bytes) -----\n", label, bytes.size());
  if (bytes.size() <= body_limit) {
    std::printf("%s\n", bytes.c_str());
    return;
  }
  std::printf("%.*s\n... [%zu body bytes elided] ...\n%s\n",
              static_cast<int>(body_limit / 2),
              bytes.c_str(), bytes.size() - body_limit,
              bytes.substr(bytes.size() - body_limit / 2).c_str());
}

}  // namespace

int main() {
  // A small site with a "mafia" flavour, as in the paper's example.
  util::Rng rng(0x5160);
  trace::SiteShape shape;
  shape.host = "sig.com";
  shape.pages = 24;
  shape.top_dirs = 3;
  shape.images_per_page_mean = 2.0;
  const trace::SiteModel site(shape, 10 * util::kDay, rng);

  util::InternTable paths;
  volume::DirectoryVolumeConfig dvc;
  dvc.level = 1;
  volume::DirectoryVolumes volumes(dvc);
  volumes.bind_paths(paths);
  server::OriginServer origin(site, volumes, paths);

  proxy::CacheConfig cache_config;
  cache_config.freshness_interval = 600;
  proxy::ProxyCache cache(cache_config);
  proxy::FilterPolicyConfig fpc;
  fpc.base.max_elements = 10;
  fpc.rpv.timeout = 60;
  proxy::FilterPolicy filter_policy(fpc,
                                    std::make_unique<core::AlwaysEnable>());
  proxy::CoherencyAgent coherency(cache);
  util::InternTable proxy_paths;
  const auto server_id = proxy_paths.intern(site.host());

  // Warm the server's volume with one exchange, then show the second
  // request/response pair in full.
  const auto& pages = site.pages_by_popularity();
  const auto first = site.resource(pages[0]).path;
  std::string second;
  for (const auto p : pages) {
    const auto& candidate = site.resource(p).path;
    if (candidate != first &&
        util::directory_prefix(candidate, 1) ==
            util::directory_prefix(first, 1)) {
      second = candidate;
      break;
    }
  }
  if (second.empty()) second = site.resource(pages[1]).path;

  http::Request warmup;
  warmup.target = first;
  warmup.headers.add("Host", site.host());
  http::attach_filter(warmup, filter_policy.filter_for(server_id, {100}));
  origin.handle(warmup, {100}, 1);
  std::printf("warm-up: GET %s at t=100 (primes the level-1 volume)\n\n",
              first.c_str());

  // --- the exchange shown in the paper -------------------------------------
  http::Request request;
  request.target = second;
  request.headers.add("host", site.host());
  http::attach_filter(request, filter_policy.filter_for(server_id, {105}));
  const auto request_wire = request.serialize();
  print_wire("proxy -> server", request_wire);

  http::ParseError error;
  const auto at_server = http::parse_request(request_wire, error);
  if (!at_server) {
    std::printf("server failed to parse request: %s\n",
                error.message.c_str());
    return 1;
  }
  auto response = origin.handle(at_server->request, {105}, 1);
  const auto response_wire = response.serialize();
  print_wire("server -> proxy", response_wire);

  const auto at_proxy = http::parse_response(response_wire, error);
  if (!at_proxy) {
    std::printf("proxy failed to parse response: %s\n",
                error.message.c_str());
    return 1;
  }
  const auto& parsed = at_proxy->response;
  std::int64_t lm = -1;
  if (const auto lm_text = parsed.headers.get("Last-Modified")) {
    http::parse_http_date(*lm_text, lm);
  }
  const proxy::CacheKey key{server_id, proxy_paths.intern(second)};
  cache.insert(key, parsed.body.size(), lm, {105});

  if (const auto piggyback = http::extract_pvolume(parsed, proxy_paths)) {
    std::printf("\nproxy extracted piggyback: volume %u, %zu element(s)\n",
                piggyback->volume, piggyback->elements.size());
    for (const auto& element : piggyback->elements) {
      std::printf("  %s  (%llu bytes, Last-Modified %s)\n",
                  std::string(proxy_paths.str(element.resource)).c_str(),
                  static_cast<unsigned long long>(element.size),
                  http::format_http_date(element.last_modified).c_str());
    }
    coherency.process(server_id, *piggyback, {105});
    filter_policy.on_piggyback(server_id, piggyback->volume, {105});
    std::printf(
        "coherency: %llu refreshed, %llu invalidated, %llu not cached\n",
        static_cast<unsigned long long>(coherency.stats().refreshed),
        static_cast<unsigned long long>(coherency.stats().invalidated),
        static_cast<unsigned long long>(coherency.stats().not_cached));
  } else {
    std::printf("\nno piggyback on this response\n");
  }

  // A third request shows the RPV list suppressing the repeat piggyback.
  http::Request third;
  third.target = first;
  third.headers.add("host", site.host());
  http::attach_filter(third, filter_policy.filter_for(server_id, {110}));
  std::printf("\nthird request carries the RPV filter:\n  Piggy-filter: %s\n",
              std::string(*third.headers.get("Piggy-filter")).c_str());
  auto third_response = origin.handle(third, {110}, 1);
  util::InternTable scratch;
  std::printf("server piggybacked again? %s\n",
              http::extract_pvolume(third_response, scratch) ? "yes"
                                                             : "no (RPV)");
  return 0;
}

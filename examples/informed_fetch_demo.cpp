// Informed fetching (§4): piggybacked size attributes let the proxy
// schedule its fetch queue shortest-first over a congested link, so users
// asking for small text aren't stuck behind big downloads ("users
// requesting small files do not have to wait long").
//
// The demo drains a burst of heavy-tailed fetches over a 128 KB/s link
// under FIFO (no size knowledge) vs shortest-first (piggyback-informed)
// and reports the waiting-time distribution for each.
//
// Build & run:  ./build/examples/informed_fetch_demo
#include <cstdio>
#include <iostream>

#include "proxy/informed_fetch.h"
#include "sim/report.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace piggyweb;

int main() {
  util::Rng rng(0xF47C);
  // A burst: 300 requests arriving over 60 seconds; lognormal body sizes
  // with a Pareto tail (a few multi-megabyte downloads).
  std::vector<proxy::PendingFetch> fetches;
  for (std::uint64_t id = 0; id < 300; ++id) {
    const double arrival = rng.uniform() * 60.0;
    std::uint64_t bytes =
        static_cast<std::uint64_t>(rng.lognormal(8.5, 1.2));
    if (rng.chance(0.04)) {
      bytes = static_cast<std::uint64_t>(
          rng.pareto(1.1, 512.0 * 1024, 8.0 * 1024 * 1024));
    }
    fetches.push_back({id, bytes, arrival});
  }
  constexpr double kBandwidth = 128.0 * 1024;

  sim::Table table({"discipline", "mean wait (s)", "mean completion (s)",
                    "p50 completion", "p90 completion", "max (s)"});
  for (const auto discipline : {proxy::FetchDiscipline::kFifo,
                                proxy::FetchDiscipline::kShortestFirst}) {
    const auto result =
        proxy::schedule_fetches(fetches, kBandwidth, discipline);
    util::Quantiles completions;
    for (const auto c : result.completion_by_id) completions.add(c);
    table.row({proxy::discipline_name(discipline),
               sim::Table::num(result.mean_wait, 2),
               sim::Table::num(result.mean_completion, 2),
               sim::Table::num(completions.quantile(0.5), 2),
               sim::Table::num(completions.quantile(0.9), 2),
               sim::Table::num(result.max_completion, 2)});
  }
  table.print(std::cout);
  std::printf(
      "\nreading: with piggybacked sizes the proxy runs shortest-first — "
      "median completion collapses while only the few largest transfers "
      "wait longer (the max row). Without the metadata it is stuck with "
      "FIFO.\n");
  return 0;
}

// Prefetching study (§4): trade bandwidth for latency on a Sun-like
// workload, sweeping the precision of the prediction source (probability
// threshold) and showing the recall/futility balance the paper reports
// ("30% of requests prefetched at 15% futile fetches ... 70% prefetching
// incurs 50% futile").
//
// Build & run:  ./build/examples/prefetch_study [--scale=<x>]
#include <cstdio>
#include <iostream>
#include <string>

#include "sim/end_to_end.h"
#include "sim/report.h"
#include "trace/profiles.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  double scale = 0.008;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::stod(arg.substr(8));
  }
  const auto workload = trace::generate(trace::sun_profile(scale));
  std::printf("workload: sun-like, %zu requests\n\n", workload.trace.size());

  volume::PairCounterConfig pcc;
  const auto counts =
      volume::PairCounterBuilder(pcc).build(workload.trace, 10);

  sim::EndToEndConfig base;
  base.cache.capacity_bytes = 48ULL * 1024 * 1024;
  base.base_filter.max_elements = 20;
  base.enable_coherency = true;
  base.rpv.timeout = 60;

  // Baseline: coherency only, probability volumes at p_t = 0.2.
  volume::ProbabilityVolumeConfig base_pvc;
  base_pvc.probability_threshold = 0.2;
  base_pvc.effectiveness_threshold = 0.2;
  const auto base_volumes =
      volume::build_probability_volumes(workload.trace, counts, base_pvc);
  auto off_config = base;
  off_config.probability_volumes = &base_volumes;
  const auto baseline =
      sim::EndToEndSimulator(workload, off_config).run();

  sim::Table table({"p_t", "prefetches", "useful", "futile %",
                    "bandwidth increase", "fresh hit rate",
                    "mean latency (s)"});
  table.row({"off", "0", "0", "-", "-",
             sim::Table::pct(baseline.cache.fresh_hit_rate()),
             sim::Table::num(baseline.mean_user_latency(), 3)});

  for (const double pt : {0.1, 0.2, 0.4}) {
    volume::ProbabilityVolumeConfig pvc;
    pvc.probability_threshold = pt;
    pvc.effectiveness_threshold = 0.2;
    const auto volumes =
        volume::build_probability_volumes(workload.trace, counts, pvc);

    auto config = base;
    config.probability_volumes = &volumes;
    config.enable_prefetch = true;
    config.prefetch.max_resource_bytes = 256 * 1024;
    config.prefetch.useful_window = 300;
    const auto result = sim::EndToEndSimulator(workload, config).run();

    const double bw = baseline.body_bytes == 0
                          ? 0.0
                          : static_cast<double>(result.body_bytes) /
                                    static_cast<double>(
                                        baseline.body_bytes) -
                                1.0;
    table.row({sim::Table::num(pt, 2),
               sim::Table::count(result.prefetch.issued),
               sim::Table::count(result.prefetch.useful),
               sim::Table::pct(result.prefetch.futile_fraction()),
               sim::Table::pct(bw),
               sim::Table::pct(result.cache.fresh_hit_rate()),
               sim::Table::num(result.mean_user_latency(), 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nreading: looser thresholds prefetch more (higher hit rate, lower "
      "latency) at the cost of more futile transfers — the paper's "
      "recall/precision dial. Futile fetches waste the bandwidth shown "
      "in the increase column.\n");
  return 0;
}

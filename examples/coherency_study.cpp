// Cache-coherency study (§4): how much staleness and validation traffic
// does piggybacking remove for a proxy in front of an Apache-like site?
//
// Runs the end-to-end simulator three ways — no piggybacking, directory
// volumes, and thinned probability volumes — and compares freshness,
// If-Modified-Since traffic, connection counts and user latency.
//
// Build & run:  ./build/examples/coherency_study [--scale=<x>]
#include <cstdio>
#include <iostream>
#include <string>

#include "sim/end_to_end.h"
#include "sim/report.h"
#include "trace/profiles.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"

using namespace piggyweb;

namespace {

sim::EndToEndConfig base_config() {
  sim::EndToEndConfig config;
  config.cache.capacity_bytes = 24ULL * 1024 * 1024;
  config.cache.freshness_interval = 2 * util::kHour;
  config.base_filter.max_elements = 20;
  config.volumes.level = 1;
  config.rpv.timeout = 60;
  config.enable_coherency = true;
  return config;
}

void add_row(sim::Table& table, const std::string& name,
             const sim::EndToEndResult& result) {
  table.row({name, sim::Table::pct(result.cache.fresh_hit_rate()),
             sim::Table::count(result.validations),
             sim::Table::count(result.coherency.refreshed),
             sim::Table::count(result.coherency.invalidated),
             sim::Table::pct(result.stale_rate(), 2),
             sim::Table::count(result.connections.opened),
             sim::Table::num(result.mean_user_latency(), 3)});
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.02;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::stod(arg.substr(8));
  }
  const auto workload = trace::generate(trace::apache_profile(scale));
  std::printf("workload: %zu requests from %zu clients\n\n",
              workload.trace.size(), workload.trace.sources().size());

  sim::Table table({"configuration", "fresh hit rate", "IMS validations",
                    "refreshed", "invalidated", "stale rate",
                    "connections opened", "mean latency (s)"});

  auto off = base_config();
  off.piggybacking = false;
  add_row(table, "no piggybacking",
          sim::EndToEndSimulator(workload, off).run());

  add_row(table, "directory volumes",
          sim::EndToEndSimulator(workload, base_config()).run());

  volume::PairCounterConfig pcc;
  const auto counts =
      volume::PairCounterBuilder(pcc).build(workload.trace, 10);
  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = 0.2;
  pvc.effectiveness_threshold = 0.2;
  const auto volumes =
      volume::build_probability_volumes(workload.trace, counts, pvc);
  auto prob = base_config();
  prob.probability_volumes = &volumes;
  add_row(table, "probability volumes",
          sim::EndToEndSimulator(workload, prob).run());

  table.print(std::cout);
  std::printf(
      "\nreading: piggyback refreshes substitute for If-Modified-Since "
      "round trips (fewer validations, more fresh hits, lower latency); "
      "invalidations drop stale copies before a client can receive them; "
      "directory volumes refresh more aggressively, probability volumes "
      "more precisely.\n");
  return 0;
}

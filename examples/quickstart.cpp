// Quickstart: the whole pipeline in one page.
//
//   1. Generate a synthetic server log (AIUSA-like profile).
//   2. Build directory-based and probability-based volumes.
//   3. Replay the log through the piggybacking protocol and report the
//      paper's metrics (fraction predicted, precision, update fraction,
//      average piggyback size).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "server/meta.h"
#include "sim/prediction_eval.h"
#include "trace/profiles.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"

using namespace piggyweb;

namespace {

void report(const char* name, const sim::EvalResult& result) {
  std::printf("%-22s  recall %5.1f%%  precision %5.1f%%  update %5.1f%%  "
              "avg piggyback %5.1f  messages %llu\n",
              name, result.fraction_predicted() * 100.0,
              result.true_prediction_fraction() * 100.0,
              result.update_fraction() * 100.0, result.avg_piggyback_size(),
              static_cast<unsigned long long>(result.piggyback_messages));
}

}  // namespace

int main() {
  // 1. A scaled-down AIUSA-like server log (~20k requests).
  auto profile = trace::aiusa_profile(0.1);
  const auto workload = trace::generate(profile);
  std::printf("generated %zu requests, %zu clients, %zu resources\n\n",
              workload.trace.size(), workload.trace.sources().size(),
              workload.trace.paths().size());

  server::TraceMetaOracle meta(workload.trace);

  // 2a. Directory-based volumes (1-level prefixes), evaluated with an RPV
  //     list capping redundant piggybacks.
  sim::EvalConfig dir_config;
  dir_config.filter.max_elements = 50;
  dir_config.filter.min_access_count = 10;  // the paper's access filter
  dir_config.use_rpv = true;
  dir_config.rpv.timeout = 30;

  volume::DirectoryVolumeConfig dvc;
  dvc.level = 1;
  volume::DirectoryVolumes directory(dvc);
  directory.bind_paths(workload.trace.paths());
  const auto dir_result =
      sim::PredictionEvaluator(dir_config).run(workload.trace, directory,
                                               meta);
  report("directory (1-level)", dir_result);

  // 2b. Probability-based volumes, thinned to effective implications.
  volume::PairCounterConfig pcc;
  pcc.window = 300;
  const auto counts =
      volume::PairCounterBuilder(pcc).build(workload.trace, 10);

  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = 0.25;
  pvc.effectiveness_threshold = 0.2;
  const auto volumes =
      volume::build_probability_volumes(workload.trace, counts, pvc);
  volume::ProbabilityVolumes probability(&volumes, pvc.max_candidates);

  sim::EvalConfig prob_config;
  prob_config.filter.max_elements = 50;
  const auto prob_result = sim::PredictionEvaluator(prob_config)
                               .run(workload.trace, probability, meta);
  report("probability (thinned)", prob_result);

  const auto stats = volumes.stats();
  std::printf("\nprobability volumes: %zu volumes, avg size %.1f, "
              "self %.1f%%, symmetric %.1f%%\n",
              stats.volumes, stats.avg_volume_size,
              stats.self_fraction * 100.0, stats.symmetric_fraction * 100.0);
  return 0;
}

// Minimal flag parsing shared by the command-line tools. Flags take the
// form --name=value (or bare --name for booleans); unknown flags are an
// error so typos never pass silently.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "obs/manifest.h"

namespace piggyweb::tools {

class FlagSet {
 public:
  explicit FlagSet(std::string program_summary)
      : summary_(std::move(program_summary)) {}

  // Registration (call before parse()).
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  // Parse argv; returns false (and prints usage + error) on bad input or
  // when --help was requested.
  bool parse(int argc, char** argv);

  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  void print_usage(const char* argv0) const;

 private:
  enum class Type { kString, kDouble, kInt, kBool };
  struct Flag {
    Type type;
    std::string value;  // canonical text form
    std::string help;
    std::string default_text;
  };
  const Flag* find(const std::string& name, Type type) const;

  std::string summary_;
  std::map<std::string, Flag> flags_;
};

// Register the shared observability flags (--metrics-out=FILE,
// --trace-out=FILE) on a tool's flag set; call before parse().
void add_observability_flags(FlagSet& flags);

// Build the per-run observability scope from parsed flags: null when both
// flags are empty (global sinks stay null), otherwise a live RunScope that
// writes the manifest/trace when destroyed. Declare first in main() so it
// outlives everything instrumented.
std::unique_ptr<obs::RunScope> make_run_scope(const FlagSet& flags,
                                              std::string run_name,
                                              int argc, char** argv);

}  // namespace piggyweb::tools

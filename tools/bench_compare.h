// Noise-aware comparison of two benchmark reports (BENCH_*.json) or run
// manifests. The comparator walks both JSON trees in parallel and
// classifies every shared leaf by its key name:
//
//   *seconds*                  timing — lower is better
//   *per_second* / *speedup*   rate   — higher is better
//   booleans                   must not flip true -> false
//   other numbers              workload descriptors (ops, requests, ...)
//
// Workload descriptors act as a guard, not a measurement: when any two
// sibling descriptors differ the containing subtree is incomparable (the
// two runs measured different work) and its timings are skipped with a
// note instead of being flagged. Timings where both sides are below the
// minimum-seconds floor are skipped as noise — quick-mode benches produce
// sub-millisecond sections whose relative error dwarfs any real shift.
//
// Regression = a gated comparison worse than the relative threshold.
// piggyweb_benchdiff turns has_regression() into its exit code; the CI
// release-bench lane runs the quick benches twice and requires the pair
// to compare clean.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace piggyweb::tools {

// What a key name says about the value it holds.
enum class BenchKeyKind { kTiming, kRate, kBoolean, kWorkload };

// Classify a leaf key by name. Rates are checked first so "per_second"
// never falls into the timing bucket.
BenchKeyKind classify_bench_key(std::string_view key, bool is_boolean);

struct BenchCompareOptions {
  // Relative change that counts as a regression: timings may grow and
  // rates may shrink by up to this fraction.
  double threshold = 0.10;
  // Timings where both sides are below this floor are noise, not signal.
  double min_seconds = 1e-3;
  // Gate only dimensionless comparisons (rates and booleans); absolute
  // timings are still reported but cannot fail the run. For comparing
  // reports from different machines.
  bool ratio_only = false;
};

struct BenchDelta {
  enum class Status {
    kOk,           // within threshold
    kImprovement,  // beyond threshold in the good direction
    kRegression,   // beyond threshold in the bad direction
    kSkippedNoise, // both sides under min_seconds
  };

  std::string path;  // dotted path into the report, e.g. "micro.flat_seconds"
  BenchKeyKind kind = BenchKeyKind::kTiming;
  Status status = Status::kOk;
  double baseline = 0;
  double candidate = 0;
  // Normalised so that > 1 means "candidate is worse": candidate/baseline
  // for timings, baseline/candidate for rates. 0 when undefined.
  double worse_ratio = 0;
  // False when --ratio-only demoted this comparison to informational.
  bool gated = true;
};

struct BenchCompareReport {
  std::vector<BenchDelta> deltas;
  // Structural findings: workload mismatches, missing keys, skipped
  // subtrees. Never affect the exit code.
  std::vector<std::string> notes;

  std::size_t gated_comparisons() const;
  bool has_regression() const;

  // Machine-readable form (written by --json=): options echo, per-delta
  // records, notes, and a top-level "regressions" count.
  obs::Json to_json(const BenchCompareOptions& options) const;
};

// Compare candidate against baseline. Both should be JSON objects (a
// bench report or a run manifest); anything else yields a note and no
// comparisons.
BenchCompareReport compare_bench_reports(const obs::Json& baseline,
                                         const obs::Json& candidate,
                                         const BenchCompareOptions& options);

// Fault injector for testing the gate end to end: returns a copy of the
// report with every timing multiplied and every rate divided by `factor`
// — the signature of a uniformly slower build. factor 1.0 is an identity
// copy.
obs::Json inject_slowdown(const obs::Json& report, double factor);

}  // namespace piggyweb::tools

// Project lint driver: runs the analysis rule set over the repository's
// own sources and reports findings as `file:line: [rule-id] message`
// lines (or JSON with --json). Exits 0 only when there are no findings
// — and, under --require-empty-suppressions (what CI and the ctest lint
// label pass), only when the suppression file is empty too.
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/engine.h"
#include "analysis/rules.h"
#include "cli_common.h"
#include "obs/json.h"
#include "obs/registry.h"

namespace {

using piggyweb::analysis::AnalyzeOptions;
using piggyweb::analysis::AnalyzeResult;
using piggyweb::analysis::Diagnostic;

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// Findings per rule id, ordered by id (map order) so the summary is
// stable across runs.
std::map<std::string, std::size_t> count_by_rule(
    const std::vector<Diagnostic>& diagnostics) {
  std::map<std::string, std::size_t> counts;
  for (const auto& d : diagnostics) ++counts[d.rule];
  return counts;
}

piggyweb::obs::Json diagnostic_json(const Diagnostic& d) {
  auto obj = piggyweb::obs::Json::object();
  obj.set("file", d.file);
  obj.set("line", static_cast<std::int64_t>(d.line));
  obj.set("rule", d.rule);
  obj.set("message", d.message);
  return obj;
}

}  // namespace

int main(int argc, char** argv) {
  piggyweb::tools::FlagSet flags(
      "piggyweb_staticcheck -- lint the project sources with the "
      "determinism / flat-map / contract / header rule set");
  flags.add_string("root", ".", "repository root to scan");
  flags.add_string("subdirs", "src,tools,bench,tests",
                   "comma-separated subtrees to scan under the root");
  flags.add_string("suppressions", "",
                   "suppression file (rule-id path[:line] per line); "
                   "defaults to <root>/lint-suppressions.txt when present");
  flags.add_bool("require-empty-suppressions", false,
                 "fail unless the suppression file has no entries (CI "
                 "mode)");
  flags.add_bool("json", false, "emit machine-readable JSON on stdout");
  flags.add_bool("list-rules", false, "print the rule catalog and exit");
  piggyweb::tools::add_observability_flags(flags);
  if (!flags.parse(argc, argv)) return 2;
  const auto scope =
      piggyweb::tools::make_run_scope(flags, "staticcheck", argc, argv);

  if (flags.get_bool("list-rules")) {
    for (const auto& rule : piggyweb::analysis::rule_catalog()) {
      std::printf("%-26s %s\n", std::string(rule.id).c_str(),
                  std::string(rule.summary).c_str());
    }
    return 0;
  }

  AnalyzeOptions options;
  options.root = flags.get_string("root");
  options.subdirs.clear();
  {
    const std::string subdirs = flags.get_string("subdirs");
    std::size_t pos = 0;
    while (pos <= subdirs.size()) {
      const std::size_t comma = std::min(subdirs.find(',', pos),
                                         subdirs.size());
      if (comma > pos) {
        options.subdirs.push_back(subdirs.substr(pos, comma - pos));
      }
      pos = comma + 1;
    }
  }

  std::string suppression_path = flags.get_string("suppressions");
  bool suppressions_explicit = !suppression_path.empty();
  if (!suppressions_explicit) {
    suppression_path = options.root + "/lint-suppressions.txt";
  }
  std::size_t suppression_entries = 0;
  if (const auto text = read_file(suppression_path)) {
    std::vector<std::string> errors;
    options.suppressions =
        piggyweb::analysis::parse_suppressions(*text, errors);
    suppression_entries = options.suppressions.size();
    for (const auto& err : errors) {
      std::fprintf(stderr, "piggyweb_staticcheck: %s: %s\n",
                   suppression_path.c_str(), err.c_str());
    }
    if (!errors.empty()) return 2;
  } else if (suppressions_explicit) {
    std::fprintf(stderr, "piggyweb_staticcheck: cannot read %s\n",
                 suppression_path.c_str());
    return 2;
  }

  const AnalyzeResult result = piggyweb::analysis::analyze_tree(options);
  if (auto* metrics = piggyweb::obs::global_metrics(); metrics != nullptr) {
    metrics->counter("staticcheck.files_scanned", /*deterministic=*/true)
        .add(result.files_scanned);
    metrics->counter("staticcheck.findings", /*deterministic=*/true)
        .add(result.diagnostics.size());
    metrics->counter("staticcheck.suppressed", /*deterministic=*/true)
        .add(result.suppressed.size());
  }
  const bool suppressions_violation =
      flags.get_bool("require-empty-suppressions") &&
      suppression_entries > 0;

  if (flags.get_bool("json")) {
    auto report = piggyweb::obs::Json::object();
    report.set("files_scanned",
               static_cast<std::uint64_t>(result.files_scanned));
    auto findings = piggyweb::obs::Json::array();
    for (const auto& d : result.diagnostics) {
      findings.push_back(diagnostic_json(d));
    }
    report.set("findings", std::move(findings));
    auto suppressed = piggyweb::obs::Json::array();
    for (const auto& d : result.suppressed) {
      suppressed.push_back(diagnostic_json(d));
    }
    report.set("suppressed", std::move(suppressed));
    auto rule_counts = piggyweb::obs::Json::object();
    for (const auto& [rule, count] : count_by_rule(result.diagnostics)) {
      rule_counts.set(rule, static_cast<std::uint64_t>(count));
    }
    report.set("rule_counts", std::move(rule_counts));
    report.set("suppression_entries",
               static_cast<std::uint64_t>(suppression_entries));
    report.set("suppressions_must_be_empty",
               flags.get_bool("require-empty-suppressions"));
    report.set("ok",
               result.diagnostics.empty() && !suppressions_violation);
    std::printf("%s\n", report.dump(2).c_str());
  } else {
    for (const auto& d : result.diagnostics) {
      std::printf("%s\n",
                  piggyweb::analysis::format_diagnostic(d).c_str());
    }
    std::fprintf(stderr,
                 "piggyweb_staticcheck: %zu finding(s), %zu suppressed, "
                 "%zu file(s) scanned\n",
                 result.diagnostics.size(), result.suppressed.size(),
                 result.files_scanned);
    // On failure, break the total down by rule so a CI log tells you
    // which checker fired without grepping the finding lines.
    if (!result.diagnostics.empty()) {
      for (const auto& [rule, count] : count_by_rule(result.diagnostics)) {
        std::fprintf(stderr, "piggyweb_staticcheck:   %-26s %zu\n",
                     rule.c_str(), count);
      }
    }
  }

  if (suppressions_violation) {
    std::fprintf(stderr,
                 "piggyweb_staticcheck: suppression file %s has %zu "
                 "entr%s but --require-empty-suppressions is set — fix "
                 "the findings instead of suppressing them\n",
                 suppression_path.c_str(), suppression_entries,
                 suppression_entries == 1 ? "y" : "ies");
  }
  return (result.diagnostics.empty() && !suppressions_violation) ? 0 : 1;
}

// piggyweb_tracecheck — lint the observability artifacts a traced run
// writes: the Chrome trace-event file (--trace-out=) and the run manifest
// (--metrics-out=). Used by the CI observability smoke step and handy
// locally before loading a trace into Perfetto.
//
//   piggyweb_tracecheck --trace=run-trace.json
//   piggyweb_tracecheck --manifest=run.json
//   piggyweb_tracecheck --manifest=t4.json --same-metrics-as=t1.json
//
// --same-metrics-as asserts the deterministic counters/gauges of the two
// manifests are exactly equal — the thread-invariance property: a workload
// run at --threads=1 and --threads=4 must publish identical deterministic
// metrics.
//
// When the manifest carries a "snapshots" section (a checkpointing run),
// each recorded snapshot checksum is verified against the file on disk.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "cli_common.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "persist/codec.h"
#include "util/strings.h"

using namespace piggyweb;

namespace {

std::optional<obs::Json> load_json_file(const std::string& path,
                                        std::vector<std::string>& problems) {
  std::ifstream in(path);
  if (!in) {
    problems.push_back(path + ": cannot open");
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto parsed = obs::parse_json(buffer.str(), &error);
  if (!parsed.has_value()) {
    problems.push_back(path + ": invalid JSON: " + error);
  }
  return parsed;
}

// Chrome trace-event format: {"traceEvents": [...]}; every event needs
// name/ph/ts/pid/tid, and complete ("X") events a non-negative dur.
void lint_trace(const obs::Json& trace, const std::string& path,
                std::vector<std::string>& problems) {
  if (!trace.is_object()) {
    problems.push_back(path + ": top level is not an object");
    return;
  }
  const auto* events = trace.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    problems.push_back(path + ": missing traceEvents array");
    return;
  }
  std::size_t index = 0;
  for (const auto& event : events->items()) {
    const auto where = path + ": event " + std::to_string(index++);
    if (!event.is_object()) {
      problems.push_back(where + " is not an object");
      continue;
    }
    for (const char* key : {"name", "ph", "ts", "pid", "tid"}) {
      if (event.find(key) == nullptr) {
        problems.push_back(where + " lacks \"" + key + "\"");
      }
    }
    const auto* name = event.find("name");
    if (name != nullptr && !name->is_string()) {
      problems.push_back(where + ": name is not a string");
    }
    const auto* ts = event.find("ts");
    if (ts != nullptr && (!ts->is_number() || ts->number() < 0)) {
      problems.push_back(where + ": ts is not a non-negative number");
    }
    const auto* ph = event.find("ph");
    if (ph != nullptr && ph->is_string() && ph->string() == "X") {
      const auto* dur = event.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number() < 0) {
        problems.push_back(where + ": complete event lacks non-negative dur");
      }
    }
  }
  if (problems.empty()) {
    std::printf("%s: %zu trace events ok\n", path.c_str(),
                events->items().size());
  }
}

// Collect name -> value for the deterministic entries of one metric
// section ("counters" or "gauges").
std::vector<std::pair<std::string, double>> deterministic_metrics(
    const obs::Json& manifest, const char* section) {
  std::vector<std::pair<std::string, double>> out;
  const auto* metrics = manifest.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return out;
  const auto* list = metrics->find(section);
  if (list == nullptr || !list->is_array()) return out;
  for (const auto& entry : list->items()) {
    const auto* name = entry.find("name");
    const auto* value = entry.find("value");
    const auto* deterministic = entry.find("deterministic");
    if (name == nullptr || value == nullptr || deterministic == nullptr) {
      continue;  // validate_run_manifest reports shape problems
    }
    if (deterministic->boolean()) {
      out.emplace_back(name->string(), value->number());
    }
  }
  return out;
}

// Exact equality of the deterministic counters/gauges of two manifests:
// same names on both sides, same values bit-for-bit.
void diff_deterministic_metrics(const obs::Json& a, const std::string& a_path,
                                const obs::Json& b, const std::string& b_path,
                                std::vector<std::string>& problems) {
  for (const char* section : {"counters", "gauges"}) {
    const auto lhs = deterministic_metrics(a, section);
    const auto rhs = deterministic_metrics(b, section);
    for (const auto& [name, value] : lhs) {
      bool found = false;
      for (const auto& [other_name, other_value] : rhs) {
        if (other_name != name) continue;
        found = true;
        if (other_value != value) {
          problems.push_back(std::string(section) + "." + name + ": " +
                             a_path + " has " + std::to_string(value) +
                             ", " + b_path + " has " +
                             std::to_string(other_value));
        }
        break;
      }
      if (!found) {
        problems.push_back(std::string(section) + "." + name +
                           ": missing from " + b_path);
      }
    }
    for (const auto& [name, value] : rhs) {
      bool found = false;
      for (const auto& [other_name, other_value] : lhs) {
        if (other_name == name) {
          found = true;
          break;
        }
      }
      if (!found) {
        problems.push_back(std::string(section) + "." + name +
                           ": missing from " + a_path);
      }
    }
  }
}

// A manifest's "snapshots" section records the path and FNV-1a checksum
// of every state snapshot the run read or wrote; verify each recorded
// checksum against the file on disk. Relative paths are tried as-is and
// then relative to the manifest's directory.
void check_snapshot_checksums(const obs::Json& manifest,
                              const std::string& manifest_path,
                              std::vector<std::string>& problems) {
  const auto* snapshots = manifest.find("snapshots");
  if (snapshots == nullptr || !snapshots->is_object()) return;
  const auto slash = manifest_path.find_last_of('/');
  const auto manifest_dir =
      slash == std::string::npos ? std::string()
                                 : manifest_path.substr(0, slash + 1);
  std::size_t checked = 0;
  for (const auto& [role, entry] : snapshots->members()) {
    const auto where = manifest_path + ": snapshots." + role;
    const auto* path = entry.find("path");
    const auto* recorded = entry.find("fnv1a");
    if (path == nullptr || !path->is_string() || recorded == nullptr ||
        !recorded->is_string()) {
      continue;  // validate_run_manifest reports shape problems
    }
    std::string error;
    auto bytes = persist::read_file_bytes(path->string(), error);
    if (!bytes.has_value() && !manifest_dir.empty()) {
      bytes = persist::read_file_bytes(manifest_dir + path->string(), error);
    }
    if (!bytes.has_value()) {
      problems.push_back(where + ": cannot read snapshot " + path->string() +
                         " (" + error + ")");
      continue;
    }
    const auto actual =
        persist::checksum_hex(persist::snapshot_checksum(*bytes));
    if (actual != recorded->string()) {
      problems.push_back(where + ": checksum mismatch for " + path->string() +
                         " (manifest " + recorded->string() + ", file " +
                         actual + ")");
      continue;
    }
    ++checked;
  }
  if (checked != 0) {
    std::printf("%s: %zu snapshot checksum(s) match disk\n",
                manifest_path.c_str(), checked);
  }
}

// --require-metric=a,b,c: each named metric must appear in some section
// of the manifest's metrics object. Histograms must additionally carry a
// positive count and the percentile fields the registry emits — the shape
// the acceptance checks assert for queue-latency and stripe-contention
// profiles.
void check_required_metrics(const obs::Json& manifest,
                            const std::string& manifest_path,
                            const std::string& required,
                            std::vector<std::string>& problems) {
  const auto* metrics = manifest.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    problems.push_back(manifest_path +
                       ": --require-metric given but metrics section missing");
    return;
  }
  std::size_t checked = 0;
  for (const auto piece : util::split_trimmed(required, ',')) {
    if (piece.empty()) continue;
    const std::string want(piece);
    const obs::Json* found = nullptr;
    const char* found_in = nullptr;
    for (const char* section : {"counters", "gauges", "histograms"}) {
      const auto* list = metrics->find(section);
      if (list == nullptr || !list->is_array()) continue;
      for (const auto& entry : list->items()) {
        const auto* name = entry.find("name");
        if (name != nullptr && name->is_string() && name->string() == want) {
          found = &entry;
          found_in = section;
          break;
        }
      }
      if (found != nullptr) break;
    }
    if (found == nullptr) {
      problems.push_back(manifest_path + ": required metric '" + want +
                         "' not present");
      continue;
    }
    if (std::string_view(found_in) == "histograms") {
      const auto* count = found->find("count");
      if (count == nullptr || !count->is_number() || count->number() <= 0) {
        problems.push_back(manifest_path + ": required metric '" + want +
                           "' has no samples");
      }
      for (const char* field : {"p50", "p90", "p99", "p999"}) {
        const auto* value = found->find(field);
        if (value == nullptr || !value->is_number()) {
          problems.push_back(manifest_path + ": required metric '" + want +
                             "' lacks " + field);
        }
      }
    }
    ++checked;
  }
  if (checked != 0) {
    std::printf("%s: %zu required metric(s) present\n", manifest_path.c_str(),
                checked);
  }
}

}  // namespace

int main(int argc, char** argv) {
  tools::FlagSet flags("lint piggyweb trace and run-manifest files");
  flags.add_string("trace", "", "Chrome trace-event file to lint");
  flags.add_string("manifest", "", "run manifest file to validate");
  flags.add_string("same-metrics-as", "",
                   "second manifest whose deterministic counters/gauges "
                   "must equal --manifest's exactly");
  flags.add_string("require-metric", "",
                   "comma-separated metric names that must be present in "
                   "--manifest (histograms also need samples and "
                   "percentiles)");
  tools::add_observability_flags(flags);
  if (!flags.parse(argc, argv)) return 2;
  const auto scope = tools::make_run_scope(flags, "tracecheck", argc, argv);

  const auto trace_path = flags.get_string("trace");
  const auto manifest_path = flags.get_string("manifest");
  const auto other_path = flags.get_string("same-metrics-as");
  if (trace_path.empty() && manifest_path.empty()) {
    std::fprintf(stderr, "nothing to do: pass --trace= and/or --manifest=\n");
    return 2;
  }
  if (!other_path.empty() && manifest_path.empty()) {
    std::fprintf(stderr, "--same-metrics-as requires --manifest\n");
    return 2;
  }

  std::vector<std::string> problems;
  if (!trace_path.empty()) {
    if (const auto trace = load_json_file(trace_path, problems)) {
      lint_trace(*trace, trace_path, problems);
    }
  }
  if (!manifest_path.empty()) {
    const auto manifest = load_json_file(manifest_path, problems);
    if (manifest.has_value()) {
      std::vector<std::string> manifest_problems;
      if (obs::validate_run_manifest(*manifest, manifest_problems)) {
        std::printf("%s: manifest ok\n", manifest_path.c_str());
      }
      for (auto& problem : manifest_problems) {
        problems.push_back(manifest_path + ": " + std::move(problem));
      }
      check_snapshot_checksums(*manifest, manifest_path, problems);
      if (const auto required = flags.get_string("require-metric");
          !required.empty()) {
        check_required_metrics(*manifest, manifest_path, required, problems);
      }
      if (!other_path.empty()) {
        if (const auto other = load_json_file(other_path, problems)) {
          const auto before = problems.size();
          diff_deterministic_metrics(*manifest, manifest_path, *other,
                                     other_path, problems);
          if (problems.size() == before) {
            std::printf("%s and %s: deterministic metrics identical\n",
                        manifest_path.c_str(), other_path.c_str());
          }
        }
      }
    }
  }

  for (const auto& problem : problems) {
    std::fprintf(stderr, "tracecheck: %s\n", problem.c_str());
  }
  return problems.empty() ? 0 : 1;
}

// Shared trace-input plumbing for the CLI tools. Every tool that replays a
// trace registers the same flags and loads through the same TraceSource
// entry point, so CLF logs, "PIGGYTRC" binary containers, and
// "synthetic:<profile>[:scale]" specs work uniformly everywhere:
//
//   --log=<path|spec>      the trace to load
//   --trace-format=auto    auto|clf|binary|synthetic (auto sniffs)
//   --server-name=server   origin name recorded for CLF server logs
//   --keep-uncachable      keep cgi/query URLs instead of the §A cleanup
#pragma once

#include <cstdio>
#include <memory>

#include "cli_common.h"
#include "obs/manifest.h"
#include "trace/source.h"
#include "trace/stream.h"

namespace piggyweb::tools {

// Register --log / --trace-format / --server-name / --keep-uncachable.
// `primary` renames the trace flag itself (piggyweb_convert calls it --in).
void add_trace_flags(FlagSet& flags, const char* primary = "log");

// The TraceSourceOptions those flags describe; false (with a message on
// stderr) if --trace-format names an unknown format.
bool trace_options_from_flags(const FlagSet& flags,
                              trace::TraceSourceOptions& out);

// Load the --log trace: open the source, load, sort, and print the
// "parsed N requests" progress line to `info` (including which backing
// path served the load: mmap, read-copy, stream, or generated). Returns 0
// on success or the process exit code to propagate (2 for flag errors, 1
// for load failures and empty traces), after printing the error to
// stderr. When `stats_out` is non-null the load stats are copied there so
// the caller can note them in its run manifest.
int load_trace_from_flags(const FlagSet& flags, std::FILE* info,
                          trace::Trace& out, const char* primary = "log",
                          trace::TraceLoadStats* stats_out = nullptr);

// Streaming variant: opens the --log trace as a TraceView (binary
// containers stream off the mapping, other formats materialize inside the
// view) and prints the same progress line. Same return convention.
int load_view_from_flags(const FlagSet& flags, std::FILE* info,
                         std::unique_ptr<trace::TraceView>& out,
                         const char* primary = "log",
                         trace::TraceLoadStats* stats_out = nullptr);

// Manifest section describing a load: requests/malformed/filtered counts
// plus the format and backing names — attach with run_scope->note("trace").
obs::Json trace_stats_note(const trace::TraceLoadStats& stats);

}  // namespace piggyweb::tools

// Shared trace-input plumbing for the CLI tools. Every tool that replays a
// trace registers the same flags and loads through the same TraceSource
// entry point, so CLF logs, "PIGGYTRC" binary containers, and
// "synthetic:<profile>[:scale]" specs work uniformly everywhere:
//
//   --log=<path|spec>      the trace to load
//   --trace-format=auto    auto|clf|binary|synthetic (auto sniffs)
//   --server-name=server   origin name recorded for CLF server logs
//   --keep-uncachable      keep cgi/query URLs instead of the §A cleanup
#pragma once

#include <cstdio>

#include "cli_common.h"
#include "trace/source.h"

namespace piggyweb::tools {

// Register --log / --trace-format / --server-name / --keep-uncachable.
// `primary` renames the trace flag itself (piggyweb_convert calls it --in).
void add_trace_flags(FlagSet& flags, const char* primary = "log");

// The TraceSourceOptions those flags describe; false (with a message on
// stderr) if --trace-format names an unknown format.
bool trace_options_from_flags(const FlagSet& flags,
                              trace::TraceSourceOptions& out);

// Load the --log trace: open the source, load, sort, and print the
// "parsed N requests" progress line to `info`. Returns 0 on success or
// the process exit code to propagate (2 for flag errors, 1 for load
// failures and empty traces), after printing the error to stderr.
int load_trace_from_flags(const FlagSet& flags, std::FILE* info,
                          trace::Trace& out, const char* primary = "log");

}  // namespace piggyweb::tools

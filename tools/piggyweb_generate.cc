// piggyweb_generate — write a synthetic web log as Common Log Format.
//
//   piggyweb_generate --profile=aiusa --scale=0.1 --out=aiusa.log
//   piggyweb_generate --profile=sun --scale=0.01 --out=sun.log
//       --volumes-out=sun-volumes.txt --pt=0.2 --eff=0.2
//
// Profiles mirror the paper's six logs (aiusa, marimba, apache, sun,
// att_client, digital_client). With --volumes-out the tool also trains
// probability volumes on the generated log and saves them in the
// piggyweb-volumes format for piggyweb_evaluate --volumes=....
#include <cstdio>
#include <fstream>

#include "cli_common.h"
#include "trace/clf.h"
#include "trace/log_stats.h"
#include "trace/profiles.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"
#include "volume/serialize.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  tools::FlagSet flags(
      "generate a synthetic web log (Common Log Format) from one of the "
      "paper's log profiles");
  flags.add_string("profile", "aiusa",
                   "aiusa|marimba|apache|sun|att_client|digital_client");
  flags.add_double("scale", 0.05, "request-count scale (1.0 = paper size)");
  flags.add_int("seed", 0, "override the profile's RNG seed (0 = default)");
  flags.add_string("out", "synthetic.log", "output CLF file");
  flags.add_string("volumes-out", "",
                   "also train+save probability volumes to this file");
  flags.add_double("pt", 0.2, "probability threshold for --volumes-out");
  flags.add_double("eff", 0.2,
                   "effectiveness threshold for --volumes-out (0 = off)");
  flags.add_int("min-count", 10,
                "ignore resources with fewer accesses when training");
  tools::add_observability_flags(flags);
  if (!flags.parse(argc, argv)) return 2;
  const auto run_scope =
      tools::make_run_scope(flags, "piggyweb_generate", argc, argv);

  auto profile = trace::profile_by_name(flags.get_string("profile"),
                                        flags.get_double("scale"));
  if (!profile) {
    std::fprintf(stderr, "unknown profile '%s'\n",
                 flags.get_string("profile").c_str());
    return 2;
  }
  if (flags.get_int("seed") != 0) {
    profile->seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  }

  const auto workload = trace::generate(*profile);
  const auto stats = trace::compute_log_stats(workload.trace);
  std::printf("%s: %llu requests, %llu sources, %llu resources over %lld "
              "days\n",
              profile->name.c_str(),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.distinct_sources),
              static_cast<unsigned long long>(stats.unique_resources),
              static_cast<long long>(stats.span / util::kDay));

  {
    std::ofstream out(flags.get_string("out"));
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n",
                   flags.get_string("out").c_str());
      return 1;
    }
    trace::write_clf(out, workload.trace);
    std::printf("wrote %s\n", flags.get_string("out").c_str());
  }

  const auto volumes_out = flags.get_string("volumes-out");
  if (!volumes_out.empty()) {
    volume::PairCounterConfig pcc;
    const auto counts = volume::PairCounterBuilder(pcc).build(
        workload.trace,
        static_cast<std::uint64_t>(flags.get_int("min-count")));
    volume::ProbabilityVolumeConfig pvc;
    pvc.probability_threshold = flags.get_double("pt");
    pvc.effectiveness_threshold = flags.get_double("eff");
    const auto set =
        volume::build_probability_volumes(workload.trace, counts, pvc);
    std::ofstream out(volumes_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", volumes_out.c_str());
      return 1;
    }
    volume::save_volume_set(out, set, workload.trace.paths());
    const auto vstats = set.stats();
    std::printf("wrote %s (%zu volumes, avg size %.1f)\n",
                volumes_out.c_str(), vstats.volumes,
                vstats.avg_volume_size);
  }
  return 0;
}

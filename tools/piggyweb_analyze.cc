// piggyweb_analyze — characterize a web log: the Table 2/3-style summary
// plus the Figure 1 directory-locality profile. Accepts CLF text, PIGGYTRC
// binary containers, and synthetic:<profile>[:scale] specs (sniffed, or
// pinned with --trace-format).
//
//   piggyweb_analyze --log=access.log
//   piggyweb_analyze --log=proxy.trc --levels=4 --exclude-images
#include <cstdio>
#include <iostream>

#include "cli_common.h"
#include "sim/locality.h"
#include "sim/report.h"
#include "trace/log_stats.h"
#include "trace_load.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  tools::FlagSet flags("summarize a web log and its directory locality");
  tools::add_trace_flags(flags);
  flags.add_int("levels", 4, "deepest directory level to profile");
  flags.add_bool("exclude-images", false,
                 "drop image requests from the locality profile");
  tools::add_observability_flags(flags);
  if (!flags.parse(argc, argv)) return 2;
  const auto run_scope =
      tools::make_run_scope(flags, "piggyweb_analyze", argc, argv);

  trace::Trace trace;
  if (const int rc = tools::load_trace_from_flags(flags, stdout, trace);
      rc != 0) {
    return rc;
  }
  std::printf("\n");

  const auto stats = trace::compute_log_stats(trace);
  sim::Table summary({"metric", "value"});
  summary.row({"requests", sim::Table::count(stats.requests)});
  summary.row({"distinct sources", sim::Table::count(stats.distinct_sources)});
  summary.row({"distinct servers", sim::Table::count(stats.distinct_servers)});
  summary.row({"unique resources", sim::Table::count(stats.unique_resources)});
  summary.row({"requests per source",
               sim::Table::num(stats.requests_per_source, 2)});
  summary.row({"span (days)",
               sim::Table::num(static_cast<double>(stats.span) /
                                   static_cast<double>(util::kDay),
                               1)});
  summary.row({"Not Modified share",
               sim::Table::pct(stats.not_modified_fraction)});
  summary.row({"POST share", sim::Table::pct(stats.post_fraction)});
  summary.row({"mean / median response bytes",
               sim::Table::num(stats.mean_response_size, 0) + " / " +
                   sim::Table::num(stats.median_response_size, 0)});
  summary.row({"top-10% resources' request share",
               sim::Table::pct(stats.top10pct_resource_share)});
  summary.row({"top-10% sources' request share",
               sim::Table::pct(stats.top10pct_source_share)});
  summary.print(std::cout);

  std::printf("\ndirectory locality (Figure 1 profile):\n");
  sim::LocalityOptions locality_options;
  locality_options.exclude_images = flags.get_bool("exclude-images");
  sim::Table locality({"level", "% seen before", "median interarrival (s)",
                       "mean interarrival (s)"});
  for (int level = 0; level <= static_cast<int>(flags.get_int("levels"));
       ++level) {
    const auto result =
        sim::directory_locality(trace, level, locality_options);
    locality.row({sim::Table::count(static_cast<std::uint64_t>(level)),
                  sim::Table::pct(result.seen_before_fraction),
                  sim::Table::num(result.median_interarrival, 1),
                  sim::Table::num(result.mean_interarrival, 1)});
  }
  locality.print(std::cout);
  return 0;
}

// piggyweb_evaluate — replay a web log through the piggybacking protocol
// and report the paper's §3.1 metrics for a chosen volume scheme/filter.
// The input may be a CLF text log, a "PIGGYTRC" binary container (replayed
// zero-copy via mmap; see piggyweb_convert), or a synthetic profile spec —
// the format is sniffed unless pinned with --trace-format.
//
//   piggyweb_evaluate --log=site.log --scheme=directory --level=1
//       --minfreq=10 --rpv-timeout=30
//   piggyweb_evaluate --log=site.trc --scheme=probability --pt=0.2 --eff=0.2
//   piggyweb_evaluate --log=synthetic:aiusa:0.05 --scheme=probability
//       --volumes=pretrained.txt
//
// Checkpoint/restore: --stop-fraction=0.5 --save-state=ckpt.snap stops the
// replay half way and writes a durable snapshot; a later run with
// --load-state=ckpt.snap (same log, same flags) resumes there and reports
// metrics bit-identical to an uninterrupted run, at any --threads value.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cli_common.h"
#include "obs/manifest.h"
#include "persist/eval_state.h"
#include "server/meta.h"
#include "sim/eval_core.h"
#include "sim/parallel_eval.h"
#include "sim/prediction_eval.h"
#include "sim/report.h"
#include "trace_load.h"
#include "util/expect.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"
#include "volume/sharded_pair_counter.h"
#include "volume/serialize.h"

using namespace piggyweb;

namespace {

// Snapshot bookkeeping for the run manifest: path + whole-file checksum
// for each snapshot this run read or wrote.
struct SnapshotNote {
  std::string path;
  std::uint64_t checksum = 0;
};

obs::Json snapshot_note_json(const SnapshotNote& note) {
  auto entry = obs::Json::object();
  entry.set("path", note.path);
  entry.set("fnv1a", persist::checksum_hex(note.checksum));
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  tools::FlagSet flags(
      "evaluate a volume scheme + proxy filter over a web log");
  tools::add_trace_flags(flags);
  flags.add_string("scheme", "directory", "directory|probability");
  flags.add_int("level", 1, "directory scheme: prefix level");
  flags.add_double("pt", 0.2, "probability scheme: threshold p_t");
  flags.add_double("eff", 0.0,
                   "probability scheme: effectiveness threshold (0 = off)");
  flags.add_int("combine-level", 0,
                "probability scheme: same-prefix restriction (0 = off)");
  flags.add_string("volumes", "",
                   "probability scheme: load pretrained volumes instead of "
                   "training on the log");
  flags.add_int("min-count", 10, "training: minimum resource access count");
  flags.add_int("maxpiggy", 50, "filter: maximum elements per piggyback");
  flags.add_int("minfreq", 0, "filter: minimum whole-trace access count");
  flags.add_int("rpv-timeout", 0,
                "RPV suppression window in seconds (0 = off)");
  flags.add_int("min-interval", 0,
                "frequency control: min seconds between piggybacks "
                "(0 = off)");
  flags.add_int("window", 300, "prediction window T (seconds)");
  flags.add_int("horizon", 7200, "cache horizon C (seconds)");
  flags.add_int("threads", 1,
                "worker threads for the sharded evaluator (1 = serial, "
                "0 = hardware concurrency); metrics are identical for "
                "any value");
  flags.add_bool("stream", false,
                 "replay without materializing the trace: binary "
                 "containers are decoded window by window straight off "
                 "the mmap (bounded memory); metrics are identical to the "
                 "materializing path. Incompatible with --save-state, "
                 "--load-state, and --volumes");
  flags.add_int("limit", 0,
                "replay only the first N requests, as if the log ended "
                "there (0 = all); incompatible with --save-state and "
                "--load-state");
  flags.add_string("report", "text",
                   "report format: text (aligned table) or json (same "
                   "fields, machine-readable, alone on stdout)");
  flags.add_string("save-state", "",
                   "write an evaluation-state snapshot here at the stop "
                   "point");
  flags.add_string("load-state", "",
                   "resume from a snapshot written by --save-state (same "
                   "log and flags required)");
  flags.add_double("stop-fraction", 1.0,
                   "stop the replay after this fraction of the trace "
                   "(use with --save-state)");
  flags.add_int("progress-every", 0,
                "emit a JSON-lines heartbeat on stderr every N completed "
                "requests (0 = off): done/total, worker queue depth, "
                "elapsed seconds, requests per second");
  tools::add_observability_flags(flags);
  if (!flags.parse(argc, argv)) return 2;

  const auto report = flags.get_string("report");
  if (report != "text" && report != "json") {
    std::fprintf(stderr, "unknown --report '%s'\n", report.c_str());
    return 2;
  }
  // In JSON mode stdout carries only the report document; progress lines
  // move to stderr.
  std::FILE* const info = report == "json" ? stderr : stdout;
  const auto run_scope =
      tools::make_run_scope(flags, "piggyweb_evaluate", argc, argv);

  const auto threads_flag = flags.get_int("threads");
  if (threads_flag < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  const auto save_state = flags.get_string("save-state");
  const auto load_state = flags.get_string("load-state");
  const auto stop_fraction = flags.get_double("stop-fraction");
  if (stop_fraction <= 0.0 || stop_fraction > 1.0) {
    std::fprintf(stderr, "--stop-fraction must be in (0, 1]\n");
    return 2;
  }
  const bool stream = flags.get_bool("stream");
  const auto limit_flag = flags.get_int("limit");
  if (limit_flag < 0) {
    std::fprintf(stderr, "--limit must be >= 0\n");
    return 2;
  }
  const auto limit = static_cast<std::size_t>(limit_flag);
  if ((stream || limit > 0) &&
      (!save_state.empty() || !load_state.empty())) {
    std::fprintf(stderr,
                 "--stream and --limit cannot be combined with "
                 "--save-state/--load-state\n");
    return 2;
  }
  if (stream && !flags.get_string("volumes").empty()) {
    std::fprintf(stderr,
                 "--stream cannot load pretrained --volumes (the file "
                 "references the materialized path table)\n");
    return 2;
  }

  // Streaming mode drives everything through the batch-cursor TraceView;
  // materializing mode loads a Trace as before. Both paths produce
  // bit-identical metrics for the same log and flags.
  trace::Trace trace;
  std::unique_ptr<trace::TraceView> view_owner;
  std::optional<trace::LimitedTraceView> limited;
  trace::TraceView* view = nullptr;
  trace::TraceLoadStats load_stats;
  if (stream) {
    if (const int rc = tools::load_view_from_flags(flags, info, view_owner,
                                                   "log", &load_stats);
        rc != 0) {
      return rc;
    }
    view = view_owner.get();
    if (limit > 0 && limit < view->request_count()) {
      limited.emplace(*view, limit);
      view = &*limited;
    }
  } else {
    if (const int rc = tools::load_trace_from_flags(flags, info, trace,
                                                    "log", &load_stats);
        rc != 0) {
      return rc;
    }
    // --limit truncates the loaded trace outright, so training, the meta
    // oracle, and the replay all see exactly the first N requests.
    if (limit > 0 && limit < trace.requests().size()) {
      trace.requests().resize(limit);
    }
  }
  if (run_scope != nullptr) {
    run_scope->note("trace", tools::trace_stats_note(load_stats));
  }

  sim::EvalConfig config;
  config.prediction_window = flags.get_int("window");
  config.cache_horizon = flags.get_int("horizon");
  config.filter.max_elements =
      static_cast<std::uint32_t>(flags.get_int("maxpiggy"));
  config.filter.min_access_count =
      static_cast<std::uint32_t>(flags.get_int("minfreq"));
  config.use_rpv = flags.get_int("rpv-timeout") > 0;
  config.rpv.timeout = flags.get_int("rpv-timeout");
  config.min_piggyback_interval = flags.get_int("min-interval");

  // Heartbeat: one JSON line on stderr per --progress-every completed
  // requests (and always at 100%). Observational only — the evaluators
  // fire the hook outside any result-affecting path.
  const auto progress_every = flags.get_int("progress-every");
  const obs::RunTimer progress_timer;
  std::size_t progress_last = 0;
  if (progress_every > 0) {
    const auto every = static_cast<std::size_t>(progress_every);
    config.on_progress = [&progress_timer, &progress_last,
                          every](const sim::EvalProgress& p) {
      if (p.done < p.total && p.done - progress_last < every) return;
      progress_last = p.done;
      const double elapsed = progress_timer.wall_seconds();
      auto line = obs::Json::object();
      line.set("piggyweb_progress", 1);
      line.set("done", static_cast<std::uint64_t>(p.done));
      line.set("total", static_cast<std::uint64_t>(p.total));
      line.set("queue_depth", static_cast<std::uint64_t>(p.queue_depth));
      line.set("elapsed_seconds", elapsed);
      line.set("requests_per_second",
               elapsed > 0 ? static_cast<double>(p.done) / elapsed : 0.0);
      std::fprintf(stderr, "%s\n", line.dump().c_str());
    };
  }

  const auto threads = static_cast<std::size_t>(threads_flag);
  sim::ParallelEvalConfig par;
  par.threads = threads;

  // Checkpoint plumbing shared by both schemes. The replayed range is
  // [range_begin, range_end): a resume starts where the snapshot stopped,
  // --stop-fraction moves the end short of the trace.
  const auto total =
      stream ? view->request_count() : trace.requests().size();
  // Checkpointing (the fingerprint's only consumer) is materializing-only.
  const auto fingerprint =
      stream ? std::uint64_t{0} : persist::trace_fingerprint(trace);
  std::optional<persist::EvalSnapshot> snapshot;
  std::optional<SnapshotNote> loaded_note;
  if (!load_state.empty()) {
    std::string error;
    const auto bytes = persist::read_file_bytes(load_state, error);
    if (bytes.has_value()) {
      loaded_note = {load_state, persist::snapshot_checksum(*bytes)};
      snapshot = persist::parse_eval_snapshot(*bytes, error);
    }
    if (!snapshot.has_value()) {
      std::fprintf(stderr, "cannot load state from %s: %s\n",
                   load_state.c_str(), error.c_str());
      return 1;
    }
    if (snapshot->fingerprint != fingerprint ||
        snapshot->total_requests != total) {
      std::fprintf(stderr, "%s was saved against a different trace\n",
                   load_state.c_str());
      return 1;
    }
  }
  const std::size_t range_begin =
      snapshot.has_value() ? static_cast<std::size_t>(snapshot->next_request)
                           : 0;
  std::size_t range_end = total;
  if (stop_fraction < 1.0) {
    range_end = std::max(
        range_begin, static_cast<std::size_t>(
                         stop_fraction * static_cast<double>(total)));
  }
  const bool publish = range_end == total;

  // One bounded pass per training consumer in streaming mode; each pass
  // re-decodes windows off the mapping instead of holding the trace.
  constexpr std::size_t kScanWindow = std::size_t{1} << 16;
  const auto for_each_window = [&](auto&& fn) {
    for (std::size_t base = 0; base < total; base += kScanWindow) {
      const auto n = std::min(kScanWindow, total - base);
      fn(view->window(base, n));
    }
  };

  server::TraceMetaOracle meta;
  if (stream) {
    for_each_window([&](std::span<const trace::Request> window) {
      meta.observe_window(window, view->paths());
    });
  } else {
    meta.observe_window(trace.requests(), trace.paths());
  }
  sim::EvalResult result;
  std::optional<persist::EvalSnapshot> captured;
  const auto scheme = flags.get_string("scheme");

  // Verifies the snapshot's flag echo and reports resumption; shared by
  // both schemes once their echo is built.
  const auto check_resume = [&](const persist::EvalConfigEcho& echo) {
    if (!snapshot.has_value()) return true;
    if (!(snapshot->config == echo)) {
      std::fprintf(stderr,
                   "%s was saved under different flags; rerun with the "
                   "saving run's scheme/filter options\n",
                   load_state.c_str());
      return false;
    }
    std::fprintf(info, "resuming at request %zu/%zu from %s\n", range_begin,
                 total, load_state.c_str());
    return true;
  };
  // Builds the run_range capture hook writing into `captured`; the
  // providers span is empty for the stateless probability scheme.
  const auto make_capture_hook = [&](const persist::EvalConfigEcho& echo,
                                     bool directory) {
    return [&, echo, directory](
               std::span<core::VolumeProvider* const> providers,
               std::span<sim::detail::MetricAccumulator* const> accumulators) {
      std::vector<const volume::DirectoryVolumes*> dirs;
      if (directory) {
        dirs.reserve(providers.size());
        for (auto* provider : providers) {
          auto* dir = dynamic_cast<const volume::DirectoryVolumes*>(provider);
          PW_ENSURE(dir != nullptr);
          dirs.push_back(dir);
        }
      }
      const std::vector<const sim::detail::MetricAccumulator*> accs(
          accumulators.begin(), accumulators.end());
      captured = persist::capture_eval_state(dirs, accs, echo, range_end,
                                             total, fingerprint);
    };
  };

  if (scheme == "directory") {
    volume::DirectoryVolumeConfig dvc;
    dvc.level = static_cast<int>(flags.get_int("level"));
    const auto echo = persist::make_eval_config_echo("directory", config, &dvc);
    if (!check_resume(echo)) return 1;
    if (threads != 1) {
      sim::ParallelEvalStats stats;
      const auto spec = stream
                            ? sim::shard_directory_volumes(dvc, view->paths())
                            : sim::shard_directory_volumes(dvc, trace);
      std::optional<persist::EvalRestore> restore;
      sim::EvalResumeHooks hooks;
      if (snapshot.has_value()) {
        restore.emplace(*snapshot);
        hooks = restore->hooks();
      }
      if (!save_state.empty()) {
        hooks.capture = make_capture_hook(echo, /*directory=*/true);
      }
      const bool use_hooks = snapshot.has_value() || !save_state.empty();
      result =
          stream
              ? sim::ParallelEvaluator(config, par)
                    .run_range(*view, spec, meta, range_begin, range_end,
                               publish, nullptr, &stats)
              : sim::ParallelEvaluator(config, par)
                    .run_range(trace, spec, meta, range_begin, range_end,
                               publish, use_hooks ? &hooks : nullptr, &stats);
      std::fprintf(info,
                   "scheme: directory level-%d (%zu volumes, %zu threads)\n",
                   dvc.level, stats.volume_count, stats.threads);
    } else {
      volume::DirectoryVolumes volumes(dvc);
      if (stream) {
        volumes.bind_paths(view->paths());
      } else {
        volumes.bind_paths(trace.paths());
      }
      sim::detail::MetricAccumulator acc(config);
      if (snapshot.has_value()) {
        persist::EvalRestore restore(*snapshot);
        restore.warm_provider(volumes, 0, 1);
        restore.seed_accumulator(acc, 0, 1);
      }
      result = stream
                   ? sim::PredictionEvaluator(config).run_range(
                         *view, volumes, meta, range_begin, range_end, acc,
                         publish)
                   : sim::PredictionEvaluator(config).run_range(
                         trace, volumes, meta, range_begin, range_end, acc,
                         publish);
      if (!save_state.empty()) {
        const volume::DirectoryVolumes* dirs[] = {&volumes};
        const sim::detail::MetricAccumulator* accs[] = {&acc};
        captured = persist::capture_eval_state(dirs, accs, echo, range_end,
                                               total, fingerprint);
      }
      std::fprintf(info, "scheme: directory level-%d (%zu volumes)\n",
                   dvc.level, volumes.volume_count());
    }
  } else if (scheme == "probability") {
    volume::ProbabilityVolumeSet set;
    if (const auto volumes_path = flags.get_string("volumes");
        !volumes_path.empty()) {
      std::ifstream volumes_in(volumes_path);
      if (!volumes_in) {
        std::fprintf(stderr, "cannot open %s\n", volumes_path.c_str());
        return 1;
      }
      std::string error;
      auto loaded =
          volume::load_volume_set(volumes_in, trace.paths(), error);
      if (!loaded) {
        std::fprintf(stderr, "bad volume file: %s\n", error.c_str());
        return 1;
      }
      set = std::move(*loaded);
    } else {
      volume::PairCounterConfig pcc;
      pcc.window = config.prediction_window;
      const auto min_count =
          static_cast<std::uint64_t>(flags.get_int("min-count"));
      volume::PairCounts counts;
      if (stream) {
        // Training never materializes the trace either: one windowed pass
        // builds the compact per-source observation log, the builders
        // count from it, and the effectiveness pass replays windows.
        volume::PairObservations observations;
        for_each_window([&](std::span<const trace::Request> window) {
          observations.observe_window(window);
        });
        counts = threads != 1
                     ? volume::ParallelPairCounterBuilder(pcc, threads)
                           .build(observations, view->paths(), min_count)
                     : volume::PairCounterBuilder(pcc).build(
                           observations, view->paths(), min_count);
      } else {
        counts = threads != 1
                     ? volume::ParallelPairCounterBuilder(pcc, threads)
                           .build(trace, min_count)
                     : volume::PairCounterBuilder(pcc).build(trace,
                                                            min_count);
      }
      volume::ProbabilityVolumeConfig pvc;
      pvc.probability_threshold = flags.get_double("pt");
      pvc.effectiveness_threshold = flags.get_double("eff");
      pvc.combine_prefix_level =
          static_cast<int>(flags.get_int("combine-level"));
      pvc.window = config.prediction_window;
      set = stream ? volume::build_probability_volumes(*view, counts, pvc)
                   : volume::build_probability_volumes(trace, counts, pvc);
    }
    // Probability volumes are rebuilt deterministically from the trace and
    // training flags, so only the shared eval knobs are echoed; the trace
    // fingerprint pins the input.
    const auto echo =
        persist::make_eval_config_echo("probability", config, nullptr);
    if (!check_resume(echo)) return 1;
    if (threads != 1) {
      const auto spec = sim::shard_probability_volumes(&set, 200);
      std::optional<persist::EvalRestore> restore;
      sim::EvalResumeHooks hooks;
      if (snapshot.has_value()) {
        restore.emplace(*snapshot);
        hooks = restore->hooks();
      }
      if (!save_state.empty()) {
        hooks.capture = make_capture_hook(echo, /*directory=*/false);
      }
      const bool use_hooks = snapshot.has_value() || !save_state.empty();
      result = stream
                   ? sim::ParallelEvaluator(config, par)
                         .run_range(*view, spec, meta, range_begin,
                                    range_end, publish, nullptr)
                   : sim::ParallelEvaluator(config, par)
                         .run_range(trace, spec, meta, range_begin,
                                    range_end, publish,
                                    use_hooks ? &hooks : nullptr);
    } else {
      volume::ProbabilityVolumes provider(&set, 200);
      sim::detail::MetricAccumulator acc(config);
      if (snapshot.has_value()) {
        persist::EvalRestore restore(*snapshot);
        restore.seed_accumulator(acc, 0, 1);
      }
      result = stream
                   ? sim::PredictionEvaluator(config).run_range(
                         *view, provider, meta, range_begin, range_end, acc,
                         publish)
                   : sim::PredictionEvaluator(config).run_range(
                         trace, provider, meta, range_begin, range_end, acc,
                         publish);
      if (!save_state.empty()) {
        const sim::detail::MetricAccumulator* accs[] = {&acc};
        captured = persist::capture_eval_state({}, accs, echo, range_end,
                                               total, fingerprint);
      }
    }
    std::fprintf(info, "scheme: probability (%zu volumes)\n",
                 set.volume_count());
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
    return 2;
  }

  std::optional<SnapshotNote> saved_note;
  if (!save_state.empty()) {
    PW_ENSURE(captured.has_value());
    const auto bytes = persist::serialize_eval_snapshot(*captured);
    std::string error;
    if (!persist::write_file_bytes(save_state, bytes, error)) {
      std::fprintf(stderr, "cannot save state to %s: %s\n",
                   save_state.c_str(), error.c_str());
      return 1;
    }
    saved_note = {save_state, persist::snapshot_checksum(bytes)};
    std::fprintf(info, "saved state at request %zu/%zu to %s\n", range_end,
                 total, save_state.c_str());
  }
  if (run_scope != nullptr &&
      (loaded_note.has_value() || saved_note.has_value())) {
    auto snapshots = obs::Json::object();
    if (loaded_note.has_value()) {
      snapshots.set("loaded", snapshot_note_json(*loaded_note));
    }
    if (saved_note.has_value()) {
      snapshots.set("saved", snapshot_note_json(*saved_note));
    }
    run_scope->note("snapshots", std::move(snapshots));
  }

  if (report == "json") {
    std::cout << sim::render_eval_report_json(result) << "\n";
  } else {
    std::cout << sim::render_eval_report(result);
  }
  return 0;
}

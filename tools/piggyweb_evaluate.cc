// piggyweb_evaluate — replay a CLF log through the piggybacking protocol
// and report the paper's §3.1 metrics for a chosen volume scheme/filter.
//
//   piggyweb_evaluate --log=site.log --scheme=directory --level=1
//       --minfreq=10 --rpv-timeout=30
//   piggyweb_evaluate --log=site.log --scheme=probability --pt=0.2 --eff=0.2
//   piggyweb_evaluate --log=site.log --scheme=probability
//       --volumes=pretrained.txt
#include <cstdio>
#include <fstream>
#include <iostream>

#include "cli_common.h"
#include "server/meta.h"
#include "sim/parallel_eval.h"
#include "sim/prediction_eval.h"
#include "sim/report.h"
#include "trace/clf.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"
#include "volume/sharded_pair_counter.h"
#include "volume/serialize.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  tools::FlagSet flags(
      "evaluate a volume scheme + proxy filter over a CLF web log");
  flags.add_string("log", "", "input CLF file (required)");
  flags.add_string("server-name", "server", "origin name for server logs");
  flags.add_string("scheme", "directory", "directory|probability");
  flags.add_int("level", 1, "directory scheme: prefix level");
  flags.add_double("pt", 0.2, "probability scheme: threshold p_t");
  flags.add_double("eff", 0.0,
                   "probability scheme: effectiveness threshold (0 = off)");
  flags.add_int("combine-level", 0,
                "probability scheme: same-prefix restriction (0 = off)");
  flags.add_string("volumes", "",
                   "probability scheme: load pretrained volumes instead of "
                   "training on the log");
  flags.add_int("min-count", 10, "training: minimum resource access count");
  flags.add_int("maxpiggy", 50, "filter: maximum elements per piggyback");
  flags.add_int("minfreq", 0, "filter: minimum whole-trace access count");
  flags.add_int("rpv-timeout", 0,
                "RPV suppression window in seconds (0 = off)");
  flags.add_int("min-interval", 0,
                "frequency control: min seconds between piggybacks "
                "(0 = off)");
  flags.add_int("window", 300, "prediction window T (seconds)");
  flags.add_int("horizon", 7200, "cache horizon C (seconds)");
  flags.add_int("threads", 1,
                "worker threads for the sharded evaluator (1 = serial, "
                "0 = hardware concurrency); metrics are identical for "
                "any value");
  flags.add_string("report", "text",
                   "report format: text (aligned table) or json (same "
                   "fields, machine-readable, alone on stdout)");
  tools::add_observability_flags(flags);
  if (!flags.parse(argc, argv)) return 2;

  const auto report = flags.get_string("report");
  if (report != "text" && report != "json") {
    std::fprintf(stderr, "unknown --report '%s'\n", report.c_str());
    return 2;
  }
  // In JSON mode stdout carries only the report document; progress lines
  // move to stderr.
  std::FILE* const info = report == "json" ? stderr : stdout;
  const auto run_scope =
      tools::make_run_scope(flags, "piggyweb_evaluate", argc, argv);

  const auto path = flags.get_string("log");
  if (path.empty()) {
    std::fprintf(stderr, "--log is required\n");
    return 2;
  }
  const auto threads_flag = flags.get_int("threads");
  if (threads_flag < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  trace::Trace trace;
  trace::ClfLoadOptions options;
  options.server_name = flags.get_string("server-name");
  const auto load = trace::load_clf(in, trace, options);
  trace.sort_by_time();
  std::fprintf(info, "parsed %zu requests (%zu malformed, %zu filtered)\n",
               load.parsed, load.skipped_malformed, load.skipped_filtered);
  if (trace.empty()) return 1;

  sim::EvalConfig config;
  config.prediction_window = flags.get_int("window");
  config.cache_horizon = flags.get_int("horizon");
  config.filter.max_elements =
      static_cast<std::uint32_t>(flags.get_int("maxpiggy"));
  config.filter.min_access_count =
      static_cast<std::uint32_t>(flags.get_int("minfreq"));
  config.use_rpv = flags.get_int("rpv-timeout") > 0;
  config.rpv.timeout = flags.get_int("rpv-timeout");
  config.min_piggyback_interval = flags.get_int("min-interval");

  const auto threads = static_cast<std::size_t>(threads_flag);
  sim::ParallelEvalConfig par;
  par.threads = threads;

  server::TraceMetaOracle meta(trace);
  sim::EvalResult result;
  const auto scheme = flags.get_string("scheme");
  if (scheme == "directory") {
    volume::DirectoryVolumeConfig dvc;
    dvc.level = static_cast<int>(flags.get_int("level"));
    if (threads != 1) {
      sim::ParallelEvalStats stats;
      const auto spec = sim::shard_directory_volumes(dvc, trace);
      result = sim::ParallelEvaluator(config, par).run(trace, spec, meta,
                                                       &stats);
      std::fprintf(info,
                   "scheme: directory level-%d (%zu volumes, %zu threads)\n",
                   dvc.level, stats.volume_count, stats.threads);
    } else {
      volume::DirectoryVolumes volumes(dvc);
      volumes.bind_paths(trace.paths());
      result = sim::PredictionEvaluator(config).run(trace, volumes, meta);
      std::fprintf(info, "scheme: directory level-%d (%zu volumes)\n",
                   dvc.level, volumes.volume_count());
    }
  } else if (scheme == "probability") {
    volume::ProbabilityVolumeSet set;
    if (const auto volumes_path = flags.get_string("volumes");
        !volumes_path.empty()) {
      std::ifstream volumes_in(volumes_path);
      if (!volumes_in) {
        std::fprintf(stderr, "cannot open %s\n", volumes_path.c_str());
        return 1;
      }
      std::string error;
      auto loaded =
          volume::load_volume_set(volumes_in, trace.paths(), error);
      if (!loaded) {
        std::fprintf(stderr, "bad volume file: %s\n", error.c_str());
        return 1;
      }
      set = std::move(*loaded);
    } else {
      volume::PairCounterConfig pcc;
      pcc.window = config.prediction_window;
      const auto min_count =
          static_cast<std::uint64_t>(flags.get_int("min-count"));
      const auto counts =
          threads != 1
              ? volume::ParallelPairCounterBuilder(pcc, threads)
                    .build(trace, min_count)
              : volume::PairCounterBuilder(pcc).build(trace, min_count);
      volume::ProbabilityVolumeConfig pvc;
      pvc.probability_threshold = flags.get_double("pt");
      pvc.effectiveness_threshold = flags.get_double("eff");
      pvc.combine_prefix_level =
          static_cast<int>(flags.get_int("combine-level"));
      pvc.window = config.prediction_window;
      set = volume::build_probability_volumes(trace, counts, pvc);
    }
    if (threads != 1) {
      const auto spec = sim::shard_probability_volumes(&set, 200);
      result = sim::ParallelEvaluator(config, par).run(trace, spec, meta);
    } else {
      volume::ProbabilityVolumes provider(&set, 200);
      result = sim::PredictionEvaluator(config).run(trace, provider, meta);
    }
    std::fprintf(info, "scheme: probability (%zu volumes)\n",
                 set.volume_count());
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
    return 2;
  }

  if (report == "json") {
    std::cout << sim::render_eval_report_json(result) << "\n";
  } else {
    std::cout << sim::render_eval_report(result);
  }
  return 0;
}

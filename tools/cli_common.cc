#include "cli_common.h"

#include <cstdio>

#include "util/expect.h"
#include "util/strings.h"

namespace piggyweb::tools {

void FlagSet::add_string(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  flags_[name] = {Type::kString, default_value, help, default_value};
}

void FlagSet::add_double(const std::string& name, double default_value,
                         const std::string& help) {
  const auto text = std::to_string(default_value);
  flags_[name] = {Type::kDouble, text, help, text};
}

void FlagSet::add_int(const std::string& name, std::int64_t default_value,
                      const std::string& help) {
  const auto text = std::to_string(default_value);
  flags_[name] = {Type::kInt, text, help, text};
}

void FlagSet::add_bool(const std::string& name, bool default_value,
                       const std::string& help) {
  const std::string text = default_value ? "true" : "false";
  flags_[name] = {Type::kBool, text, help, text};
}

bool FlagSet::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (!util::starts_with(arg, "--")) {
      std::fprintf(stderr, "error: positional argument '%s' not accepted\n",
                   argv[i]);
      print_usage(argv[0]);
      return false;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      value = "true";  // bare boolean
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "error: unknown flag --%s\n", name.c_str());
      print_usage(argv[0]);
      return false;
    }
    // Validate by type.
    switch (it->second.type) {
      case Type::kString:
        break;
      case Type::kDouble: {
        double parsed = 0;
        if (!util::parse_double(value, parsed)) {
          std::fprintf(stderr, "error: --%s expects a number, got '%s'\n",
                       name.c_str(), value.c_str());
          return false;
        }
        break;
      }
      case Type::kInt: {
        std::int64_t parsed = 0;
        if (!util::parse_i64(value, parsed)) {
          std::fprintf(stderr, "error: --%s expects an integer, got '%s'\n",
                       name.c_str(), value.c_str());
          return false;
        }
        break;
      }
      case Type::kBool:
        if (value != "true" && value != "false") {
          std::fprintf(stderr,
                       "error: --%s expects true/false, got '%s'\n",
                       name.c_str(), value.c_str());
          return false;
        }
        break;
    }
    it->second.value = value;
  }
  return true;
}

const FlagSet::Flag* FlagSet::find(const std::string& name,
                                   Type type) const {
  const auto it = flags_.find(name);
  PW_EXPECT(it != flags_.end());
  PW_EXPECT(it->second.type == type);
  return &it->second;
}

std::string FlagSet::get_string(const std::string& name) const {
  return find(name, Type::kString)->value;
}

double FlagSet::get_double(const std::string& name) const {
  double out = 0;
  PW_ENSURE(util::parse_double(find(name, Type::kDouble)->value, out));
  return out;
}

std::int64_t FlagSet::get_int(const std::string& name) const {
  std::int64_t out = 0;
  PW_ENSURE(util::parse_i64(find(name, Type::kInt)->value, out));
  return out;
}

bool FlagSet::get_bool(const std::string& name) const {
  return find(name, Type::kBool)->value == "true";
}

void FlagSet::print_usage(const char* argv0) const {
  std::fprintf(stderr, "%s — %s\n\nflags:\n", argv0, summary_.c_str());
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%-18s %s (default: %s)\n", name.c_str(),
                 flag.help.c_str(), flag.default_text.c_str());
  }
}

void add_observability_flags(FlagSet& flags) {
  flags.add_string("metrics-out", "",
                   "write a JSON run manifest (config echo + metrics "
                   "registry snapshot) to this file");
  flags.add_string("trace-out", "",
                   "write a Chrome trace-event JSON file (chrome://tracing, "
                   "Perfetto) to this file");
  flags.add_string("prom-out", "",
                   "write a Prometheus text exposition of the metrics "
                   "registry (histogram buckets + p50/p90/p99/p99.9 "
                   "gauges) to this file");
  flags.add_string("flight-recorder", "",
                   "keep a bounded ring of recent trace spans and dump it "
                   "(Chrome trace JSON) to this file on exit, fatal "
                   "signal, or contract failure");
}

std::unique_ptr<obs::RunScope> make_run_scope(const FlagSet& flags,
                                              std::string run_name,
                                              int argc, char** argv) {
  obs::RunScope::Options options;
  options.run_name = std::move(run_name);
  options.metrics_path = flags.get_string("metrics-out");
  options.trace_path = flags.get_string("trace-out");
  options.prom_path = flags.get_string("prom-out");
  options.flight_recorder_path = flags.get_string("flight-recorder");
  if (options.metrics_path.empty() && options.trace_path.empty() &&
      options.prom_path.empty() && options.flight_recorder_path.empty()) {
    return nullptr;
  }
  options.argv.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) options.argv.emplace_back(argv[i]);
  return std::make_unique<obs::RunScope>(std::move(options));
}

}  // namespace piggyweb::tools

#include "trace_load.h"

#include <string>

namespace piggyweb::tools {

void add_trace_flags(FlagSet& flags, const char* primary) {
  flags.add_string(primary, "",
                   "input trace: CLF file, PIGGYTRC binary container, or "
                   "synthetic:<profile>[:scale] (required)");
  flags.add_string("trace-format", "auto",
                   "input format: auto|clf|binary|synthetic");
  flags.add_string("server-name", "server",
                   "origin name recorded for CLF server logs");
  flags.add_bool("keep-uncachable", false,
                 "keep cgi/query URLs instead of the paper's cleanup");
}

bool trace_options_from_flags(const FlagSet& flags,
                              trace::TraceSourceOptions& out) {
  const auto format_name = flags.get_string("trace-format");
  if (!trace::parse_trace_format(format_name, out.format)) {
    std::fprintf(stderr,
                 "unknown --trace-format '%s' (auto|clf|binary|synthetic)\n",
                 format_name.c_str());
    return false;
  }
  out.clf.server_name = flags.get_string("server-name");
  out.clf.drop_uncachable = !flags.get_bool("keep-uncachable");
  return true;
}

namespace {

void print_parsed_line(std::FILE* info, const trace::TraceLoadStats& stats) {
  std::fprintf(info,
               "parsed %zu requests (%zu malformed, %zu filtered, "
               "format %s, backing %s)\n",
               stats.requests, stats.skipped_malformed,
               stats.skipped_filtered,
               std::string(trace::trace_format_name(stats.format)).c_str(),
               std::string(trace::trace_backing_name(stats.backing)).c_str());
}

}  // namespace

int load_trace_from_flags(const FlagSet& flags, std::FILE* info,
                          trace::Trace& out, const char* primary,
                          trace::TraceLoadStats* stats_out) {
  const auto spec = flags.get_string(primary);
  if (spec.empty()) {
    std::fprintf(stderr, "--%s is required\n", primary);
    return 2;
  }
  trace::TraceSourceOptions options;
  if (!trace_options_from_flags(flags, options)) return 2;
  trace::TraceLoadStats stats;
  std::string error;
  if (!trace::load_trace(spec, options, out, stats, error)) {
    std::fprintf(stderr, "cannot load %s: %s\n", spec.c_str(),
                 error.c_str());
    return 1;
  }
  print_parsed_line(info, stats);
  if (stats_out != nullptr) *stats_out = stats;
  if (out.empty()) {
    std::fprintf(stderr, "%s holds no usable requests\n", spec.c_str());
    return 1;
  }
  return 0;
}

int load_view_from_flags(const FlagSet& flags, std::FILE* info,
                         std::unique_ptr<trace::TraceView>& out,
                         const char* primary,
                         trace::TraceLoadStats* stats_out) {
  const auto spec = flags.get_string(primary);
  if (spec.empty()) {
    std::fprintf(stderr, "--%s is required\n", primary);
    return 2;
  }
  trace::TraceSourceOptions options;
  if (!trace_options_from_flags(flags, options)) return 2;
  trace::TraceLoadStats stats;
  std::string error;
  out = trace::open_trace_view(spec, options, stats, error);
  if (out == nullptr) {
    std::fprintf(stderr, "cannot load %s: %s\n", spec.c_str(),
                 error.c_str());
    return 1;
  }
  print_parsed_line(info, stats);
  if (stats_out != nullptr) *stats_out = stats;
  if (out->request_count() == 0) {
    std::fprintf(stderr, "%s holds no usable requests\n", spec.c_str());
    return 1;
  }
  return 0;
}

obs::Json trace_stats_note(const trace::TraceLoadStats& stats) {
  auto note = obs::Json::object();
  note.set("requests", static_cast<std::uint64_t>(stats.requests));
  note.set("skipped_malformed",
           static_cast<std::uint64_t>(stats.skipped_malformed));
  note.set("skipped_filtered",
           static_cast<std::uint64_t>(stats.skipped_filtered));
  note.set("format", std::string(trace::trace_format_name(stats.format)));
  note.set("backing", std::string(trace::trace_backing_name(stats.backing)));
  return note;
}

}  // namespace piggyweb::tools

#include "bench_compare.h"

#include <utility>

namespace piggyweb::tools {

namespace {

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string join_path(const std::string& path, std::string_view key) {
  if (path.empty()) return std::string(key);
  return path + "." + std::string(key);
}

const char* kind_name(BenchKeyKind kind) {
  switch (kind) {
    case BenchKeyKind::kTiming:
      return "timing";
    case BenchKeyKind::kRate:
      return "rate";
    case BenchKeyKind::kBoolean:
      return "boolean";
    case BenchKeyKind::kWorkload:
      return "workload";
  }
  return "unknown";
}

const char* status_name(BenchDelta::Status status) {
  switch (status) {
    case BenchDelta::Status::kOk:
      return "ok";
    case BenchDelta::Status::kImprovement:
      return "improvement";
    case BenchDelta::Status::kRegression:
      return "regression";
    case BenchDelta::Status::kSkippedNoise:
      return "skipped_noise";
  }
  return "unknown";
}

// Walks baseline and candidate in lockstep, appending deltas and notes.
class Comparator {
 public:
  Comparator(const BenchCompareOptions& options, BenchCompareReport& report)
      : options_(options), report_(report) {}

  void compare(const obs::Json& base, const obs::Json& cand,
               const std::string& path, std::string_view key) {
    if (base.is_object() && cand.is_object()) {
      compare_objects(base, cand, path);
      return;
    }
    if (base.is_array() && cand.is_array()) {
      compare_arrays(base, cand, path, key);
      return;
    }
    if (base.is_bool() && cand.is_bool()) {
      compare_booleans(base.boolean(), cand.boolean(), path);
      return;
    }
    if (base.is_number() && cand.is_number()) {
      compare_numbers(base.number(), cand.number(), path, key);
      return;
    }
    if (base.is_string() && cand.is_string()) {
      if (base.string() != cand.string()) {
        note(path + ": string differs (\"" + base.string() + "\" vs \"" +
             cand.string() + "\")");
      }
      return;
    }
    if (base.type() != cand.type()) {
      note(path + ": type differs between baseline and candidate");
    }
  }

 private:
  void note(std::string text) { report_.notes.push_back(std::move(text)); }

  void compare_objects(const obs::Json& base, const obs::Json& cand,
                       const std::string& path) {
    // Workload guard: two runs that did different amounts of work are
    // not comparable, so a descriptor mismatch skips the whole subtree.
    for (const auto& [key, value] : base.members()) {
      if (!value.is_number()) continue;
      if (classify_bench_key(key, false) != BenchKeyKind::kWorkload) {
        continue;
      }
      const auto* other = cand.find(key);
      if (other != nullptr && other->is_number() &&
          other->number() != value.number()) {
        note(join_path(path, key) + ": workload differs (" +
             obs::Json(value.number()).dump() + " vs " +
             obs::Json(other->number()).dump() + ") — subtree skipped");
        return;
      }
    }
    for (const auto& [key, value] : base.members()) {
      const auto child = join_path(path, key);
      const auto* other = cand.find(key);
      if (other == nullptr) {
        note(child + ": missing from candidate");
        continue;
      }
      compare(value, *other, child, key);
    }
    for (const auto& [key, value] : cand.members()) {
      (void)value;
      if (base.find(key) == nullptr) {
        note(join_path(path, key) + ": new in candidate (not compared)");
      }
    }
  }

  void compare_arrays(const obs::Json& base, const obs::Json& cand,
                      const std::string& path, std::string_view key) {
    if (base.items().size() != cand.items().size()) {
      note(path + ": array length differs (" +
           std::to_string(base.items().size()) + " vs " +
           std::to_string(cand.items().size()) + ") — skipped");
      return;
    }
    // Arrays of named records (e.g. e2e replica lists) pair by name so a
    // reordering is not misread as a swap of measurements.
    const auto name_of = [](const obs::Json& entry) -> const std::string* {
      if (!entry.is_object()) return nullptr;
      const auto* name = entry.find("name");
      return (name != nullptr && name->is_string()) ? &name->string()
                                                    : nullptr;
    };
    bool all_named = !base.items().empty();
    for (const auto& entry : base.items()) {
      if (name_of(entry) == nullptr) all_named = false;
    }
    for (const auto& entry : cand.items()) {
      if (name_of(entry) == nullptr) all_named = false;
    }
    if (all_named) {
      for (const auto& entry : base.items()) {
        const auto& name = *name_of(entry);
        const obs::Json* match = nullptr;
        for (const auto& other : cand.items()) {
          if (*name_of(other) == name) {
            match = &other;
            break;
          }
        }
        const auto child = path + "[" + name + "]";
        if (match == nullptr) {
          note(child + ": missing from candidate");
          continue;
        }
        compare(entry, *match, child, key);
      }
      return;
    }
    for (std::size_t i = 0; i < base.items().size(); ++i) {
      compare(base.items()[i], cand.items()[i],
              path + "[" + std::to_string(i) + "]", key);
    }
  }

  void compare_booleans(bool base, bool cand, const std::string& path) {
    BenchDelta delta;
    delta.path = path;
    delta.kind = BenchKeyKind::kBoolean;
    delta.baseline = base ? 1.0 : 0.0;
    delta.candidate = cand ? 1.0 : 0.0;
    delta.worse_ratio = 0;
    // Booleans in bench reports are invariants (checksums_match, ...):
    // losing one is a regression regardless of --ratio-only.
    delta.gated = true;
    if (base && !cand) {
      delta.status = BenchDelta::Status::kRegression;
    } else if (!base && cand) {
      delta.status = BenchDelta::Status::kImprovement;
    } else {
      delta.status = BenchDelta::Status::kOk;
    }
    report_.deltas.push_back(std::move(delta));
  }

  void compare_numbers(double base, double cand, const std::string& path,
                       std::string_view key) {
    const auto kind = classify_bench_key(key, false);
    if (kind == BenchKeyKind::kWorkload) {
      return;  // equal by the guard above, or a bare top-level number
    }
    BenchDelta delta;
    delta.path = path;
    delta.kind = kind;
    delta.baseline = base;
    delta.candidate = cand;
    if (kind == BenchKeyKind::kTiming) {
      delta.gated = !options_.ratio_only;
      if ((base < options_.min_seconds && cand < options_.min_seconds) ||
          base <= 0) {
        delta.status = BenchDelta::Status::kSkippedNoise;
        delta.gated = false;
      } else {
        delta.worse_ratio = cand / base;
        if (cand > base * (1 + options_.threshold)) {
          delta.status = BenchDelta::Status::kRegression;
        } else if (cand < base * (1 - options_.threshold)) {
          delta.status = BenchDelta::Status::kImprovement;
        } else {
          delta.status = BenchDelta::Status::kOk;
        }
      }
    } else {  // kRate: higher is better
      delta.gated = true;
      if (base <= 0) {
        delta.status = BenchDelta::Status::kSkippedNoise;
        delta.gated = false;
      } else if (cand <= 0) {
        delta.status = BenchDelta::Status::kRegression;
      } else {
        delta.worse_ratio = base / cand;
        if (cand < base * (1 - options_.threshold)) {
          delta.status = BenchDelta::Status::kRegression;
        } else if (cand > base * (1 + options_.threshold)) {
          delta.status = BenchDelta::Status::kImprovement;
        } else {
          delta.status = BenchDelta::Status::kOk;
        }
      }
    }
    report_.deltas.push_back(std::move(delta));
  }

  const BenchCompareOptions& options_;
  BenchCompareReport& report_;
};

}  // namespace

BenchKeyKind classify_bench_key(std::string_view key, bool is_boolean) {
  if (is_boolean) return BenchKeyKind::kBoolean;
  // Rates first: "per_second" would otherwise be caught by a sloppy
  // timing match.
  if (contains(key, "per_second") || contains(key, "speedup")) {
    return BenchKeyKind::kRate;
  }
  if (contains(key, "seconds")) return BenchKeyKind::kTiming;
  return BenchKeyKind::kWorkload;
}

std::size_t BenchCompareReport::gated_comparisons() const {
  std::size_t gated = 0;
  for (const auto& delta : deltas) {
    if (delta.gated) ++gated;
  }
  return gated;
}

bool BenchCompareReport::has_regression() const {
  for (const auto& delta : deltas) {
    if (delta.gated && delta.status == BenchDelta::Status::kRegression) {
      return true;
    }
  }
  return false;
}

obs::Json BenchCompareReport::to_json(
    const BenchCompareOptions& options) const {
  auto root = obs::Json::object();
  root.set("piggyweb_benchdiff", 1);
  auto opts = obs::Json::object();
  opts.set("threshold", options.threshold);
  opts.set("min_seconds", options.min_seconds);
  opts.set("ratio_only", options.ratio_only);
  root.set("options", std::move(opts));
  std::size_t regressions = 0;
  auto list = obs::Json::array();
  for (const auto& delta : deltas) {
    if (delta.gated && delta.status == BenchDelta::Status::kRegression) {
      ++regressions;
    }
    auto entry = obs::Json::object();
    entry.set("path", delta.path);
    entry.set("kind", kind_name(delta.kind));
    entry.set("status", status_name(delta.status));
    entry.set("baseline", delta.baseline);
    entry.set("candidate", delta.candidate);
    entry.set("worse_ratio", delta.worse_ratio);
    entry.set("gated", delta.gated);
    list.push_back(std::move(entry));
  }
  root.set("compared", gated_comparisons());
  root.set("regressions", regressions);
  root.set("deltas", std::move(list));
  auto note_list = obs::Json::array();
  for (const auto& text : notes) note_list.push_back(text);
  root.set("notes", std::move(note_list));
  return root;
}

BenchCompareReport compare_bench_reports(const obs::Json& baseline,
                                         const obs::Json& candidate,
                                         const BenchCompareOptions& options) {
  BenchCompareReport report;
  if (!baseline.is_object() || !candidate.is_object()) {
    report.notes.push_back("top level is not an object on both sides");
    return report;
  }
  Comparator(options, report).compare(baseline, candidate, "", "");
  return report;
}

namespace {

obs::Json scale_node(const obs::Json& node, std::string_view key,
                     double factor) {
  if (node.is_object()) {
    auto out = obs::Json::object();
    for (const auto& [child_key, value] : node.members()) {
      out.set(child_key, scale_node(value, child_key, factor));
    }
    return out;
  }
  if (node.is_array()) {
    auto out = obs::Json::array();
    for (const auto& value : node.items()) {
      out.push_back(scale_node(value, key, factor));
    }
    return out;
  }
  if (node.is_number()) {
    switch (classify_bench_key(key, false)) {
      case BenchKeyKind::kTiming:
        return obs::Json(node.number() * factor);
      case BenchKeyKind::kRate:
        return obs::Json(node.number() / factor);
      default:
        break;
    }
  }
  return node;
}

}  // namespace

obs::Json inject_slowdown(const obs::Json& report, double factor) {
  return scale_node(report, "", factor);
}

}  // namespace piggyweb::tools

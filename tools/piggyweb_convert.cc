// piggyweb_convert — convert traces between formats. The usual direction
// is CLF text (or a synthetic spec) to the "PIGGYTRC" columnar binary
// container, which piggyweb_evaluate then replays zero-copy via mmap;
// binary back to CLF recovers a text log for external tools.
//
//   piggyweb_convert --in=access.log --out=access.trc
//   piggyweb_convert --in=access.trc --out=access.log --to=clf
//   piggyweb_convert --in=synthetic:aiusa:0.05 --out=aiusa.trc --verify
//
// --verify (binary output only) maps the written container back and
// requires it to reproduce the source trace bit-exactly: same request
// columns, same string tables, same content fingerprint.
#include <cstdio>
#include <fstream>
#include <memory>

#include "cli_common.h"
#include "persist/codec.h"
#include "trace/binary.h"
#include "trace/clf.h"
#include "trace_load.h"
#include "util/mmap_file.h"

using namespace piggyweb;

namespace {

// Field-by-field equality of two traces (requests and string tables).
// Separate from the fingerprint check so a mismatch is diagnosable.
bool traces_identical(const trace::Trace& a, const trace::Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a.requests()[i];
    const auto& y = b.requests()[i];
    if (x.time != y.time || x.source != y.source || x.server != y.server ||
        x.path != y.path || x.method != y.method || x.status != y.status ||
        x.size != y.size || x.last_modified != y.last_modified) {
      return false;
    }
  }
  const auto tables_equal = [](const util::InternTable& s,
                               const util::InternTable& t) {
    if (s.size() != t.size()) return false;
    for (std::size_t id = 0; id < s.size(); ++id) {
      if (s.str(static_cast<util::InternId>(id)) !=
          t.str(static_cast<util::InternId>(id))) {
        return false;
      }
    }
    return true;
  };
  return tables_equal(a.sources(), b.sources()) &&
         tables_equal(a.servers(), b.servers()) &&
         tables_equal(a.paths(), b.paths());
}

}  // namespace

int main(int argc, char** argv) {
  tools::FlagSet flags(
      "convert a trace between CLF text and the PIGGYTRC binary container");
  tools::add_trace_flags(flags, "in");
  flags.add_string("out", "", "output file (required)");
  flags.add_string("to", "binary", "output format: binary|clf");
  flags.add_bool("verify", false,
                 "binary output: map the written file back and require a "
                 "bit-exact round trip");
  flags.add_bool("stream", false,
                 "binary -> clf only: convert window by window straight "
                 "off the mmap'd container without materializing the "
                 "trace (bounded memory; identical output bytes)");
  tools::add_observability_flags(flags);
  if (!flags.parse(argc, argv)) return 2;
  const auto run_scope =
      tools::make_run_scope(flags, "piggyweb_convert", argc, argv);

  const auto out_path = flags.get_string("out");
  if (out_path.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 2;
  }
  const auto to = flags.get_string("to");
  if (to != "binary" && to != "clf") {
    std::fprintf(stderr, "unknown --to '%s' (binary|clf)\n", to.c_str());
    return 2;
  }
  const bool verify = flags.get_bool("verify");
  if (verify && to != "binary") {
    // CLF does not carry server names or Last-Modified, so only the
    // binary container can promise a bit-exact round trip.
    std::fprintf(stderr, "--verify requires --to=binary\n");
    return 2;
  }

  const bool stream = flags.get_bool("stream");
  if (stream && to != "clf") {
    // Binary -> binary would be a file copy; CLF input materializes while
    // parsing anyway. The windowed path only pays off for binary -> clf.
    std::fprintf(stderr, "--stream requires --to=clf\n");
    return 2;
  }
  if (stream) {
    std::unique_ptr<trace::TraceView> view;
    trace::TraceLoadStats load_stats;
    if (const int rc = tools::load_view_from_flags(flags, stdout, view, "in",
                                                   &load_stats);
        rc != 0) {
      return rc;
    }
    if (run_scope != nullptr) {
      run_scope->note("trace", tools::trace_stats_note(load_stats));
    }
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    trace::write_clf(out, *view);
    std::printf("wrote %s (clf, %zu requests, streamed)\n", out_path.c_str(),
                view->request_count());
    return 0;
  }

  trace::Trace trace;
  trace::TraceLoadStats load_stats;
  if (const int rc = tools::load_trace_from_flags(flags, stdout, trace, "in",
                                                  &load_stats);
      rc != 0) {
    return rc;
  }
  if (run_scope != nullptr) {
    run_scope->note("trace", tools::trace_stats_note(load_stats));
  }

  if (to == "clf") {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    trace::write_clf(out, trace);
    std::printf("wrote %s (clf, %zu requests)\n", out_path.c_str(),
                trace.size());
    return 0;
  }

  const auto bytes = trace::serialize_binary_trace(trace);
  std::string error;
  if (!persist::write_file_bytes(out_path, bytes, error)) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("wrote %s (binary, %zu requests, %zu bytes, checksum %s)\n",
              out_path.c_str(), trace.size(), bytes.size(),
              persist::checksum_hex(persist::snapshot_checksum(bytes))
                  .c_str());

  if (verify) {
    auto mapping = util::MmapFile::open(out_path, error);
    if (!mapping) {
      std::fprintf(stderr, "verify: %s\n", error.c_str());
      return 1;
    }
    trace::Trace reloaded;
    if (!trace::load_binary_trace(mapping->bytes(), reloaded, error)) {
      std::fprintf(stderr, "verify: %s: %s\n", out_path.c_str(),
                   error.c_str());
      return 1;
    }
    if (!traces_identical(trace, reloaded) ||
        trace::trace_content_fingerprint(reloaded) !=
            trace::trace_content_fingerprint(trace)) {
      std::fprintf(stderr, "verify: %s does not round-trip the input\n",
                   out_path.c_str());
      return 1;
    }
    std::printf("verified: round trip is bit-exact\n");
  }
  return 0;
}

// piggyweb_benchdiff — noise-aware perf-regression gate over two bench
// reports (BENCH_*.json) or run manifests.
//
//   piggyweb_benchdiff --baseline=a.json --candidate=b.json
//   piggyweb_benchdiff --baseline=a.json --candidate=b.json
//       --threshold=0.15 --min-seconds=0.005 --json=diff.json
//   piggyweb_benchdiff --baseline=a.json --inject-slowdown=1.25
//       --inject-out=slow.json       # fault injector for testing the gate
//
// Keys are classified by name (timings lower-better, rates higher-better,
// booleans must not flip true->false, other numbers are workload
// descriptors that gate comparability); see bench_compare.h for the
// exact rules. Exit codes: 0 = no regression, 1 = regression beyond the
// threshold, 2 = usage or I/O error. --ratio-only restricts the gate to
// dimensionless comparisons for cross-machine diffs.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "bench_compare.h"
#include "cli_common.h"
#include "obs/json.h"

using namespace piggyweb;

namespace {

std::optional<obs::Json> load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "benchdiff: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto parsed = obs::parse_json(buffer.str(), &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "benchdiff: %s: invalid JSON: %s\n", path.c_str(),
                 error.c_str());
  }
  return parsed;
}

bool write_json_file(const std::string& path, const obs::Json& value) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "benchdiff: cannot write %s\n", path.c_str());
    return false;
  }
  out << value.dump(2) << "\n";
  return out.good();
}

const char* kind_label(tools::BenchKeyKind kind) {
  switch (kind) {
    case tools::BenchKeyKind::kTiming:
      return "timing";
    case tools::BenchKeyKind::kRate:
      return "rate";
    case tools::BenchKeyKind::kBoolean:
      return "boolean";
    case tools::BenchKeyKind::kWorkload:
      return "workload";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  tools::FlagSet flags(
      "compare two bench reports / run manifests for perf regressions");
  flags.add_string("baseline", "", "reference report (the 'before' run)");
  flags.add_string("candidate", "", "report under test (the 'after' run)");
  flags.add_double("threshold", 0.10,
                   "relative change that counts as a regression");
  flags.add_double("min-seconds", 1e-3,
                   "timings below this on both sides are skipped as noise");
  flags.add_bool("ratio-only", false,
                 "gate only dimensionless comparisons (rates, booleans); "
                 "for reports from different machines");
  flags.add_string("json", "", "write the machine-readable diff here");
  flags.add_double("inject-slowdown", 0,
                   "fault injector: scale --baseline's timings by this "
                   "factor and write the result to --inject-out");
  flags.add_string("inject-out", "",
                   "output path for --inject-slowdown");
  if (!flags.parse(argc, argv)) return 2;

  const auto baseline_path = flags.get_string("baseline");
  if (baseline_path.empty()) {
    std::fprintf(stderr, "benchdiff: --baseline is required\n");
    return 2;
  }
  const auto baseline = load_json_file(baseline_path);
  if (!baseline.has_value()) return 2;

  const double inject = flags.get_double("inject-slowdown");
  if (inject > 0) {
    const auto inject_path = flags.get_string("inject-out");
    if (inject_path.empty()) {
      std::fprintf(stderr,
                   "benchdiff: --inject-slowdown requires --inject-out\n");
      return 2;
    }
    const auto scaled = tools::inject_slowdown(*baseline, inject);
    if (!write_json_file(inject_path, scaled)) return 2;
    std::printf("benchdiff: wrote %s (timings x%.3f)\n", inject_path.c_str(),
                inject);
    return 0;
  }

  const auto candidate_path = flags.get_string("candidate");
  if (candidate_path.empty()) {
    std::fprintf(stderr, "benchdiff: --candidate is required\n");
    return 2;
  }
  const auto candidate = load_json_file(candidate_path);
  if (!candidate.has_value()) return 2;

  tools::BenchCompareOptions options;
  options.threshold = flags.get_double("threshold");
  options.min_seconds = flags.get_double("min-seconds");
  options.ratio_only = flags.get_bool("ratio-only");
  if (options.threshold <= 0) {
    std::fprintf(stderr, "benchdiff: --threshold must be positive\n");
    return 2;
  }

  const auto report =
      tools::compare_bench_reports(*baseline, *candidate, options);

  for (const auto& delta : report.deltas) {
    const bool interesting =
        delta.status == tools::BenchDelta::Status::kRegression ||
        delta.status == tools::BenchDelta::Status::kImprovement;
    if (!interesting) continue;
    const char* verdict =
        delta.status == tools::BenchDelta::Status::kRegression
            ? (delta.gated ? "REGRESSION" : "regression (ungated)")
            : "improvement";
    std::printf("%s %s %s: %g -> %g (worse-ratio %.3f)\n", verdict,
                kind_label(delta.kind), delta.path.c_str(), delta.baseline,
                delta.candidate, delta.worse_ratio);
  }
  for (const auto& text : report.notes) {
    std::fprintf(stderr, "benchdiff: note: %s\n", text.c_str());
  }
  std::printf("benchdiff: %zu gated comparison(s), %s\n",
              report.gated_comparisons(),
              report.has_regression() ? "regression detected"
                                      : "no regression");

  const auto json_path = flags.get_string("json");
  if (!json_path.empty() &&
      !write_json_file(json_path, report.to_json(options))) {
    return 2;
  }
  return report.has_regression() ? 1 : 0;
}

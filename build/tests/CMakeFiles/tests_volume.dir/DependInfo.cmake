
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/volume_directory_test.cc" "tests/CMakeFiles/tests_volume.dir/volume_directory_test.cc.o" "gcc" "tests/CMakeFiles/tests_volume.dir/volume_directory_test.cc.o.d"
  "/root/repo/tests/volume_pair_counter_test.cc" "tests/CMakeFiles/tests_volume.dir/volume_pair_counter_test.cc.o" "gcc" "tests/CMakeFiles/tests_volume.dir/volume_pair_counter_test.cc.o.d"
  "/root/repo/tests/volume_popularity_test.cc" "tests/CMakeFiles/tests_volume.dir/volume_popularity_test.cc.o" "gcc" "tests/CMakeFiles/tests_volume.dir/volume_popularity_test.cc.o.d"
  "/root/repo/tests/volume_probability_test.cc" "tests/CMakeFiles/tests_volume.dir/volume_probability_test.cc.o" "gcc" "tests/CMakeFiles/tests_volume.dir/volume_probability_test.cc.o.d"
  "/root/repo/tests/volume_serialize_test.cc" "tests/CMakeFiles/tests_volume.dir/volume_serialize_test.cc.o" "gcc" "tests/CMakeFiles/tests_volume.dir/volume_serialize_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/piggyweb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/piggyweb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/piggyweb_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/piggyweb_server.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/piggyweb_http.dir/DependInfo.cmake"
  "/root/repo/build/src/volume/CMakeFiles/piggyweb_volume.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/piggyweb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/piggyweb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/piggyweb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tests_volume.dir/volume_directory_test.cc.o"
  "CMakeFiles/tests_volume.dir/volume_directory_test.cc.o.d"
  "CMakeFiles/tests_volume.dir/volume_pair_counter_test.cc.o"
  "CMakeFiles/tests_volume.dir/volume_pair_counter_test.cc.o.d"
  "CMakeFiles/tests_volume.dir/volume_popularity_test.cc.o"
  "CMakeFiles/tests_volume.dir/volume_popularity_test.cc.o.d"
  "CMakeFiles/tests_volume.dir/volume_probability_test.cc.o"
  "CMakeFiles/tests_volume.dir/volume_probability_test.cc.o.d"
  "CMakeFiles/tests_volume.dir/volume_serialize_test.cc.o"
  "CMakeFiles/tests_volume.dir/volume_serialize_test.cc.o.d"
  "tests_volume"
  "tests_volume.pdb"
  "tests_volume[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tests_volume.
# This may be replaced when dependencies are built.

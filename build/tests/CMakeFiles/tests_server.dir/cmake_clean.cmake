file(REMOVE_RECURSE
  "CMakeFiles/tests_server.dir/server_meta_test.cc.o"
  "CMakeFiles/tests_server.dir/server_meta_test.cc.o.d"
  "CMakeFiles/tests_server.dir/server_origin_test.cc.o"
  "CMakeFiles/tests_server.dir/server_origin_test.cc.o.d"
  "CMakeFiles/tests_server.dir/server_volume_center_test.cc.o"
  "CMakeFiles/tests_server.dir/server_volume_center_test.cc.o.d"
  "tests_server"
  "tests_server.pdb"
  "tests_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/http_chunked_test.cc" "tests/CMakeFiles/tests_http.dir/http_chunked_test.cc.o" "gcc" "tests/CMakeFiles/tests_http.dir/http_chunked_test.cc.o.d"
  "/root/repo/tests/http_connection_test.cc" "tests/CMakeFiles/tests_http.dir/http_connection_test.cc.o" "gcc" "tests/CMakeFiles/tests_http.dir/http_connection_test.cc.o.d"
  "/root/repo/tests/http_date_test.cc" "tests/CMakeFiles/tests_http.dir/http_date_test.cc.o" "gcc" "tests/CMakeFiles/tests_http.dir/http_date_test.cc.o.d"
  "/root/repo/tests/http_header_map_test.cc" "tests/CMakeFiles/tests_http.dir/http_header_map_test.cc.o" "gcc" "tests/CMakeFiles/tests_http.dir/http_header_map_test.cc.o.d"
  "/root/repo/tests/http_message_test.cc" "tests/CMakeFiles/tests_http.dir/http_message_test.cc.o" "gcc" "tests/CMakeFiles/tests_http.dir/http_message_test.cc.o.d"
  "/root/repo/tests/http_piggy_headers_test.cc" "tests/CMakeFiles/tests_http.dir/http_piggy_headers_test.cc.o" "gcc" "tests/CMakeFiles/tests_http.dir/http_piggy_headers_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/piggyweb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/piggyweb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/piggyweb_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/piggyweb_server.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/piggyweb_http.dir/DependInfo.cmake"
  "/root/repo/build/src/volume/CMakeFiles/piggyweb_volume.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/piggyweb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/piggyweb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/piggyweb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

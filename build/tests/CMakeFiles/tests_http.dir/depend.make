# Empty dependencies file for tests_http.
# This may be replaced when dependencies are built.

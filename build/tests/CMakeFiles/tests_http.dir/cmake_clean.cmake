file(REMOVE_RECURSE
  "CMakeFiles/tests_http.dir/http_chunked_test.cc.o"
  "CMakeFiles/tests_http.dir/http_chunked_test.cc.o.d"
  "CMakeFiles/tests_http.dir/http_connection_test.cc.o"
  "CMakeFiles/tests_http.dir/http_connection_test.cc.o.d"
  "CMakeFiles/tests_http.dir/http_date_test.cc.o"
  "CMakeFiles/tests_http.dir/http_date_test.cc.o.d"
  "CMakeFiles/tests_http.dir/http_header_map_test.cc.o"
  "CMakeFiles/tests_http.dir/http_header_map_test.cc.o.d"
  "CMakeFiles/tests_http.dir/http_message_test.cc.o"
  "CMakeFiles/tests_http.dir/http_message_test.cc.o.d"
  "CMakeFiles/tests_http.dir/http_piggy_headers_test.cc.o"
  "CMakeFiles/tests_http.dir/http_piggy_headers_test.cc.o.d"
  "tests_http"
  "tests_http.pdb"
  "tests_http[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

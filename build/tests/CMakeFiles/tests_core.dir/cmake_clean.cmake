file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core_feedback_test.cc.o"
  "CMakeFiles/tests_core.dir/core_feedback_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core_filter_test.cc.o"
  "CMakeFiles/tests_core.dir/core_filter_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core_frequency_test.cc.o"
  "CMakeFiles/tests_core.dir/core_frequency_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core_rpv_test.cc.o"
  "CMakeFiles/tests_core.dir/core_rpv_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core_wire_size_test.cc.o"
  "CMakeFiles/tests_core.dir/core_wire_size_test.cc.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

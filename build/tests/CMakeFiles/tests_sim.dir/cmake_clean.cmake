file(REMOVE_RECURSE
  "CMakeFiles/tests_sim.dir/sim_end_to_end_test.cc.o"
  "CMakeFiles/tests_sim.dir/sim_end_to_end_test.cc.o.d"
  "CMakeFiles/tests_sim.dir/sim_ground_truth_test.cc.o"
  "CMakeFiles/tests_sim.dir/sim_ground_truth_test.cc.o.d"
  "CMakeFiles/tests_sim.dir/sim_hierarchy_test.cc.o"
  "CMakeFiles/tests_sim.dir/sim_hierarchy_test.cc.o.d"
  "CMakeFiles/tests_sim.dir/sim_locality_test.cc.o"
  "CMakeFiles/tests_sim.dir/sim_locality_test.cc.o.d"
  "CMakeFiles/tests_sim.dir/sim_prediction_eval_test.cc.o"
  "CMakeFiles/tests_sim.dir/sim_prediction_eval_test.cc.o.d"
  "CMakeFiles/tests_sim.dir/sim_report_test.cc.o"
  "CMakeFiles/tests_sim.dir/sim_report_test.cc.o.d"
  "tests_sim"
  "tests_sim.pdb"
  "tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

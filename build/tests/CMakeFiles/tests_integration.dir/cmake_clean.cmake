file(REMOVE_RECURSE
  "CMakeFiles/tests_integration.dir/codec_fuzz_test.cc.o"
  "CMakeFiles/tests_integration.dir/codec_fuzz_test.cc.o.d"
  "CMakeFiles/tests_integration.dir/integration_http_roundtrip_test.cc.o"
  "CMakeFiles/tests_integration.dir/integration_http_roundtrip_test.cc.o.d"
  "CMakeFiles/tests_integration.dir/integration_pipeline_test.cc.o"
  "CMakeFiles/tests_integration.dir/integration_pipeline_test.cc.o.d"
  "CMakeFiles/tests_integration.dir/integration_properties_test.cc.o"
  "CMakeFiles/tests_integration.dir/integration_properties_test.cc.o.d"
  "CMakeFiles/tests_integration.dir/reference_models_test.cc.o"
  "CMakeFiles/tests_integration.dir/reference_models_test.cc.o.d"
  "tests_integration"
  "tests_integration.pdb"
  "tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tests_util.dir/util_date_test.cc.o"
  "CMakeFiles/tests_util.dir/util_date_test.cc.o.d"
  "CMakeFiles/tests_util.dir/util_hash_test.cc.o"
  "CMakeFiles/tests_util.dir/util_hash_test.cc.o.d"
  "CMakeFiles/tests_util.dir/util_intern_test.cc.o"
  "CMakeFiles/tests_util.dir/util_intern_test.cc.o.d"
  "CMakeFiles/tests_util.dir/util_rng_test.cc.o"
  "CMakeFiles/tests_util.dir/util_rng_test.cc.o.d"
  "CMakeFiles/tests_util.dir/util_stats_test.cc.o"
  "CMakeFiles/tests_util.dir/util_stats_test.cc.o.d"
  "CMakeFiles/tests_util.dir/util_strings_test.cc.o"
  "CMakeFiles/tests_util.dir/util_strings_test.cc.o.d"
  "tests_util"
  "tests_util.pdb"
  "tests_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

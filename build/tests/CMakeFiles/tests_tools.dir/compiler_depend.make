# Empty compiler generated dependencies file for tests_tools.
# This may be replaced when dependencies are built.

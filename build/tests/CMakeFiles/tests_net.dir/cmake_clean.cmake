file(REMOVE_RECURSE
  "CMakeFiles/tests_net.dir/net_cost_model_test.cc.o"
  "CMakeFiles/tests_net.dir/net_cost_model_test.cc.o.d"
  "tests_net"
  "tests_net.pdb"
  "tests_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

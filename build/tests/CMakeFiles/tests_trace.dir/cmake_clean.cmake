file(REMOVE_RECURSE
  "CMakeFiles/tests_trace.dir/trace_clf_test.cc.o"
  "CMakeFiles/tests_trace.dir/trace_clf_test.cc.o.d"
  "CMakeFiles/tests_trace.dir/trace_log_stats_test.cc.o"
  "CMakeFiles/tests_trace.dir/trace_log_stats_test.cc.o.d"
  "CMakeFiles/tests_trace.dir/trace_record_test.cc.o"
  "CMakeFiles/tests_trace.dir/trace_record_test.cc.o.d"
  "CMakeFiles/tests_trace.dir/trace_synthetic_test.cc.o"
  "CMakeFiles/tests_trace.dir/trace_synthetic_test.cc.o.d"
  "CMakeFiles/tests_trace.dir/trace_transform_test.cc.o"
  "CMakeFiles/tests_trace.dir/trace_transform_test.cc.o.d"
  "tests_trace"
  "tests_trace.pdb"
  "tests_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tests_proxy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tests_proxy.dir/proxy_adaptive_ttl_test.cc.o"
  "CMakeFiles/tests_proxy.dir/proxy_adaptive_ttl_test.cc.o.d"
  "CMakeFiles/tests_proxy.dir/proxy_cache_test.cc.o"
  "CMakeFiles/tests_proxy.dir/proxy_cache_test.cc.o.d"
  "CMakeFiles/tests_proxy.dir/proxy_coherency_test.cc.o"
  "CMakeFiles/tests_proxy.dir/proxy_coherency_test.cc.o.d"
  "CMakeFiles/tests_proxy.dir/proxy_filter_policy_test.cc.o"
  "CMakeFiles/tests_proxy.dir/proxy_filter_policy_test.cc.o.d"
  "CMakeFiles/tests_proxy.dir/proxy_informed_fetch_test.cc.o"
  "CMakeFiles/tests_proxy.dir/proxy_informed_fetch_test.cc.o.d"
  "CMakeFiles/tests_proxy.dir/proxy_pcv_test.cc.o"
  "CMakeFiles/tests_proxy.dir/proxy_pcv_test.cc.o.d"
  "CMakeFiles/tests_proxy.dir/proxy_prefetch_test.cc.o"
  "CMakeFiles/tests_proxy.dir/proxy_prefetch_test.cc.o.d"
  "tests_proxy"
  "tests_proxy.pdb"
  "tests_proxy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for piggyweb_http.
# This may be replaced when dependencies are built.

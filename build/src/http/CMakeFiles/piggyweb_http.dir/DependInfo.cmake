
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/chunked.cc" "src/http/CMakeFiles/piggyweb_http.dir/chunked.cc.o" "gcc" "src/http/CMakeFiles/piggyweb_http.dir/chunked.cc.o.d"
  "/root/repo/src/http/connection.cc" "src/http/CMakeFiles/piggyweb_http.dir/connection.cc.o" "gcc" "src/http/CMakeFiles/piggyweb_http.dir/connection.cc.o.d"
  "/root/repo/src/http/date.cc" "src/http/CMakeFiles/piggyweb_http.dir/date.cc.o" "gcc" "src/http/CMakeFiles/piggyweb_http.dir/date.cc.o.d"
  "/root/repo/src/http/header_map.cc" "src/http/CMakeFiles/piggyweb_http.dir/header_map.cc.o" "gcc" "src/http/CMakeFiles/piggyweb_http.dir/header_map.cc.o.d"
  "/root/repo/src/http/message.cc" "src/http/CMakeFiles/piggyweb_http.dir/message.cc.o" "gcc" "src/http/CMakeFiles/piggyweb_http.dir/message.cc.o.d"
  "/root/repo/src/http/piggy_headers.cc" "src/http/CMakeFiles/piggyweb_http.dir/piggy_headers.cc.o" "gcc" "src/http/CMakeFiles/piggyweb_http.dir/piggy_headers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/piggyweb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/piggyweb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/piggyweb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpiggyweb_http.a"
)

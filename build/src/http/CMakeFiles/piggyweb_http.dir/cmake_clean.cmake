file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_http.dir/chunked.cc.o"
  "CMakeFiles/piggyweb_http.dir/chunked.cc.o.d"
  "CMakeFiles/piggyweb_http.dir/connection.cc.o"
  "CMakeFiles/piggyweb_http.dir/connection.cc.o.d"
  "CMakeFiles/piggyweb_http.dir/date.cc.o"
  "CMakeFiles/piggyweb_http.dir/date.cc.o.d"
  "CMakeFiles/piggyweb_http.dir/header_map.cc.o"
  "CMakeFiles/piggyweb_http.dir/header_map.cc.o.d"
  "CMakeFiles/piggyweb_http.dir/message.cc.o"
  "CMakeFiles/piggyweb_http.dir/message.cc.o.d"
  "CMakeFiles/piggyweb_http.dir/piggy_headers.cc.o"
  "CMakeFiles/piggyweb_http.dir/piggy_headers.cc.o.d"
  "libpiggyweb_http.a"
  "libpiggyweb_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

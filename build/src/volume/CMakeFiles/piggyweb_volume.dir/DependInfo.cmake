
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/volume/directory.cc" "src/volume/CMakeFiles/piggyweb_volume.dir/directory.cc.o" "gcc" "src/volume/CMakeFiles/piggyweb_volume.dir/directory.cc.o.d"
  "/root/repo/src/volume/pair_counter.cc" "src/volume/CMakeFiles/piggyweb_volume.dir/pair_counter.cc.o" "gcc" "src/volume/CMakeFiles/piggyweb_volume.dir/pair_counter.cc.o.d"
  "/root/repo/src/volume/popularity.cc" "src/volume/CMakeFiles/piggyweb_volume.dir/popularity.cc.o" "gcc" "src/volume/CMakeFiles/piggyweb_volume.dir/popularity.cc.o.d"
  "/root/repo/src/volume/probability.cc" "src/volume/CMakeFiles/piggyweb_volume.dir/probability.cc.o" "gcc" "src/volume/CMakeFiles/piggyweb_volume.dir/probability.cc.o.d"
  "/root/repo/src/volume/serialize.cc" "src/volume/CMakeFiles/piggyweb_volume.dir/serialize.cc.o" "gcc" "src/volume/CMakeFiles/piggyweb_volume.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/piggyweb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/piggyweb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/piggyweb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

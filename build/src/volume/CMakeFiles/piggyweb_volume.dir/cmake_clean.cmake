file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_volume.dir/directory.cc.o"
  "CMakeFiles/piggyweb_volume.dir/directory.cc.o.d"
  "CMakeFiles/piggyweb_volume.dir/pair_counter.cc.o"
  "CMakeFiles/piggyweb_volume.dir/pair_counter.cc.o.d"
  "CMakeFiles/piggyweb_volume.dir/popularity.cc.o"
  "CMakeFiles/piggyweb_volume.dir/popularity.cc.o.d"
  "CMakeFiles/piggyweb_volume.dir/probability.cc.o"
  "CMakeFiles/piggyweb_volume.dir/probability.cc.o.d"
  "CMakeFiles/piggyweb_volume.dir/serialize.cc.o"
  "CMakeFiles/piggyweb_volume.dir/serialize.cc.o.d"
  "libpiggyweb_volume.a"
  "libpiggyweb_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpiggyweb_volume.a"
)

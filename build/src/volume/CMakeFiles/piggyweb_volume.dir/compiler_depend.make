# Empty compiler generated dependencies file for piggyweb_volume.
# This may be replaced when dependencies are built.

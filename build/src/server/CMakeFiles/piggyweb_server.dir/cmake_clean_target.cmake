file(REMOVE_RECURSE
  "libpiggyweb_server.a"
)

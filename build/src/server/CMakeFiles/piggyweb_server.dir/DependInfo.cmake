
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/meta.cc" "src/server/CMakeFiles/piggyweb_server.dir/meta.cc.o" "gcc" "src/server/CMakeFiles/piggyweb_server.dir/meta.cc.o.d"
  "/root/repo/src/server/origin.cc" "src/server/CMakeFiles/piggyweb_server.dir/origin.cc.o" "gcc" "src/server/CMakeFiles/piggyweb_server.dir/origin.cc.o.d"
  "/root/repo/src/server/volume_center.cc" "src/server/CMakeFiles/piggyweb_server.dir/volume_center.cc.o" "gcc" "src/server/CMakeFiles/piggyweb_server.dir/volume_center.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/piggyweb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/piggyweb_http.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/piggyweb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/volume/CMakeFiles/piggyweb_volume.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/piggyweb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_server.dir/meta.cc.o"
  "CMakeFiles/piggyweb_server.dir/meta.cc.o.d"
  "CMakeFiles/piggyweb_server.dir/origin.cc.o"
  "CMakeFiles/piggyweb_server.dir/origin.cc.o.d"
  "CMakeFiles/piggyweb_server.dir/volume_center.cc.o"
  "CMakeFiles/piggyweb_server.dir/volume_center.cc.o.d"
  "libpiggyweb_server.a"
  "libpiggyweb_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for piggyweb_server.
# This may be replaced when dependencies are built.

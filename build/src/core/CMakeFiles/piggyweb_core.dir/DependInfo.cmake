
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feedback.cc" "src/core/CMakeFiles/piggyweb_core.dir/feedback.cc.o" "gcc" "src/core/CMakeFiles/piggyweb_core.dir/feedback.cc.o.d"
  "/root/repo/src/core/filter.cc" "src/core/CMakeFiles/piggyweb_core.dir/filter.cc.o" "gcc" "src/core/CMakeFiles/piggyweb_core.dir/filter.cc.o.d"
  "/root/repo/src/core/rpv.cc" "src/core/CMakeFiles/piggyweb_core.dir/rpv.cc.o" "gcc" "src/core/CMakeFiles/piggyweb_core.dir/rpv.cc.o.d"
  "/root/repo/src/core/wire_size.cc" "src/core/CMakeFiles/piggyweb_core.dir/wire_size.cc.o" "gcc" "src/core/CMakeFiles/piggyweb_core.dir/wire_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/piggyweb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/piggyweb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpiggyweb_core.a"
)

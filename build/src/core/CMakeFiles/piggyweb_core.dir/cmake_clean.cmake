file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_core.dir/feedback.cc.o"
  "CMakeFiles/piggyweb_core.dir/feedback.cc.o.d"
  "CMakeFiles/piggyweb_core.dir/filter.cc.o"
  "CMakeFiles/piggyweb_core.dir/filter.cc.o.d"
  "CMakeFiles/piggyweb_core.dir/rpv.cc.o"
  "CMakeFiles/piggyweb_core.dir/rpv.cc.o.d"
  "CMakeFiles/piggyweb_core.dir/wire_size.cc.o"
  "CMakeFiles/piggyweb_core.dir/wire_size.cc.o.d"
  "libpiggyweb_core.a"
  "libpiggyweb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

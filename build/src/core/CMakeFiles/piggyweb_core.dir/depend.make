# Empty dependencies file for piggyweb_core.
# This may be replaced when dependencies are built.

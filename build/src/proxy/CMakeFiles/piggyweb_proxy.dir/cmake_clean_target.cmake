file(REMOVE_RECURSE
  "libpiggyweb_proxy.a"
)

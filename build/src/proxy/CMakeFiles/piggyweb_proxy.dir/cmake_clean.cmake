file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_proxy.dir/adaptive_ttl.cc.o"
  "CMakeFiles/piggyweb_proxy.dir/adaptive_ttl.cc.o.d"
  "CMakeFiles/piggyweb_proxy.dir/cache.cc.o"
  "CMakeFiles/piggyweb_proxy.dir/cache.cc.o.d"
  "CMakeFiles/piggyweb_proxy.dir/coherency.cc.o"
  "CMakeFiles/piggyweb_proxy.dir/coherency.cc.o.d"
  "CMakeFiles/piggyweb_proxy.dir/filter_policy.cc.o"
  "CMakeFiles/piggyweb_proxy.dir/filter_policy.cc.o.d"
  "CMakeFiles/piggyweb_proxy.dir/informed_fetch.cc.o"
  "CMakeFiles/piggyweb_proxy.dir/informed_fetch.cc.o.d"
  "CMakeFiles/piggyweb_proxy.dir/pcv.cc.o"
  "CMakeFiles/piggyweb_proxy.dir/pcv.cc.o.d"
  "CMakeFiles/piggyweb_proxy.dir/prefetch.cc.o"
  "CMakeFiles/piggyweb_proxy.dir/prefetch.cc.o.d"
  "libpiggyweb_proxy.a"
  "libpiggyweb_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

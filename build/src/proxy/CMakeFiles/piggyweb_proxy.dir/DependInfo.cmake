
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxy/adaptive_ttl.cc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/adaptive_ttl.cc.o" "gcc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/adaptive_ttl.cc.o.d"
  "/root/repo/src/proxy/cache.cc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/cache.cc.o" "gcc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/cache.cc.o.d"
  "/root/repo/src/proxy/coherency.cc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/coherency.cc.o" "gcc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/coherency.cc.o.d"
  "/root/repo/src/proxy/filter_policy.cc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/filter_policy.cc.o" "gcc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/filter_policy.cc.o.d"
  "/root/repo/src/proxy/informed_fetch.cc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/informed_fetch.cc.o" "gcc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/informed_fetch.cc.o.d"
  "/root/repo/src/proxy/pcv.cc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/pcv.cc.o" "gcc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/pcv.cc.o.d"
  "/root/repo/src/proxy/prefetch.cc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/prefetch.cc.o" "gcc" "src/proxy/CMakeFiles/piggyweb_proxy.dir/prefetch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/piggyweb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/piggyweb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/piggyweb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for piggyweb_proxy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpiggyweb_util.a"
)

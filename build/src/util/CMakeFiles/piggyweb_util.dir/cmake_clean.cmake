file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_util.dir/date.cc.o"
  "CMakeFiles/piggyweb_util.dir/date.cc.o.d"
  "CMakeFiles/piggyweb_util.dir/intern.cc.o"
  "CMakeFiles/piggyweb_util.dir/intern.cc.o.d"
  "CMakeFiles/piggyweb_util.dir/rng.cc.o"
  "CMakeFiles/piggyweb_util.dir/rng.cc.o.d"
  "CMakeFiles/piggyweb_util.dir/stats.cc.o"
  "CMakeFiles/piggyweb_util.dir/stats.cc.o.d"
  "CMakeFiles/piggyweb_util.dir/strings.cc.o"
  "CMakeFiles/piggyweb_util.dir/strings.cc.o.d"
  "libpiggyweb_util.a"
  "libpiggyweb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

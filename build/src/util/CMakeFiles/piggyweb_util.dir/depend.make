# Empty dependencies file for piggyweb_util.
# This may be replaced when dependencies are built.

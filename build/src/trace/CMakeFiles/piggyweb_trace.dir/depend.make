# Empty dependencies file for piggyweb_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_trace.dir/clf.cc.o"
  "CMakeFiles/piggyweb_trace.dir/clf.cc.o.d"
  "CMakeFiles/piggyweb_trace.dir/log_stats.cc.o"
  "CMakeFiles/piggyweb_trace.dir/log_stats.cc.o.d"
  "CMakeFiles/piggyweb_trace.dir/profiles.cc.o"
  "CMakeFiles/piggyweb_trace.dir/profiles.cc.o.d"
  "CMakeFiles/piggyweb_trace.dir/record.cc.o"
  "CMakeFiles/piggyweb_trace.dir/record.cc.o.d"
  "CMakeFiles/piggyweb_trace.dir/synthetic.cc.o"
  "CMakeFiles/piggyweb_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/piggyweb_trace.dir/transform.cc.o"
  "CMakeFiles/piggyweb_trace.dir/transform.cc.o.d"
  "libpiggyweb_trace.a"
  "libpiggyweb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpiggyweb_trace.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_net.dir/cost_model.cc.o"
  "CMakeFiles/piggyweb_net.dir/cost_model.cc.o.d"
  "libpiggyweb_net.a"
  "libpiggyweb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpiggyweb_net.a"
)

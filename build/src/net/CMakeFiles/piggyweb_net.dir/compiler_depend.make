# Empty compiler generated dependencies file for piggyweb_net.
# This may be replaced when dependencies are built.

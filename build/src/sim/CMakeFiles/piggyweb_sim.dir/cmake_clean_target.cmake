file(REMOVE_RECURSE
  "libpiggyweb_sim.a"
)

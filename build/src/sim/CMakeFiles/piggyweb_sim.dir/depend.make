# Empty dependencies file for piggyweb_sim.
# This may be replaced when dependencies are built.

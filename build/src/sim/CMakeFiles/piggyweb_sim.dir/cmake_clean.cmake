file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_sim.dir/end_to_end.cc.o"
  "CMakeFiles/piggyweb_sim.dir/end_to_end.cc.o.d"
  "CMakeFiles/piggyweb_sim.dir/ground_truth.cc.o"
  "CMakeFiles/piggyweb_sim.dir/ground_truth.cc.o.d"
  "CMakeFiles/piggyweb_sim.dir/hierarchy.cc.o"
  "CMakeFiles/piggyweb_sim.dir/hierarchy.cc.o.d"
  "CMakeFiles/piggyweb_sim.dir/locality.cc.o"
  "CMakeFiles/piggyweb_sim.dir/locality.cc.o.d"
  "CMakeFiles/piggyweb_sim.dir/prediction_eval.cc.o"
  "CMakeFiles/piggyweb_sim.dir/prediction_eval.cc.o.d"
  "CMakeFiles/piggyweb_sim.dir/report.cc.o"
  "CMakeFiles/piggyweb_sim.dir/report.cc.o.d"
  "libpiggyweb_sim.a"
  "libpiggyweb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/end_to_end.cc" "src/sim/CMakeFiles/piggyweb_sim.dir/end_to_end.cc.o" "gcc" "src/sim/CMakeFiles/piggyweb_sim.dir/end_to_end.cc.o.d"
  "/root/repo/src/sim/ground_truth.cc" "src/sim/CMakeFiles/piggyweb_sim.dir/ground_truth.cc.o" "gcc" "src/sim/CMakeFiles/piggyweb_sim.dir/ground_truth.cc.o.d"
  "/root/repo/src/sim/hierarchy.cc" "src/sim/CMakeFiles/piggyweb_sim.dir/hierarchy.cc.o" "gcc" "src/sim/CMakeFiles/piggyweb_sim.dir/hierarchy.cc.o.d"
  "/root/repo/src/sim/locality.cc" "src/sim/CMakeFiles/piggyweb_sim.dir/locality.cc.o" "gcc" "src/sim/CMakeFiles/piggyweb_sim.dir/locality.cc.o.d"
  "/root/repo/src/sim/prediction_eval.cc" "src/sim/CMakeFiles/piggyweb_sim.dir/prediction_eval.cc.o" "gcc" "src/sim/CMakeFiles/piggyweb_sim.dir/prediction_eval.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/sim/CMakeFiles/piggyweb_sim.dir/report.cc.o" "gcc" "src/sim/CMakeFiles/piggyweb_sim.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/piggyweb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/piggyweb_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/piggyweb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/piggyweb_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/piggyweb_server.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/piggyweb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/volume/CMakeFiles/piggyweb_volume.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/piggyweb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

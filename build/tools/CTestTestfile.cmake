# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/root/repo/build/tools/piggyweb_generate" "--profile=aiusa" "--scale=0.01" "--out=/root/repo/build/tools/smoke.log" "--volumes-out=/root/repo/build/tools/smoke-volumes.txt")
set_tests_properties(cli_generate PROPERTIES  FIXTURES_SETUP "cli_log" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/piggyweb_analyze" "--log=/root/repo/build/tools/smoke.log")
set_tests_properties(cli_analyze PROPERTIES  FIXTURES_REQUIRED "cli_log" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_evaluate_directory "/root/repo/build/tools/piggyweb_evaluate" "--log=/root/repo/build/tools/smoke.log" "--scheme=directory" "--level=1" "--minfreq=10" "--rpv-timeout=30")
set_tests_properties(cli_evaluate_directory PROPERTIES  FIXTURES_REQUIRED "cli_log" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_evaluate_pretrained "/root/repo/build/tools/piggyweb_evaluate" "--log=/root/repo/build/tools/smoke.log" "--scheme=probability" "--volumes=/root/repo/build/tools/smoke-volumes.txt")
set_tests_properties(cli_evaluate_pretrained PROPERTIES  FIXTURES_REQUIRED "cli_log" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")

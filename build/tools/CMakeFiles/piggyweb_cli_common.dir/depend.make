# Empty dependencies file for piggyweb_cli_common.
# This may be replaced when dependencies are built.

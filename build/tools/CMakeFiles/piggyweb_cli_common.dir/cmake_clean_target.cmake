file(REMOVE_RECURSE
  "libpiggyweb_cli_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_cli_common.dir/cli_common.cc.o"
  "CMakeFiles/piggyweb_cli_common.dir/cli_common.cc.o.d"
  "libpiggyweb_cli_common.a"
  "libpiggyweb_cli_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_cli_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for piggyweb_generate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_generate.dir/piggyweb_generate.cc.o"
  "CMakeFiles/piggyweb_generate.dir/piggyweb_generate.cc.o.d"
  "piggyweb_generate"
  "piggyweb_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for piggyweb_analyze.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/piggyweb_analyze.cc" "tools/CMakeFiles/piggyweb_analyze.dir/piggyweb_analyze.cc.o" "gcc" "tools/CMakeFiles/piggyweb_analyze.dir/piggyweb_analyze.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tools/CMakeFiles/piggyweb_cli_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/piggyweb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/piggyweb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/piggyweb_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/piggyweb_server.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/piggyweb_http.dir/DependInfo.cmake"
  "/root/repo/build/src/volume/CMakeFiles/piggyweb_volume.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/piggyweb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/piggyweb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/piggyweb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_analyze.dir/piggyweb_analyze.cc.o"
  "CMakeFiles/piggyweb_analyze.dir/piggyweb_analyze.cc.o.d"
  "piggyweb_analyze"
  "piggyweb_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

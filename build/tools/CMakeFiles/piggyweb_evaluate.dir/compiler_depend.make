# Empty compiler generated dependencies file for piggyweb_evaluate.
# This may be replaced when dependencies are built.

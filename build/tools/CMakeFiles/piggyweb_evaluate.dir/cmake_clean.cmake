file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_evaluate.dir/piggyweb_evaluate.cc.o"
  "CMakeFiles/piggyweb_evaluate.dir/piggyweb_evaluate.cc.o.d"
  "piggyweb_evaluate"
  "piggyweb_evaluate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_evaluate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

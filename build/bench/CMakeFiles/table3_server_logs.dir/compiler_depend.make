# Empty compiler generated dependencies file for table3_server_logs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table3_server_logs.dir/table3_server_logs.cc.o"
  "CMakeFiles/table3_server_logs.dir/table3_server_logs.cc.o.d"
  "table3_server_logs"
  "table3_server_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_server_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig5_probability_threshold.dir/fig5_probability_threshold.cc.o"
  "CMakeFiles/fig5_probability_threshold.dir/fig5_probability_threshold.cc.o.d"
  "fig5_probability_threshold"
  "fig5_probability_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_probability_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

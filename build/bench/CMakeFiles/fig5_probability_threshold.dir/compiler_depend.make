# Empty compiler generated dependencies file for fig5_probability_threshold.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coherency_baselines.dir/coherency_baselines.cc.o"
  "CMakeFiles/coherency_baselines.dir/coherency_baselines.cc.o.d"
  "coherency_baselines"
  "coherency_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherency_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

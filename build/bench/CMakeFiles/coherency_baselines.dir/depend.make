# Empty dependencies file for coherency_baselines.
# This may be replaced when dependencies are built.

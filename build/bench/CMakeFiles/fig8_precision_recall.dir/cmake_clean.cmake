file(REMOVE_RECURSE
  "CMakeFiles/fig8_precision_recall.dir/fig8_precision_recall.cc.o"
  "CMakeFiles/fig8_precision_recall.dir/fig8_precision_recall.cc.o.d"
  "fig8_precision_recall"
  "fig8_precision_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_precision_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig8_precision_recall.
# This may be replaced when dependencies are built.

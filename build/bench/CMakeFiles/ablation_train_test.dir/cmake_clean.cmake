file(REMOVE_RECURSE
  "CMakeFiles/ablation_train_test.dir/ablation_train_test.cc.o"
  "CMakeFiles/ablation_train_test.dir/ablation_train_test.cc.o.d"
  "ablation_train_test"
  "ablation_train_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_train_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_train_test.
# This may be replaced when dependencies are built.

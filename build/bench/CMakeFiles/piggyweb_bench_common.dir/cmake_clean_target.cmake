file(REMOVE_RECURSE
  "libpiggyweb_bench_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/piggyweb_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/piggyweb_bench_common.dir/bench_common.cc.o.d"
  "libpiggyweb_bench_common.a"
  "libpiggyweb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piggyweb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

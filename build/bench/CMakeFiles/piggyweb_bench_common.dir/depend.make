# Empty dependencies file for piggyweb_bench_common.
# This may be replaced when dependencies are built.

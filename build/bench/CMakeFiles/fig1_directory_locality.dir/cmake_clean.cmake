file(REMOVE_RECURSE
  "CMakeFiles/fig1_directory_locality.dir/fig1_directory_locality.cc.o"
  "CMakeFiles/fig1_directory_locality.dir/fig1_directory_locality.cc.o.d"
  "fig1_directory_locality"
  "fig1_directory_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_directory_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

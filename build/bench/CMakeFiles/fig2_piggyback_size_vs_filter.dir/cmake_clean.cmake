file(REMOVE_RECURSE
  "CMakeFiles/fig2_piggyback_size_vs_filter.dir/fig2_piggyback_size_vs_filter.cc.o"
  "CMakeFiles/fig2_piggyback_size_vs_filter.dir/fig2_piggyback_size_vs_filter.cc.o.d"
  "fig2_piggyback_size_vs_filter"
  "fig2_piggyback_size_vs_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_piggyback_size_vs_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_piggyback_size_vs_filter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_predicted_vs_size.dir/fig6_predicted_vs_size.cc.o"
  "CMakeFiles/fig6_predicted_vs_size.dir/fig6_predicted_vs_size.cc.o.d"
  "fig6_predicted_vs_size"
  "fig6_predicted_vs_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_predicted_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig6_predicted_vs_size.
# This may be replaced when dependencies are built.

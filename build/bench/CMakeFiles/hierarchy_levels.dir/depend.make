# Empty dependencies file for hierarchy_levels.
# This may be replaced when dependencies are built.

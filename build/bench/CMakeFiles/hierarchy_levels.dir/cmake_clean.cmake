file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_levels.dir/hierarchy_levels.cc.o"
  "CMakeFiles/hierarchy_levels.dir/hierarchy_levels.cc.o.d"
  "hierarchy_levels"
  "hierarchy_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig4_rpv_min_interval.
# This may be replaced when dependencies are built.

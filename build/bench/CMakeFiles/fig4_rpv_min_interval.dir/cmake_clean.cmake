file(REMOVE_RECURSE
  "CMakeFiles/fig4_rpv_min_interval.dir/fig4_rpv_min_interval.cc.o"
  "CMakeFiles/fig4_rpv_min_interval.dir/fig4_rpv_min_interval.cc.o.d"
  "fig4_rpv_min_interval"
  "fig4_rpv_min_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rpv_min_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

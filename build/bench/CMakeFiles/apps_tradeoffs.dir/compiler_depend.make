# Empty compiler generated dependencies file for apps_tradeoffs.
# This may be replaced when dependencies are built.

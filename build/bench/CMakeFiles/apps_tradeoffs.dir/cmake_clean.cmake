file(REMOVE_RECURSE
  "CMakeFiles/apps_tradeoffs.dir/apps_tradeoffs.cc.o"
  "CMakeFiles/apps_tradeoffs.dir/apps_tradeoffs.cc.o.d"
  "apps_tradeoffs"
  "apps_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7_true_prediction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_true_prediction.dir/fig7_true_prediction.cc.o"
  "CMakeFiles/fig7_true_prediction.dir/fig7_true_prediction.cc.o.d"
  "fig7_true_prediction"
  "fig7_true_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_true_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

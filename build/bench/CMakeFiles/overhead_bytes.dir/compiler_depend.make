# Empty compiler generated dependencies file for overhead_bytes.
# This may be replaced when dependencies are built.

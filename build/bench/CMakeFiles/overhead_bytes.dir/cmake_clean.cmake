file(REMOVE_RECURSE
  "CMakeFiles/overhead_bytes.dir/overhead_bytes.cc.o"
  "CMakeFiles/overhead_bytes.dir/overhead_bytes.cc.o.d"
  "overhead_bytes"
  "overhead_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

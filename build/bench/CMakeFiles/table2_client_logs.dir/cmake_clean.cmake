file(REMOVE_RECURSE
  "CMakeFiles/table2_client_logs.dir/table2_client_logs.cc.o"
  "CMakeFiles/table2_client_logs.dir/table2_client_logs.cc.o.d"
  "table2_client_logs"
  "table2_client_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_client_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

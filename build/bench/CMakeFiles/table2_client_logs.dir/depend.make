# Empty dependencies file for table2_client_logs.
# This may be replaced when dependencies are built.

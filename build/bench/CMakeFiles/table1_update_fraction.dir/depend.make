# Empty dependencies file for table1_update_fraction.
# This may be replaced when dependencies are built.

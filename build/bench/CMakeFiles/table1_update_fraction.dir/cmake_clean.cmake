file(REMOVE_RECURSE
  "CMakeFiles/table1_update_fraction.dir/table1_update_fraction.cc.o"
  "CMakeFiles/table1_update_fraction.dir/table1_update_fraction.cc.o.d"
  "table1_update_fraction"
  "table1_update_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_update_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/feedback_demo.dir/feedback_demo.cpp.o"
  "CMakeFiles/feedback_demo.dir/feedback_demo.cpp.o.d"
  "feedback_demo"
  "feedback_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

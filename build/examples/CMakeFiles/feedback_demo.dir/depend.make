# Empty dependencies file for feedback_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coherency_study.dir/coherency_study.cpp.o"
  "CMakeFiles/coherency_study.dir/coherency_study.cpp.o.d"
  "coherency_study"
  "coherency_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherency_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

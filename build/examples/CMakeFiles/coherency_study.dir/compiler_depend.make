# Empty compiler generated dependencies file for coherency_study.
# This may be replaced when dependencies are built.

# Empty dependencies file for volume_center_demo.
# This may be replaced when dependencies are built.

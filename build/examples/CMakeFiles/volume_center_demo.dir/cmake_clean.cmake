file(REMOVE_RECURSE
  "CMakeFiles/volume_center_demo.dir/volume_center_demo.cpp.o"
  "CMakeFiles/volume_center_demo.dir/volume_center_demo.cpp.o.d"
  "volume_center_demo"
  "volume_center_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_center_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/http_exchange.dir/http_exchange.cpp.o"
  "CMakeFiles/http_exchange.dir/http_exchange.cpp.o.d"
  "http_exchange"
  "http_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

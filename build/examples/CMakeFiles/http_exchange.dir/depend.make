# Empty dependencies file for http_exchange.
# This may be replaced when dependencies are built.

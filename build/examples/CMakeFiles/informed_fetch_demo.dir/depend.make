# Empty dependencies file for informed_fetch_demo.
# This may be replaced when dependencies are built.

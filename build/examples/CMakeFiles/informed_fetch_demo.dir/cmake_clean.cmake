file(REMOVE_RECURSE
  "CMakeFiles/informed_fetch_demo.dir/informed_fetch_demo.cpp.o"
  "CMakeFiles/informed_fetch_demo.dir/informed_fetch_demo.cpp.o.d"
  "informed_fetch_demo"
  "informed_fetch_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/informed_fetch_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Table 1: update fraction for probability-based volumes, at p_t = 0.25,
// effective probability 0.2, T = 300 s, C = 2 h. Columns follow the
// paper: previous occurrence within 2 h ("cache hits"), within 5 min
// (already fresh), updated-by-piggyback (predicted in the last 5 min with
// the previous occurrence between 5 min and 2 h ago), and the average
// piggyback size.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  bench::Observability observability("table1_update_fraction", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  const std::size_t threads = bench::threads_arg(argc, argv);
  bench::print_banner(
      "Table 1: update fraction for probability-based volumes",
      "Sun has much the largest cache-hit share and update fraction "
      "(paper: 23.7% / 9.6% / 11.0%, avg size 5.0); Apache and AIUSA are "
      "smaller (paper avg sizes 1.6 and 2.9); parenthesised values are "
      "shares of the <2h 'cache hits'");

  sim::Table table({"Server Log", "prev occ < 2hr", "prev occ < 5min",
                    "updated by piggyback, 5min<prev<2hr",
                    "avg piggyback"});
  const trace::LogProfile profiles[] = {
      trace::aiusa_profile(bench::kAiusaScale * scale),
      trace::apache_profile(bench::kApacheScale * scale),
      trace::sun_profile(bench::kSunScale * scale),
  };
  for (const auto& profile : profiles) {
    const auto workload = trace::generate(profile);
    volume::ProbabilityVolumeConfig pvc;
    pvc.probability_threshold = 0.25;
    pvc.effectiveness_threshold = 0.2;
    sim::EvalConfig config;
    config.prediction_window = 300;
    config.cache_horizon = 2 * util::kHour;
    const auto run =
        bench::eval_probability(workload, pvc, config, 10, threads);
    const auto& r = run.result;
    const auto requests = static_cast<double>(r.requests);
    const auto hits =
        static_cast<double>(r.prev_occurrence_within_horizon);
    const auto fresh = static_cast<double>(r.prev_occurrence_within_window);
    const auto updated = static_cast<double>(r.updated_by_piggyback);
    table.row(
        {profile.name, sim::Table::pct(hits / requests),
         sim::Table::pct(fresh / requests) + " (" +
             sim::Table::pct(hits > 0 ? fresh / hits : 0.0, 0) + ")",
         sim::Table::pct(updated / requests) + " (" +
             sim::Table::pct(hits > 0 ? updated / hits : 0.0, 0) + ")",
         sim::Table::num(r.avg_piggyback_size(), 1)});
  }
  table.print(std::cout);
  std::printf(
      "\npaper: AIUSA 6.5%% / 3.6%% (55%%) / 2.0%% (31%%) / 2.9; Apache "
      "11.5%% / 5.4%% (47%%) / 2.2%% (19%%) / 1.6; Sun 23.7%% / 9.6%% "
      "(41%%) / 11.0%% (46%%) / 5.0.\nupdate fraction = col2 + col3 (Sun: "
      "20.6%% in the paper).\n");
  return 0;
}

// Figure 7: true prediction fraction (precision) vs average piggyback
// size — (a) AIUSA, (b) Sun. The paper's key observation: the *base*
// curve can be non-monotonic (pairs with high implication probability but
// low effective probability bloat messages without adding true
// predictions), while effectiveness thinning restores the expected
// monotone smaller-is-more-precise behaviour.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"

using namespace piggyweb;

namespace {

void run_log(const trace::LogProfile& profile, std::size_t threads) {
  const auto workload = trace::generate(profile);
  std::printf("(%s: %zu requests)\n", profile.name.c_str(),
              workload.trace.size());
  const auto counts = bench::pair_counts(workload, 10, 300, threads);

  sim::Table table({"p_t", "base avg size", "base precision",
                    "thinned avg size", "thinned precision"});
  for (const double pt :
       {0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}) {
    volume::ProbabilityVolumeConfig base;
    base.probability_threshold = pt;
    const auto base_run = bench::eval_probability_with_counts(
        workload, counts, base, {}, threads);

    volume::ProbabilityVolumeConfig thinned = base;
    thinned.effectiveness_threshold = 0.2;
    const auto thin_run = bench::eval_probability_with_counts(
        workload, counts, thinned, {}, threads);

    table.row(
        {sim::Table::num(pt, 2),
         sim::Table::num(base_run.result.avg_piggyback_size(), 1),
         sim::Table::pct(base_run.result.true_prediction_fraction()),
         sim::Table::num(thin_run.result.avg_piggyback_size(), 1),
         sim::Table::pct(thin_run.result.true_prediction_fraction())});
  }
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability observability("fig7_true_prediction", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  const std::size_t threads = bench::threads_arg(argc, argv);
  bench::print_banner(
      "Figure 7: true prediction fraction vs avg piggyback size",
      "precision rises as p_t tightens (smaller piggybacks); thinned "
      "volumes dominate the base curve; any base-curve dip at mid sizes "
      "(non-monotonicity, clearest for Sun) disappears after thinning");

  run_log(trace::aiusa_profile(bench::kAiusaScale * scale), threads);
  run_log(trace::sun_profile(bench::kSunScale * scale), threads);
  return 0;
}

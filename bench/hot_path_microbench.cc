// Hot-path data-structure microbenchmarks: util::FlatMap vs the
// std::unordered_map it replaced, the arena-backed interner, the CLF
// loader fast path, the wide (SSE2/SWAR) byte scanner and field splitter
// vs their scalar references, and end-to-end replicas of the
// fig3/fig5/table1 pipelines. Key streams come from a synthetic workload,
// so the mixes see the same Zipf-skewed, collision-heavy distributions
// the real counters see — not uniform random keys.
//
//   hot_path_microbench [--scale=0.3] [--quick] [--json=BENCH_hot_paths.json]
//                       [--e2e-before=fig3=1.69,fig5=0.88,table1=0.10]
//                       [--e2e-after=fig3=1.23,...]
//
// --quick shrinks the pass counts for CI smoke runs. The --e2e-before/
// --e2e-after flags record externally measured wall-clock times of the
// full figure binaries (same args, same machine) from before and after
// the flat-table swap; they are embedded verbatim in the JSON report so
// the committed artifact carries the measured binary-level deltas
// alongside the in-process numbers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "legacy_baselines.h"
#include "sim/report.h"
#include "trace/clf.h"
#include "util/flat_map.h"
#include "util/scan.h"
#include "util/strings.h"
#include "volume/pair_counter.h"

using namespace piggyweb;

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

bool flag_present(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

struct MixResult {
  std::size_t ops = 0;
  double flat_seconds = 0;
  double umap_seconds = 0;
  std::uint64_t flat_checksum = 0;
  std::uint64_t umap_checksum = 0;

  double speedup() const {
    return flat_seconds > 0 ? umap_seconds / flat_seconds : 0;
  }
};

// Pair-counter mix: find-or-create + increment over (r, s) successor
// keys, exactly the inner loop of PairCounterBuilder::build. No erases —
// counter tables only grow.
template <typename Map>
std::pair<double, std::uint64_t> run_pair_mix(
    const std::vector<std::uint64_t>& keys, int passes) {
  const auto start = now_seconds();
  Map map;
  std::uint64_t checksum = 0;
  for (int pass = 0; pass < passes; ++pass) {
    for (const auto key : keys) {
      auto [it, created] = map.try_emplace(key, volume::PairCount{0, 0});
      (void)created;
      ++it->second.count;
    }
  }
  for (const auto key : keys) checksum += map.at(key).count;
  return {now_seconds() - start, checksum};
}

// Eval-state mix: operator[] over (source, resource) keys plus point
// finds, the MetricAccumulator access pattern (insert-heavy early, then
// read-mostly).
template <typename Map>
std::pair<double, std::uint64_t> run_eval_mix(
    const std::vector<std::uint64_t>& keys, int passes) {
  const auto start = now_seconds();
  Map map;
  std::uint64_t checksum = 0;
  for (int pass = 0; pass < passes; ++pass) {
    for (const auto key : keys) {
      map[key] += 1;
      const auto it = map.find(key ^ 1);
      if (it != map.end()) checksum += it->second;
    }
  }
  return {now_seconds() - start, checksum + map.size()};
}

// Cache-churn mix: sliding-window insert/find/erase over (server, path)
// keys — the ProxyCache entry-table pattern, where backward-shift
// deletion (FlatMap) competes with node deallocation (unordered_map).
template <typename Map>
std::pair<double, std::uint64_t> run_churn_mix(
    const std::vector<std::uint64_t>& keys, int passes,
    std::size_t window) {
  const auto start = now_seconds();
  Map map;
  std::uint64_t checksum = 0;
  std::deque<std::uint64_t> order;
  for (int pass = 0; pass < passes; ++pass) {
    for (const auto key : keys) {
      if (map.try_emplace(key, key).second) {
        order.push_back(key);
        if (order.size() > window) {
          checksum += map.erase(order.front());
          order.pop_front();
        }
      } else {
        checksum += map.at(key) & 1;
      }
    }
  }
  return {now_seconds() - start, checksum + map.size()};
}

template <typename FlatFn, typename UmapFn>
MixResult run_mix(std::size_t ops, FlatFn flat, UmapFn umap) {
  MixResult r;
  r.ops = ops;
  // unordered_map first, flat second: any cold-cache penalty lands on the
  // reference side's first pass, which is the conservative direction for
  // the reported speedup... so run a discarded warmup of each first.
  (void)umap();
  (void)flat();
  std::tie(r.umap_seconds, r.umap_checksum) = umap();
  std::tie(r.flat_seconds, r.flat_checksum) = flat();
  return r;
}

obs::Json mix_json(const MixResult& r) {
  auto j = obs::Json::object();
  j.set("ops", r.ops);
  j.set("flat_seconds", r.flat_seconds);
  j.set("unordered_map_seconds", r.umap_seconds);
  j.set("speedup", r.speedup());
  j.set("checksums_match", r.flat_checksum == r.umap_checksum);
  return j;
}

// Parse "fig3=1.69,fig5=0.88" into (name, seconds) pairs.
std::vector<std::pair<std::string, double>> parse_timings(
    const std::string& arg) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto piece : util::split_trimmed(arg, ',')) {
    const auto eq = piece.find('=');
    if (eq == std::string_view::npos) continue;
    double secs = 0;
    if (!util::parse_double(piece.substr(eq + 1), secs)) continue;
    out.emplace_back(std::string(piece.substr(0, eq)), secs);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability observability("hot_path_microbench", argc, argv);
  const bool quick = flag_present(argc, argv, "--quick");
  const double scale = bench::scale_arg(argc, argv, quick ? 0.1 : 1.0);
  const auto json_path = bench::json_arg(argc, argv);
  const auto before_arg =
      parse_timings(bench::string_arg(argc, argv, "--e2e-before="));
  const auto after_arg =
      parse_timings(bench::string_arg(argc, argv, "--e2e-after="));
  bench::print_banner(
      "Hot-path tables: FlatMap / arena interning vs std containers",
      "every mix reports speedup > 1 with matching checksums; the "
      "pair-counter mix is the gated one (>= 1.3x)");

  const auto workload =
      trace::generate(trace::aiusa_profile(bench::kAiusaScale * scale));
  const auto& requests = workload.trace.requests();
  std::printf("(aiusa: %zu requests, %zu distinct paths, quick=%s)\n\n",
              requests.size(), workload.trace.paths().size(),
              quick ? "yes" : "no");

  // Key streams straight from the trace: successor pairs for the counter
  // mix, (source, path) for eval state, (server, path) for cache churn.
  std::vector<std::uint64_t> pair_keys;
  pair_keys.reserve(requests.size());
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    pair_keys.push_back(
        volume::PairCounts::key(requests[i].path, requests[i + 1].path));
  }
  // (source, path) keys serve both the eval-state mix and the churn mix:
  // a single-server log has too few (server, path) combinations to ever
  // fill a cache window, while (source, path) has tens of thousands.
  std::vector<std::uint64_t> eval_keys;
  eval_keys.reserve(requests.size());
  for (const auto& req : requests) {
    eval_keys.push_back((static_cast<std::uint64_t>(req.source) << 32) |
                        req.path);
  }
  const auto& cache_keys = eval_keys;

  const int passes = quick ? 2 : 10;
  using FlatU64 = util::FlatMap<std::uint64_t, std::uint64_t>;
  using UmapU64 = std::unordered_map<std::uint64_t, std::uint64_t>;
  using FlatPair = util::FlatMap<std::uint64_t, volume::PairCount>;
  using UmapPair = std::unordered_map<std::uint64_t, volume::PairCount>;

  const auto pair_mix = run_mix(
      pair_keys.size() * static_cast<std::size_t>(passes),
      [&] { return run_pair_mix<FlatPair>(pair_keys, passes); },
      [&] { return run_pair_mix<UmapPair>(pair_keys, passes); });
  const auto eval_mix = run_mix(
      eval_keys.size() * static_cast<std::size_t>(passes),
      [&] { return run_eval_mix<FlatU64>(eval_keys, passes); },
      [&] { return run_eval_mix<UmapU64>(eval_keys, passes); });
  const std::size_t window = 4096;
  const auto churn_mix = run_mix(
      cache_keys.size() * static_cast<std::size_t>(passes),
      [&] { return run_churn_mix<FlatU64>(cache_keys, passes, window); },
      [&] { return run_churn_mix<UmapU64>(cache_keys, passes, window); });

  // Loader: the reusable-buffer fast path vs the per-line-allocation
  // reference, over the same CLF bytes.
  std::string clf_text;
  {
    std::ostringstream out;
    trace::write_clf(out, workload.trace);
    clf_text = out.str();
  }
  trace::ClfLoadOptions load_options;
  double loader_fast = 0, loader_legacy = 0;
  std::size_t loader_lines = 0;
  {
    // Warmup + measure, matching the mix discipline.
    for (int round = 0; round < 2; ++round) {
      trace::Trace t;
      std::istringstream in(clf_text);
      const auto start = now_seconds();
      const auto res = bench_legacy::legacy_load_clf(in, t, load_options);
      if (round == 1) {
        loader_legacy = now_seconds() - start;
        loader_lines = res.parsed;
      }
    }
    for (int round = 0; round < 2; ++round) {
      trace::Trace t;
      std::istringstream in(clf_text);
      const auto start = now_seconds();
      (void)trace::load_clf(in, t, load_options);
      if (round == 1) loader_fast = now_seconds() - start;
    }
  }

  // Scanner: the wide (SSE2/SWAR) delimiter finder vs the byte-at-a-time
  // reference, splitting the workload's CLF bytes at newlines — the
  // load_clf_text bulk-scan pattern, ~one delimiter per 80-odd bytes —
  // then the full field splitter wide vs scalar over the same lines.
  // Reference first, wide second, with a discarded warmup of each — the
  // same discipline as the mixes. The checksums fold every match position
  // / parsed field in, so a scanner that skips or misplaces a delimiter
  // fails the gate, not just the timing.
  std::vector<std::string_view> clf_lines;
  {
    std::string_view rest = clf_text;
    while (!rest.empty()) {
      const auto nl = rest.find('\n');
      clf_lines.push_back(rest.substr(0, nl));
      if (nl == std::string_view::npos) break;
      rest.remove_prefix(nl + 1);
    }
  }
  // Pass count sized to scan ~64 MB total regardless of workload scale:
  // the scanner is cheap per byte, and the rerun-stability gate diffs the
  // speedups below, so even --quick runs need timings comfortably above
  // timer and scheduler noise.
  const int scan_passes = static_cast<int>(std::max<std::size_t>(
      4, (std::size_t{64} << 20) /
             std::max<std::size_t>(std::size_t{1}, clf_text.size())));
  const auto scan_all = [&](auto find) {
    std::uint64_t checksum = 0;
    const std::string_view text = clf_text;
    const auto start = now_seconds();
    for (int pass = 0; pass < scan_passes; ++pass) {
      for (std::size_t from = 0;;) {
        const auto at = find(text, '\n', from);
        if (at == std::string_view::npos) break;
        checksum += at;
        from = at + 1;
      }
    }
    return std::pair<double, std::uint64_t>{now_seconds() - start, checksum};
  };
  const auto parse_all = [&](auto parse) {
    std::uint64_t checksum = 0;
    trace::ClfFields fields;
    const auto start = now_seconds();
    for (int pass = 0; pass < scan_passes; ++pass) {
      for (const auto line : clf_lines) {
        if (parse(line, fields)) {
          checksum += static_cast<std::uint64_t>(fields.status) +
                      fields.size + fields.path.size() + fields.host.size();
        }
      }
    }
    return std::pair<double, std::uint64_t>{now_seconds() - start, checksum};
  };
  const auto wide_find = [](std::string_view text, char needle,
                            std::size_t from) {
    return util::find_byte(text, needle, from);
  };
  const auto scalar_find = [](std::string_view text, char needle,
                              std::size_t from) {
    return util::find_byte_scalar(text, needle, from);
  };
  (void)scan_all(scalar_find);
  (void)scan_all(wide_find);
  const auto [scan_scalar_seconds, scan_scalar_sum] = scan_all(scalar_find);
  const auto [scan_wide_seconds, scan_wide_sum] = scan_all(wide_find);
  (void)parse_all(trace::parse_clf_fields_scalar);
  (void)parse_all(trace::parse_clf_fields);
  const auto [fields_scalar_seconds, fields_scalar_sum] =
      parse_all(trace::parse_clf_fields_scalar);
  const auto [fields_wide_seconds, fields_wide_sum] =
      parse_all(trace::parse_clf_fields);

  // Interner: total bytes held for the workload's path strings, against
  // the pre-arena layout that stored every string twice (id->string
  // vector + string->id map keys).
  std::size_t intern_payload = 0;
  for (std::size_t i = 0; i < workload.trace.paths().size(); ++i) {
    intern_payload +=
        workload.trace.paths().str(static_cast<util::InternId>(i)).size();
  }

  // End-to-end replicas of the figure pipelines, timed in-process.
  sim::EvalConfig config;
  config.filter.max_elements = 20;
  struct E2eRun {
    const char* name;
    double seconds;
  };
  std::vector<E2eRun> e2e;
  {
    const auto start = now_seconds();
    (void)bench::eval_directory(workload, 1, config);
    e2e.push_back({"directory_eval", now_seconds() - start});
  }
  {
    volume::ProbabilityVolumeConfig pvc;
    pvc.probability_threshold = 0.3;
    const auto start = now_seconds();
    (void)bench::eval_probability(workload, pvc, config);
    e2e.push_back({"probability_eval", now_seconds() - start});
  }
  {
    const auto start = now_seconds();
    (void)bench::pair_counts(workload);
    e2e.push_back({"pair_counts", now_seconds() - start});
  }

  const bool checks_ok =
      pair_mix.flat_checksum == pair_mix.umap_checksum &&
      eval_mix.flat_checksum == eval_mix.umap_checksum &&
      churn_mix.flat_checksum == churn_mix.umap_checksum &&
      scan_wide_sum == scan_scalar_sum &&
      fields_wide_sum == fields_scalar_sum;

  sim::Table table({"mix", "ops", "flat s", "umap s", "speedup"});
  const auto row = [&table](const char* name, const MixResult& r) {
    table.row({name, std::to_string(r.ops), sim::Table::num(r.flat_seconds, 3),
               sim::Table::num(r.umap_seconds, 3),
               sim::Table::num(r.speedup(), 2)});
  };
  row("pair_counter", pair_mix);
  row("eval_state", eval_mix);
  row("cache_churn", churn_mix);
  table.print(std::cout);
  std::printf("\nloader: %zu lines, fast %.3fs vs legacy %.3fs (%.2fx)\n",
              loader_lines, loader_fast, loader_legacy,
              loader_fast > 0 ? loader_legacy / loader_fast : 0);
  std::printf("scanner: find_byte over %zu bytes x%d, wide %.3fs vs scalar "
              "%.3fs (%.2fx)\n",
              clf_text.size(), scan_passes, scan_wide_seconds,
              scan_scalar_seconds,
              scan_wide_seconds > 0 ? scan_scalar_seconds / scan_wide_seconds
                                    : 0.0);
  std::printf("scanner: clf_fields over %zu lines x%d, wide %.3fs vs scalar "
              "%.3fs (%.2fx)\n",
              clf_lines.size(), scan_passes, fields_wide_seconds,
              fields_scalar_seconds,
              fields_wide_seconds > 0
                  ? fields_scalar_seconds / fields_wide_seconds
                  : 0.0);
  std::printf("intern: %zu paths, %zu payload bytes held once (was twice)\n",
              workload.trace.paths().size(), intern_payload);
  for (const auto& run : e2e) {
    std::printf("e2e %-18s %.3fs\n", run.name, run.seconds);
  }
  std::printf("checksums match: %s\n", checks_ok ? "yes" : "NO");

  auto report = obs::Json::object();
  report.set("benchmark", "hot_paths");
  report.set("quick", quick);
  report.set("requests", requests.size());
  auto micro = obs::Json::object();
  micro.set("pair_counter_mix", mix_json(pair_mix));
  micro.set("eval_state_mix", mix_json(eval_mix));
  micro.set("cache_churn_mix", mix_json(churn_mix));
  report.set("micro", std::move(micro));
  auto loader = obs::Json::object();
  loader.set("lines", loader_lines);
  loader.set("fast_seconds", loader_fast);
  loader.set("legacy_seconds", loader_legacy);
  loader.set("speedup",
             loader_fast > 0 ? loader_legacy / loader_fast : 0.0);
  report.set("loader", std::move(loader));
  auto scanner = obs::Json::object();
  {
    auto fb = obs::Json::object();
    fb.set("bytes", clf_text.size());
    fb.set("wide_seconds", scan_wide_seconds);
    fb.set("scalar_seconds", scan_scalar_seconds);
    fb.set("speedup", scan_wide_seconds > 0
                          ? scan_scalar_seconds / scan_wide_seconds
                          : 0.0);
    fb.set("checksums_match", scan_wide_sum == scan_scalar_sum);
    scanner.set("find_byte", std::move(fb));
    auto cf = obs::Json::object();
    cf.set("lines", clf_lines.size());
    cf.set("wide_seconds", fields_wide_seconds);
    cf.set("scalar_seconds", fields_scalar_seconds);
    cf.set("speedup", fields_wide_seconds > 0
                          ? fields_scalar_seconds / fields_wide_seconds
                          : 0.0);
    cf.set("checksums_match", fields_wide_sum == fields_scalar_sum);
    scanner.set("clf_fields", std::move(cf));
  }
  report.set("scanner", std::move(scanner));
  auto intern = obs::Json::object();
  intern.set("paths", workload.trace.paths().size());
  intern.set("payload_bytes", intern_payload);
  intern.set("bytes_saved_vs_double_storage", intern_payload);
  report.set("intern", std::move(intern));
  auto replicas = obs::Json::array();
  for (const auto& run : e2e) {
    auto j = obs::Json::object();
    j.set("name", run.name);
    j.set("wall_seconds", run.seconds);
    replicas.push_back(std::move(j));
  }
  report.set("e2e_replicas", std::move(replicas));
  if (!before_arg.empty()) {
    // Externally measured figure-binary wall clocks (same args/machine),
    // recorded before and after the swap.
    auto binaries = obs::Json::array();
    for (const auto& [name, before_secs] : before_arg) {
      auto j = obs::Json::object();
      j.set("name", name);
      j.set("before_seconds", before_secs);
      for (const auto& [after_name, after_secs] : after_arg) {
        if (after_name != name) continue;
        j.set("after_seconds", after_secs);
        j.set("speedup", after_secs > 0 ? before_secs / after_secs : 0.0);
      }
      binaries.push_back(std::move(j));
    }
    report.set("e2e_binaries", std::move(binaries));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << report.dump(2) << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  observability.note("hot_paths", std::move(report));
  return checks_ok ? 0 : 1;
}

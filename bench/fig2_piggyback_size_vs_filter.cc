// Figure 2: average piggyback size vs access filter for directory-based
// volumes — (a) AIUSA, (b) Sun. The access filter omits resources accessed
// fewer than N times in the whole trace; the paper caps plots at an
// average size of 200 and skips the 0-level Sun volume (it would be one
// 29436-element volume).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"

using namespace piggyweb;

namespace {

void run_log(const trace::LogProfile& profile, bool include_level0,
             const std::vector<std::uint32_t>& filters) {
  const auto workload = trace::generate(profile);
  std::printf("(%s: %zu requests, %zu resources)\n", profile.name.c_str(),
              workload.trace.size(), workload.trace.paths().size());

  std::vector<std::string> headers = {"access filter"};
  std::vector<int> levels;
  if (include_level0) levels.push_back(0);
  levels.push_back(1);
  levels.push_back(2);
  for (const auto level : levels) {
    headers.push_back("level-" + std::to_string(level) + " avg size");
  }
  sim::Table table(headers);
  for (const auto filter : filters) {
    std::vector<std::string> row = {sim::Table::count(filter)};
    for (const auto level : levels) {
      sim::EvalConfig config;
      config.filter.min_access_count = filter;
      const auto result = bench::eval_directory(workload, level, config);
      row.push_back(sim::Table::num(result.avg_piggyback_size(), 1));
    }
    table.row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability observability("fig2_piggyback_size_vs_filter", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Figure 2: avg piggyback size vs access filter (directory volumes)",
      "size drops dramatically both with deeper prefix levels and with "
      "larger access filters; Sun sizes dwarf AIUSA at equal settings");

  // Filters are scaled relative to trace length (the paper filtered up to
  // 5000 on a 13M-request log; our logs are ~100x smaller).
  run_log(trace::aiusa_profile(bench::kAiusaScale * scale), true,
          {1, 10, 25, 50, 100, 200, 400});
  run_log(trace::sun_profile(bench::kSunScale * scale), false,
          {1, 50, 100, 250, 500, 1000, 2500, 5000});
  std::printf(
      "paper: Sun 1-level volumes fall under 20 elements once resources "
      "with <5000 accesses are filtered; AIUSA/Apache sizes are far "
      "smaller throughout.\n");
  return 0;
}

// Parallel evaluation engine scaling: serial PredictionEvaluator vs the
// sharded ParallelEvaluator at 1/2/4/8 threads over a large att_client
// trace (default --scale targets ~1M requests). Every run's metrics must
// be bit-identical — the binary exits non-zero on any mismatch — so the
// only thing allowed to change with the thread count is the wall time.
//
//   parallel_scaling [--scale=15.2] [--quick]
//                    [--json=BENCH_parallel_eval.json]
//                    [--replay-json=BENCH_trace_replay.json]
//
// The JSON report records per-run wall seconds, requests/second, and
// speedup vs serial, plus the machine's hardware thread count: speedups
// are only meaningful when the host has cores to spare.
//
// The binary also runs a trace-replay sweep: the same requests are staged
// once as CLF text and once as a PIGGYTRC binary container, then each
// format is loaded and replayed through the sharded evaluator at 1/2/4/8
// threads — plus a "stream" row set that drives the evaluator straight
// off the mmap'd container through the TraceView batch cursor, with no
// materialized Trace at all. Load time is where the formats differ (text
// parse vs mmap column decode vs mmap open); metrics must stay
// bit-identical across formats, modes, and thread counts. --replay-json
// writes the format x threads rows; --ratios-json writes a small
// dimensionless summary (stream-vs-materialized speedups) whose keys are
// hardware-portable enough to benchdiff against a committed baseline;
// --quick shrinks the workload for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "persist/codec.h"
#include "sim/parallel_eval.h"
#include "sim/report.h"
#include "trace/binary.h"
#include "trace/clf.h"
#include "trace/source.h"
#include "trace/stream.h"
#include "util/thread_pool.h"

using namespace piggyweb;

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

bool flag_present(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

struct Run {
  std::string label;
  std::size_t threads;  // 0 = serial evaluator
  double seconds = 0;
  sim::EvalResult result;
};

struct ReplayRow {
  std::string format;
  std::size_t threads;
  double load_seconds = 0;
  double eval_seconds = 0;
  sim::EvalResult result;
};

// Load `path` with the format pinned (no sniffing in the timed region).
bool timed_load(const std::string& path, trace::TraceFormat format,
                trace::Trace& out, double& seconds) {
  trace::TraceSourceOptions options;
  options.format = format;
  options.clf.drop_uncachable = false;  // keep the CLF round trip lossless
  trace::TraceLoadStats stats;
  std::string error;
  const auto start = now_seconds();
  if (!trace::load_trace(path, options, out, stats, error)) {
    std::fprintf(stderr, "replay: cannot load %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  seconds = now_seconds() - start;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability observability("parallel_scaling", argc, argv);
  const bool quick = flag_present(argc, argv, "--quick");
  // att_client at kAttScale * 15.2 ~= 1M requests; --quick targets ~50 k.
  const double scale = bench::scale_arg(argc, argv, quick ? 0.75 : 15.2);
  const auto json_path = bench::json_arg(argc, argv);
  const auto replay_json_path =
      bench::string_arg(argc, argv, "--replay-json=");
  bench::print_banner(
      "Parallel sharded evaluation engine: throughput scaling",
      "all rows report identical metrics (checked bit-for-bit); wall time "
      "drops with threads when the host has idle cores");

  const auto workload =
      trace::generate(trace::att_client_profile(bench::kAttScale * scale));
  std::printf("(att_client: %zu requests, %zu hardware threads)\n\n",
              workload.trace.size(), util::ThreadPool::hardware_threads());

  sim::EvalConfig config;
  config.filter.max_elements = 20;
  config.use_rpv = true;
  config.rpv.timeout = 30;
  config.min_piggyback_interval = 15;

  volume::DirectoryVolumeConfig dvc;
  server::TraceMetaOracle meta(workload.trace);

  std::vector<Run> runs;
  {
    Run run{"serial", 0, 0, {}};
    volume::DirectoryVolumes volumes(dvc);
    volumes.bind_paths(workload.trace.paths());
    const auto start = now_seconds();
    run.result =
        sim::PredictionEvaluator(config).run(workload.trace, volumes, meta);
    run.seconds = now_seconds() - start;
    runs.push_back(std::move(run));
  }
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    Run run{"threads=" + std::to_string(threads), threads, 0, {}};
    sim::ParallelEvalConfig par;
    par.threads = threads;
    const auto spec = sim::shard_directory_volumes(dvc, workload.trace);
    const auto start = now_seconds();
    run.result = sim::ParallelEvaluator(config, par).run(workload.trace,
                                                         spec, meta);
    run.seconds = now_seconds() - start;
    runs.push_back(std::move(run));
  }

  const auto& serial = runs.front();
  bool identical = true;
  for (const auto& run : runs) {
    if (std::memcmp(&run.result, &serial.result, sizeof serial.result) !=
        0) {
      std::fprintf(stderr, "METRIC MISMATCH in %s\n", run.label.c_str());
      identical = false;
    }
  }

  const auto requests = static_cast<double>(workload.trace.size());
  sim::Table table({"run", "wall s", "requests/s", "speedup vs serial"});
  for (const auto& run : runs) {
    table.row({run.label, sim::Table::num(run.seconds, 2),
               sim::Table::num(requests / run.seconds, 0),
               sim::Table::num(serial.seconds / run.seconds, 2)});
  }
  table.print(std::cout);
  std::printf("\nmetrics identical across all runs: %s\n",
              identical ? "yes" : "NO");

  auto report = obs::Json::object();
  report.set("benchmark", "parallel_eval_scaling");
  report.set("workload", "att_client");
  report.set("requests", workload.trace.size());
  report.set("hardware_threads", util::ThreadPool::hardware_threads());
  report.set("metrics_identical", identical);
  auto run_rows = obs::Json::array();
  for (const auto& run : runs) {
    auto row = obs::Json::object();
    row.set("label", run.label);
    row.set("threads", run.threads);
    row.set("wall_seconds", run.seconds);
    row.set("requests_per_second", requests / run.seconds);
    row.set("speedup_vs_serial", serial.seconds / run.seconds);
    run_rows.push_back(std::move(row));
  }
  report.set("runs", std::move(run_rows));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << report.dump(2) << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  observability.note("scaling", std::move(report));

  // -------------------------------------------------------------------
  // Trace replay: CLF text parse vs PIGGYTRC binary mmap. The replay
  // baseline is the CLF round trip of the workload (CLF does not carry
  // server names or Last-Modified); the binary container is serialized
  // from that loaded trace, so both formats replay identical columns and
  // intern tables and every run must report bit-identical metrics.
  const std::string clf_path = "bench-replay-tmp.log";
  const std::string bin_path = "bench-replay-tmp.trc";
  std::size_t clf_bytes = 0;
  {
    std::ofstream out(clf_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", clf_path.c_str());
      return 1;
    }
    trace::write_clf(out, workload.trace);
    clf_bytes = static_cast<std::size_t>(out.tellp());
  }
  trace::Trace canonical;
  double first_load = 0;
  if (!timed_load(clf_path, trace::TraceFormat::kClf, canonical,
                  first_load)) {
    return 1;
  }
  std::size_t binary_bytes = 0;
  {
    const auto bytes = trace::serialize_binary_trace(canonical);
    binary_bytes = bytes.size();
    std::string error;
    if (!persist::write_file_bytes(bin_path, bytes, error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", bin_path.c_str(),
                   error.c_str());
      return 1;
    }
  }
  std::printf(
      "\ntrace replay: %zu requests, clf %zu bytes, binary %zu bytes\n",
      canonical.size(), clf_bytes, binary_bytes);

  // Pure load-time comparison (best of N, files warm in the page cache
  // from the staging pass above).
  const int load_reps = quick ? 2 : 3;
  const auto best_load = [&](trace::TraceFormat format,
                             const std::string& path) {
    double best = -1;
    for (int rep = 0; rep < load_reps; ++rep) {
      trace::Trace t;
      double seconds = 0;
      if (!timed_load(path, format, t, seconds)) return -1.0;
      best = best < 0 ? seconds : std::min(best, seconds);
    }
    return best;
  };
  const double clf_load = best_load(trace::TraceFormat::kClf, clf_path);
  const double bin_load = best_load(trace::TraceFormat::kBinary, bin_path);
  if (clf_load < 0 || bin_load < 0) return 1;
  std::printf(
      "load (best of %d): clf %.3f s, binary %.3f s, speedup %.2fx\n\n",
      load_reps, clf_load, bin_load, clf_load / bin_load);

  // Each (format, threads) row is best-of-N like the load comparison
  // above: hosts with frequency scaling drift on a timescale comparable
  // to one full sweep, and a single-shot row confounds the format effect
  // with whatever phase the clock happened to be in. Every rep must still
  // produce bit-identical metrics; the row keeps the rep with the
  // smallest load+eval total.
  const int replay_reps = quick ? 2 : 3;
  std::vector<ReplayRow> replay;
  for (const char* format_name : {"clf", "binary", "stream"}) {
    const bool is_stream = std::string_view(format_name) == "stream";
    const bool is_binary = std::string_view(format_name) == "binary";
    const auto format =
        is_binary ? trace::TraceFormat::kBinary : trace::TraceFormat::kClf;
    const auto& path = is_binary ? bin_path : clf_path;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      ReplayRow best;
      for (int rep = 0; rep < replay_reps; ++rep) {
        ReplayRow row;
        row.format = format_name;
        row.threads = threads;
        sim::ParallelEvalConfig par;
        par.threads = threads;
        if (is_stream) {
          // Zero-materialization mode: "load" is the mmap open + container
          // validation; training state (the meta oracle) is built window by
          // window off the batch cursor, like the tools' --stream path.
          std::string error;
          auto load_start = now_seconds();
          auto view = trace::StreamingTraceSource::open(bin_path, error);
          if (view == nullptr) {
            std::fprintf(stderr, "replay: cannot stream %s: %s\n",
                         bin_path.c_str(), error.c_str());
            return 1;
          }
          row.load_seconds = now_seconds() - load_start;
          server::TraceMetaOracle replay_meta;
          constexpr std::size_t kScanWindow = std::size_t{1} << 16;
          const auto total = view->request_count();
          for (std::size_t base = 0; base < total; base += kScanWindow) {
            const auto n = std::min(kScanWindow, total - base);
            replay_meta.observe_window(view->window(base, n), view->paths());
          }
          const auto spec = sim::shard_directory_volumes(dvc, view->paths());
          const auto start = now_seconds();
          row.result = sim::ParallelEvaluator(config, par).run(*view, spec,
                                                               replay_meta);
          row.eval_seconds = now_seconds() - start;
        } else {
          trace::Trace t;
          if (!timed_load(path, format, t, row.load_seconds)) return 1;
          server::TraceMetaOracle replay_meta(t);
          const auto spec = sim::shard_directory_volumes(dvc, t);
          const auto start = now_seconds();
          row.result =
              sim::ParallelEvaluator(config, par).run(t, spec, replay_meta);
          row.eval_seconds = now_seconds() - start;
        }
        if (rep > 0 &&
            std::memcmp(&row.result, &best.result, sizeof row.result) != 0) {
          std::fprintf(stderr, "REPLAY METRIC MISMATCH across reps in %s "
                               "threads=%zu\n",
                       row.format.c_str(), threads);
          return 1;
        }
        if (rep == 0 || row.load_seconds + row.eval_seconds <
                            best.load_seconds + best.eval_seconds) {
          best = std::move(row);
        }
      }
      replay.push_back(std::move(best));
    }
  }
  std::remove(clf_path.c_str());
  std::remove(bin_path.c_str());

  bool replay_identical = true;
  for (const auto& row : replay) {
    if (std::memcmp(&row.result, &replay.front().result,
                    sizeof row.result) != 0) {
      std::fprintf(stderr, "REPLAY METRIC MISMATCH in %s threads=%zu\n",
                   row.format.c_str(), row.threads);
      replay_identical = false;
    }
  }

  const auto replay_requests = static_cast<double>(canonical.size());
  sim::Table replay_table(
      {"format", "threads", "load s", "eval s", "total s", "requests/s"});
  for (const auto& row : replay) {
    const double total = row.load_seconds + row.eval_seconds;
    replay_table.row({row.format, std::to_string(row.threads),
                      sim::Table::num(row.load_seconds, 3),
                      sim::Table::num(row.eval_seconds, 2),
                      sim::Table::num(total, 2),
                      sim::Table::num(replay_requests / total, 0)});
  }
  replay_table.print(std::cout);
  std::printf("\nreplay metrics identical across formats and threads: %s\n",
              replay_identical ? "yes" : "NO");

  auto replay_report = obs::Json::object();
  replay_report.set("benchmark", "trace_replay");
  replay_report.set("workload", "att_client");
  replay_report.set("requests", canonical.size());
  replay_report.set("hardware_threads", util::ThreadPool::hardware_threads());
  replay_report.set("quick", quick);
  replay_report.set("clf_bytes", clf_bytes);
  replay_report.set("binary_bytes", binary_bytes);
  replay_report.set("metrics_identical", replay_identical);
  auto load_report = obs::Json::object();
  load_report.set("reps_best_of", load_reps);
  load_report.set("clf_seconds", clf_load);
  load_report.set("binary_seconds", bin_load);
  load_report.set("speedup", clf_load / bin_load);
  replay_report.set("load", std::move(load_report));
  replay_report.set("replay_reps_best_of", replay_reps);
  auto replay_rows = obs::Json::array();
  for (const auto& row : replay) {
    const double total = row.load_seconds + row.eval_seconds;
    auto json_row = obs::Json::object();
    json_row.set("format", row.format);
    json_row.set("threads", row.threads);
    json_row.set("load_seconds", row.load_seconds);
    json_row.set("eval_seconds", row.eval_seconds);
    json_row.set("total_seconds", total);
    json_row.set("requests_per_second", replay_requests / total);
    replay_rows.push_back(std::move(json_row));
  }
  replay_report.set("replay", std::move(replay_rows));

  if (!replay_json_path.empty()) {
    std::ofstream out(replay_json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", replay_json_path.c_str());
      return 1;
    }
    out << replay_report.dump(2) << "\n";
    std::printf("wrote %s\n", replay_json_path.c_str());
  }
  observability.note("trace_replay", std::move(replay_report));

  // Dimensionless stream-vs-materialized summary. Every numeric key ends
  // in "speedup", so `piggyweb_benchdiff --ratio-only` gates all of them
  // against a committed baseline — ratios of runs on the same host are
  // hardware-portable where raw req/s are not. Only single-thread ratios:
  // multi-thread speedups collapse on core-starved CI runners.
  const auto row_of = [&](std::string_view fmt,
                          std::size_t threads) -> const ReplayRow* {
    for (const auto& row : replay) {
      if (row.format == fmt && row.threads == threads) return &row;
    }
    return nullptr;
  };
  const auto* clf_t1 = row_of("clf", 1);
  const auto* bin_t1 = row_of("binary", 1);
  const auto* stream_t1 = row_of("stream", 1);
  if (clf_t1 == nullptr || bin_t1 == nullptr || stream_t1 == nullptr) {
    std::fprintf(stderr, "replay: missing t1 rows for the ratio summary\n");
    return 1;
  }
  const auto total_of = [](const ReplayRow& row) {
    return row.load_seconds + row.eval_seconds;
  };
  auto ratio_report = obs::Json::object();
  ratio_report.set("benchmark", "trace_replay_ratios");
  ratio_report.set("workload", "att_client");
  ratio_report.set("metrics_identical", replay_identical);
  ratio_report.set("binary_vs_clf_load_speedup", clf_load / bin_load);
  ratio_report.set("stream_vs_binary_total_speedup_t1",
                   total_of(*bin_t1) / total_of(*stream_t1));
  ratio_report.set("stream_vs_clf_total_speedup_t1",
                   total_of(*clf_t1) / total_of(*stream_t1));
  ratio_report.set("stream_vs_binary_eval_speedup_t1",
                   bin_t1->eval_seconds / stream_t1->eval_seconds);
  std::printf(
      "\nstream vs binary (t1): total %.2fx, eval %.2fx; "
      "stream vs clf (t1): total %.2fx\n",
      total_of(*bin_t1) / total_of(*stream_t1),
      bin_t1->eval_seconds / stream_t1->eval_seconds,
      total_of(*clf_t1) / total_of(*stream_t1));

  const auto ratios_json_path =
      bench::string_arg(argc, argv, "--ratios-json=");
  if (!ratios_json_path.empty()) {
    std::ofstream out(ratios_json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", ratios_json_path.c_str());
      return 1;
    }
    out << ratio_report.dump(2) << "\n";
    std::printf("wrote %s\n", ratios_json_path.c_str());
  }
  observability.note("trace_replay_ratios", std::move(ratio_report));
  return (identical && replay_identical) ? 0 : 1;
}

// Parallel evaluation engine scaling: serial PredictionEvaluator vs the
// sharded ParallelEvaluator at 1/2/4/8 threads over a large att_client
// trace (default --scale targets ~1M requests). Every run's metrics must
// be bit-identical — the binary exits non-zero on any mismatch — so the
// only thing allowed to change with the thread count is the wall time.
//
//   parallel_scaling [--scale=15.2] [--json=BENCH_parallel_eval.json]
//
// The JSON report records per-run wall seconds, requests/second, and
// speedup vs serial, plus the machine's hardware thread count: speedups
// are only meaningful when the host has cores to spare.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/parallel_eval.h"
#include "sim/report.h"
#include "util/thread_pool.h"

using namespace piggyweb;

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct Run {
  std::string label;
  std::size_t threads;  // 0 = serial evaluator
  double seconds = 0;
  sim::EvalResult result;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Observability observability("parallel_scaling", argc, argv);
  // att_client at kAttScale * 15.2 ~= 1M requests.
  const double scale = bench::scale_arg(argc, argv, 15.2);
  const auto json_path = bench::json_arg(argc, argv);
  bench::print_banner(
      "Parallel sharded evaluation engine: throughput scaling",
      "all rows report identical metrics (checked bit-for-bit); wall time "
      "drops with threads when the host has idle cores");

  const auto workload =
      trace::generate(trace::att_client_profile(bench::kAttScale * scale));
  std::printf("(att_client: %zu requests, %zu hardware threads)\n\n",
              workload.trace.size(), util::ThreadPool::hardware_threads());

  sim::EvalConfig config;
  config.filter.max_elements = 20;
  config.use_rpv = true;
  config.rpv.timeout = 30;
  config.min_piggyback_interval = 15;

  volume::DirectoryVolumeConfig dvc;
  server::TraceMetaOracle meta(workload.trace);

  std::vector<Run> runs;
  {
    Run run{"serial", 0, 0, {}};
    volume::DirectoryVolumes volumes(dvc);
    volumes.bind_paths(workload.trace.paths());
    const auto start = now_seconds();
    run.result =
        sim::PredictionEvaluator(config).run(workload.trace, volumes, meta);
    run.seconds = now_seconds() - start;
    runs.push_back(std::move(run));
  }
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    Run run{"threads=" + std::to_string(threads), threads, 0, {}};
    sim::ParallelEvalConfig par;
    par.threads = threads;
    const auto spec = sim::shard_directory_volumes(dvc, workload.trace);
    const auto start = now_seconds();
    run.result = sim::ParallelEvaluator(config, par).run(workload.trace,
                                                         spec, meta);
    run.seconds = now_seconds() - start;
    runs.push_back(std::move(run));
  }

  const auto& serial = runs.front();
  bool identical = true;
  for (const auto& run : runs) {
    if (std::memcmp(&run.result, &serial.result, sizeof serial.result) !=
        0) {
      std::fprintf(stderr, "METRIC MISMATCH in %s\n", run.label.c_str());
      identical = false;
    }
  }

  const auto requests = static_cast<double>(workload.trace.size());
  sim::Table table({"run", "wall s", "requests/s", "speedup vs serial"});
  for (const auto& run : runs) {
    table.row({run.label, sim::Table::num(run.seconds, 2),
               sim::Table::num(requests / run.seconds, 0),
               sim::Table::num(serial.seconds / run.seconds, 2)});
  }
  table.print(std::cout);
  std::printf("\nmetrics identical across all runs: %s\n",
              identical ? "yes" : "NO");

  auto report = obs::Json::object();
  report.set("benchmark", "parallel_eval_scaling");
  report.set("workload", "att_client");
  report.set("requests", workload.trace.size());
  report.set("hardware_threads", util::ThreadPool::hardware_threads());
  report.set("metrics_identical", identical);
  auto run_rows = obs::Json::array();
  for (const auto& run : runs) {
    auto row = obs::Json::object();
    row.set("label", run.label);
    row.set("threads", run.threads);
    row.set("wall_seconds", run.seconds);
    row.set("requests_per_second", requests / run.seconds);
    row.set("speedup_vs_serial", serial.seconds / run.seconds);
    run_rows.push_back(std::move(row));
  }
  report.set("runs", std::move(run_rows));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << report.dump(2) << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  observability.note("scaling", std::move(report));
  return identical ? 0 : 1;
}

// Extension study: piggybacking in a two-level cache hierarchy (§1 notes
// the techniques apply to hierarchical caching; §5 lists multi-level
// caches as future work). Children sit near clients, one parent faces the
// origin; the parent relays piggybacks downstream so both levels receive
// refreshes/invalidations from one server message.
//
// The second half sweeps general topologies through the simulation
// engine: balanced trees of depth 1–4 at several fan-outs over a
// multi-origin client-trace workload, one JSON row per shape (optionally
// mirrored to --json=FILE). Deeper trees absorb more requests below the
// root but fragment each leaf's client population.
//
//   hierarchy_levels [--scale=1.0] [--json=BENCH_topology_sweep.json]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "sim/engine.h"
#include "sim/hierarchy.h"
#include "sim/report.h"

using namespace piggyweb;

namespace {

sim::HierarchyConfig base_config() {
  sim::HierarchyConfig config;
  config.child_proxies = 4;
  config.child_cache.capacity_bytes = 2ULL * 1024 * 1024;
  config.parent_cache.capacity_bytes = 32ULL * 1024 * 1024;
  config.base_filter.max_elements = 20;
  config.volumes.level = 1;
  config.rpv.timeout = 60;
  return config;
}

void add_row(sim::Table& table, const char* name,
             const sim::HierarchyResult& result) {
  table.row({name, sim::Table::pct(result.child_hit_rate()),
             sim::Table::pct(result.overall_hit_rate()),
             sim::Table::pct(result.server_contact_rate()),
             sim::Table::count(result.parent_coherency.refreshed),
             sim::Table::count(result.child_coherency.refreshed),
             sim::Table::count(result.stale_served)});
}

obs::Json shape_json(int depth, int fanout, const sim::Topology& topology,
                     const sim::EngineResult& result) {
  auto row = obs::Json::object();
  row.set("depth", depth);
  row.set("fanout", fanout);
  row.set("nodes", topology.nodes.size());
  row.set("leaves", sim::leaf_indices(topology).size());
  row.set("client_requests", result.client_requests);
  row.set("server_contacts", result.server_contacts);
  row.set("leaf_hit_rate", result.leaf_hit_rate());
  row.set("overall_hit_rate", result.overall_hit_rate());
  row.set("server_contact_rate", result.server_contact_rate());
  row.set("mean_user_latency", result.mean_user_latency());
  row.set("root_refreshes", result.merged_root_coherency().refreshed);
  row.set("leaf_refreshes", result.merged_leaf_coherency().refreshed);
  row.set("stale_served", result.stale_served);
  return row;
}

// Balanced trees of depth 1–4 over a multi-origin client trace, run
// through the topology-general engine. The root keeps a cost-accounted
// origin link so latency is comparable across shapes.
void topology_sweep(double scale, const std::string& json_path) {
  std::printf(
      "--- topology sweep: balanced trees over a multi-origin client "
      "trace ---\n");
  const auto workload = trace::generate(
      trace::att_client_profile(bench::kAttScale * 0.5 * scale));
  std::printf("workload: att_client-like, %zu requests\n",
              workload.trace.size());

  sim::EngineConfig engine_config;
  engine_config.volumes.level = 1;

  auto rows = obs::Json::array();
  for (const int depth : {1, 2, 3, 4}) {
    for (const int fanout : {2, 4}) {
      if (depth == 1 && fanout != 2) continue;  // one node either way
      sim::UniformTreeSpec spec;
      spec.depth = depth;
      spec.fanout = depth == 1 ? 1 : fanout;
      spec.leaf_cache.capacity_bytes = 2ULL * 1024 * 1024;
      spec.leaf_cache.freshness_interval = 2 * util::kHour;
      spec.root_cache.capacity_bytes = 32ULL * 1024 * 1024;
      spec.root_cache.freshness_interval = 2 * util::kHour;
      spec.base_filter.max_elements = 20;
      spec.rpv.timeout = 60;
      spec.origin_link = net::NetworkConfig{};
      const auto topology = sim::uniform_tree_topology(spec);
      const auto result =
          sim::SimulationEngine(workload, topology, engine_config).run();
      auto row = shape_json(depth, spec.fanout, topology, result);
      std::printf("%s\n", row.dump(0).c_str());
      rows.push_back(std::move(row));
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << rows.dump(2) << "\n";
    std::printf("(wrote %s)\n", json_path.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability observability("hierarchy_levels", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  const auto json_path = bench::json_arg(argc, argv);
  bench::print_banner(
      "Extension: piggybacking across cache hierarchies",
      "piggybacking cuts origin contacts at both depths; relaying "
      "piggybacks to the children adds child-level refreshes on top of "
      "the parent's; fragmenting clients over more children lowers the "
      "child hit rate but the parent recovers most of it; in the "
      "topology sweep, extra levels absorb requests below the root while "
      "leaf hit rates fall with fan-out");

  const auto workload =
      trace::generate(trace::apache_profile(bench::kApacheScale * scale));
  std::printf("workload: apache-like, %zu requests\n\n",
              workload.trace.size());

  sim::Table table({"configuration", "child hit rate", "overall hit rate",
                    "server contact rate", "parent refreshes",
                    "child refreshes", "stale serves"});

  auto off = base_config();
  off.piggybacking = false;
  add_row(table, "no piggybacking",
          sim::HierarchySimulator(workload, off).run());

  auto parent_only = base_config();
  parent_only.relay_to_children = false;
  add_row(table, "piggyback, parent only",
          sim::HierarchySimulator(workload, parent_only).run());

  add_row(table, "piggyback, relayed to children",
          sim::HierarchySimulator(workload, base_config()).run());

  auto many = base_config();
  many.child_proxies = 16;
  add_row(table, "relayed, 16 children",
          sim::HierarchySimulator(workload, many).run());

  table.print(std::cout);
  std::printf("\n");

  topology_sweep(scale, json_path);
  return 0;
}

// Extension study: piggybacking in a two-level cache hierarchy (§1 notes
// the techniques apply to hierarchical caching; §5 lists multi-level
// caches as future work). Children sit near clients, one parent faces the
// origin; the parent relays piggybacks downstream so both levels receive
// refreshes/invalidations from one server message.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/hierarchy.h"
#include "sim/report.h"

using namespace piggyweb;

namespace {

sim::HierarchyConfig base_config() {
  sim::HierarchyConfig config;
  config.child_proxies = 4;
  config.child_cache.capacity_bytes = 2ULL * 1024 * 1024;
  config.parent_cache.capacity_bytes = 32ULL * 1024 * 1024;
  config.base_filter.max_elements = 20;
  config.volumes.level = 1;
  config.rpv.timeout = 60;
  return config;
}

void add_row(sim::Table& table, const char* name,
             const sim::HierarchyResult& result) {
  table.row({name, sim::Table::pct(result.child_hit_rate()),
             sim::Table::pct(result.overall_hit_rate()),
             sim::Table::pct(result.server_contact_rate()),
             sim::Table::count(result.parent_coherency.refreshed),
             sim::Table::count(result.child_coherency.refreshed),
             sim::Table::count(result.stale_served)});
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Extension: piggybacking across a two-level cache hierarchy",
      "piggybacking cuts origin contacts at both depths; relaying "
      "piggybacks to the children adds child-level refreshes on top of "
      "the parent's; fragmenting clients over more children lowers the "
      "child hit rate but the parent recovers most of it");

  const auto workload =
      trace::generate(trace::apache_profile(bench::kApacheScale * scale));
  std::printf("workload: apache-like, %zu requests\n\n",
              workload.trace.size());

  sim::Table table({"configuration", "child hit rate", "overall hit rate",
                    "server contact rate", "parent refreshes",
                    "child refreshes", "stale serves"});

  auto off = base_config();
  off.piggybacking = false;
  add_row(table, "no piggybacking",
          sim::HierarchySimulator(workload, off).run());

  auto parent_only = base_config();
  parent_only.relay_to_children = false;
  add_row(table, "piggyback, parent only",
          sim::HierarchySimulator(workload, parent_only).run());

  add_row(table, "piggyback, relayed to children",
          sim::HierarchySimulator(workload, base_config()).run());

  auto many = base_config();
  many.child_proxies = 16;
  add_row(table, "relayed, 16 children",
          sim::HierarchySimulator(workload, many).run());

  table.print(std::cout);
  return 0;
}

// Baseline comparison: how should a proxy keep its cache coherent?
//
//   * TTL only — plain freshness intervals + If-Modified-Since (the
//     pre-piggybacking status quo the paper's §1 describes);
//   * PCV — piggyback cache validation, the proxy-driven mechanism of the
//     paper's reference [10] (batched validations on proxy requests);
//   * volumes — the paper's server-driven mechanism (P-volume piggybacks
//     + coherency processing), with directory and thinned-probability
//     variants;
//   * PCV + volumes — both directions at once (§5's combined framework).
//
// Compares staleness, validation traffic, fresh-hit rate, piggyback bytes
// and user latency on the apache-like workload.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/end_to_end.h"
#include "sim/report.h"

using namespace piggyweb;

namespace {

sim::EndToEndConfig base_config() {
  sim::EndToEndConfig config;
  config.cache.capacity_bytes = 24ULL * 1024 * 1024;
  config.cache.freshness_interval = 2 * util::kHour;
  config.base_filter.max_elements = 20;
  config.volumes.level = 1;
  config.rpv.timeout = 60;
  config.piggybacking = false;  // each row opts in below
  return config;
}

void add_row(sim::Table& table, const char* name,
             const sim::EndToEndResult& result) {
  table.row({name, sim::Table::pct(result.cache.fresh_hit_rate()),
             sim::Table::count(result.validations),
             sim::Table::pct(result.stale_rate(), 2),
             sim::Table::count(result.coherency.refreshed +
                               result.pcv.freshened),
             sim::Table::count(result.coherency.invalidated +
                               result.pcv.invalidated),
             sim::Table::count(result.piggyback_bytes / 1024),
             sim::Table::num(result.mean_user_latency(), 3)});
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability observability("coherency_baselines", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Baselines: TTL vs PCV [10] vs server volumes (coherency)",
      "both piggyback mechanisms beat plain TTL on validations and "
      "staleness; volumes refresh far more entries per byte (the server "
      "knows what changed), PCV is precise but limited to what the proxy "
      "already caches; combining them is strongest");

  const auto workload =
      trace::generate(trace::apache_profile(bench::kApacheScale * scale));
  std::printf("workload: apache-like, %zu requests\n\n",
              workload.trace.size());

  const auto counts = bench::pair_counts(workload);
  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = 0.2;
  pvc.effectiveness_threshold = 0.2;
  const auto volumes =
      volume::build_probability_volumes(workload.trace, counts, pvc);

  sim::Table table({"coherency scheme", "fresh hit rate",
                    "IMS validations", "stale rate", "freshened",
                    "invalidated", "piggyback KB", "mean latency (s)"});

  {
    auto config = base_config();  // TTL only
    add_row(table, "TTL only",
            sim::EndToEndSimulator(workload, config).run());
  }
  {
    auto config = base_config();
    config.enable_pcv = true;
    config.pcv.batch = 10;
    config.pcv.horizon = 600;
    add_row(table, "PCV [10]",
            sim::EndToEndSimulator(workload, config).run());
  }
  {
    auto config = base_config();
    config.piggybacking = true;
    config.enable_coherency = true;
    add_row(table, "volumes (directory)",
            sim::EndToEndSimulator(workload, config).run());
  }
  {
    auto config = base_config();
    config.piggybacking = true;
    config.enable_coherency = true;
    config.probability_volumes = &volumes;
    add_row(table, "volumes (prob, thinned)",
            sim::EndToEndSimulator(workload, config).run());
  }
  {
    auto config = base_config();
    config.piggybacking = true;
    config.enable_coherency = true;
    config.probability_volumes = &volumes;
    config.enable_pcv = true;
    config.pcv.batch = 10;
    config.pcv.horizon = 600;
    add_row(table, "PCV + volumes",
            sim::EndToEndSimulator(workload, config).run());
  }
  table.print(std::cout);
  return 0;
}

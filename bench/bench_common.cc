#include "bench_common.h"

#include <cstdio>
#include <cstring>

#include "sim/parallel_eval.h"
#include "util/strings.h"
#include "volume/sharded_pair_counter.h"

namespace piggyweb::bench {

double scale_arg(int argc, char** argv, double fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (util::starts_with(arg, "--scale=")) {
      double value = 0;
      if (util::parse_double(arg.substr(std::strlen("--scale=")), value) &&
          value > 0) {
        return value;
      }
      std::fprintf(stderr, "ignoring malformed %s\n", argv[i]);
    }
  }
  return fallback;
}

std::size_t threads_arg(int argc, char** argv, std::size_t fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (util::starts_with(arg, "--threads=")) {
      std::uint64_t value = 0;
      if (util::parse_u64(arg.substr(std::strlen("--threads=")), value)) {
        return static_cast<std::size_t>(value);
      }
      std::fprintf(stderr, "ignoring malformed %s\n", argv[i]);
    }
  }
  return fallback;
}

sim::EvalResult eval_directory(const trace::SyntheticWorkload& workload,
                               int level, const sim::EvalConfig& config,
                               std::size_t max_candidates,
                               std::size_t threads) {
  volume::DirectoryVolumeConfig dvc;
  dvc.level = level;
  dvc.max_candidates = max_candidates;
  server::TraceMetaOracle meta(workload.trace);
  if (threads != 1) {
    sim::ParallelEvalConfig par;
    par.threads = threads;
    const auto spec = sim::shard_directory_volumes(dvc, workload.trace);
    return sim::ParallelEvaluator(config, par).run(workload.trace, spec,
                                                   meta);
  }
  volume::DirectoryVolumes volumes(dvc);
  volumes.bind_paths(workload.trace.paths());
  return sim::PredictionEvaluator(config).run(workload.trace, volumes, meta);
}

volume::PairCounts pair_counts(const trace::SyntheticWorkload& workload,
                               std::uint64_t min_resource_count,
                               util::Seconds window, std::size_t threads) {
  volume::PairCounterConfig pcc;
  pcc.window = window;
  if (threads != 1) {
    return volume::ParallelPairCounterBuilder(pcc, threads)
        .build(workload.trace, min_resource_count);
  }
  return volume::PairCounterBuilder(pcc).build(workload.trace,
                                               min_resource_count);
}

ProbabilityRun eval_probability_with_counts(
    const trace::SyntheticWorkload& workload,
    const volume::PairCounts& counts,
    const volume::ProbabilityVolumeConfig& pvc,
    const sim::EvalConfig& config, std::size_t threads) {
  const auto set =
      volume::build_probability_volumes(workload.trace, counts, pvc);
  server::TraceMetaOracle meta(workload.trace);
  if (threads != 1) {
    sim::ParallelEvalConfig par;
    par.threads = threads;
    const auto spec =
        sim::shard_probability_volumes(&set, pvc.max_candidates);
    return {sim::ParallelEvaluator(config, par).run(workload.trace, spec,
                                                    meta),
            set.stats()};
  }
  volume::ProbabilityVolumes provider(&set, pvc.max_candidates);
  return {sim::PredictionEvaluator(config).run(workload.trace, provider,
                                               meta),
          set.stats()};
}

ProbabilityRun eval_probability(const trace::SyntheticWorkload& workload,
                                const volume::ProbabilityVolumeConfig& pvc,
                                const sim::EvalConfig& config,
                                std::uint64_t min_resource_count,
                                std::size_t threads) {
  const auto counts =
      pair_counts(workload, min_resource_count, pvc.window, threads);
  return eval_probability_with_counts(workload, counts, pvc, config,
                                      threads);
}

void print_banner(const std::string& title,
                  const std::string& what_to_check) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("shape to check: %s\n\n", what_to_check.c_str());
}

}  // namespace piggyweb::bench

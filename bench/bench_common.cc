#include "bench_common.h"

#include <cstdio>
#include <cstring>

#include "util/strings.h"

namespace piggyweb::bench {

double scale_arg(int argc, char** argv, double fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (util::starts_with(arg, "--scale=")) {
      double value = 0;
      if (util::parse_double(arg.substr(std::strlen("--scale=")), value) &&
          value > 0) {
        return value;
      }
      std::fprintf(stderr, "ignoring malformed %s\n", argv[i]);
    }
  }
  return fallback;
}

sim::EvalResult eval_directory(const trace::SyntheticWorkload& workload,
                               int level, const sim::EvalConfig& config,
                               std::size_t max_candidates) {
  volume::DirectoryVolumeConfig dvc;
  dvc.level = level;
  dvc.max_candidates = max_candidates;
  volume::DirectoryVolumes volumes(dvc);
  volumes.bind_paths(workload.trace.paths());
  server::TraceMetaOracle meta(workload.trace);
  return sim::PredictionEvaluator(config).run(workload.trace, volumes, meta);
}

volume::PairCounts pair_counts(const trace::SyntheticWorkload& workload,
                               std::uint64_t min_resource_count,
                               util::Seconds window) {
  volume::PairCounterConfig pcc;
  pcc.window = window;
  return volume::PairCounterBuilder(pcc).build(workload.trace,
                                               min_resource_count);
}

ProbabilityRun eval_probability_with_counts(
    const trace::SyntheticWorkload& workload,
    const volume::PairCounts& counts,
    const volume::ProbabilityVolumeConfig& pvc,
    const sim::EvalConfig& config) {
  const auto set =
      volume::build_probability_volumes(workload.trace, counts, pvc);
  volume::ProbabilityVolumes provider(&set, pvc.max_candidates);
  server::TraceMetaOracle meta(workload.trace);
  return {sim::PredictionEvaluator(config).run(workload.trace, provider,
                                               meta),
          set.stats()};
}

ProbabilityRun eval_probability(const trace::SyntheticWorkload& workload,
                                const volume::ProbabilityVolumeConfig& pvc,
                                const sim::EvalConfig& config,
                                std::uint64_t min_resource_count) {
  const auto counts =
      pair_counts(workload, min_resource_count, pvc.window);
  return eval_probability_with_counts(workload, counts, pvc, config);
}

void print_banner(const std::string& title,
                  const std::string& what_to_check) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("shape to check: %s\n\n", what_to_check.c_str());
}

}  // namespace piggyweb::bench

#include "bench_common.h"

#include <cstdio>
#include <optional>

#include "sim/parallel_eval.h"
#include "util/strings.h"
#include "volume/sharded_pair_counter.h"

namespace piggyweb::bench {

namespace {

// Value of the first "--name=value" argv entry matching `flag`, or
// nullopt when absent.
std::optional<std::string_view> raw_flag(int argc, char** argv,
                                         std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (util::starts_with(arg, flag)) return arg.substr(flag.size());
  }
  return std::nullopt;
}

void warn_malformed(std::string_view flag, std::string_view raw) {
  std::fprintf(stderr, "ignoring malformed %.*s%.*s\n",
               static_cast<int>(flag.size()), flag.data(),
               static_cast<int>(raw.size()), raw.data());
}

}  // namespace

std::string string_arg(int argc, char** argv, std::string_view flag,
                       std::string fallback) {
  const auto raw = raw_flag(argc, argv, flag);
  return raw ? std::string(*raw) : fallback;
}

double double_arg(int argc, char** argv, std::string_view flag,
                  double fallback) {
  const auto raw = raw_flag(argc, argv, flag);
  if (!raw) return fallback;
  double value = 0;
  if (util::parse_double(*raw, value)) return value;
  warn_malformed(flag, *raw);
  return fallback;
}

std::uint64_t u64_arg(int argc, char** argv, std::string_view flag,
                      std::uint64_t fallback) {
  const auto raw = raw_flag(argc, argv, flag);
  if (!raw) return fallback;
  std::uint64_t value = 0;
  if (util::parse_u64(*raw, value)) return value;
  warn_malformed(flag, *raw);
  return fallback;
}

double scale_arg(int argc, char** argv, double fallback) {
  const double value = double_arg(argc, argv, "--scale=", fallback);
  if (value <= 0) {
    std::fprintf(stderr, "ignoring non-positive --scale\n");
    return fallback;
  }
  return value;
}

std::size_t threads_arg(int argc, char** argv, std::size_t fallback) {
  return static_cast<std::size_t>(
      u64_arg(argc, argv, "--threads=", fallback));
}

std::string json_arg(int argc, char** argv) {
  return string_arg(argc, argv, "--json=");
}

Observability::Observability(std::string run_name, int argc, char** argv) {
  obs::RunScope::Options options;
  options.run_name = std::move(run_name);
  options.metrics_path = string_arg(argc, argv, "--metrics-out=");
  options.trace_path = string_arg(argc, argv, "--trace-out=");
  options.prom_path = string_arg(argc, argv, "--prom-out=");
  options.flight_recorder_path =
      string_arg(argc, argv, "--flight-recorder=");
  if (options.metrics_path.empty() && options.trace_path.empty() &&
      options.prom_path.empty() && options.flight_recorder_path.empty()) {
    return;
  }
  options.argv.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) options.argv.emplace_back(argv[i]);
  scope_ = std::make_unique<obs::RunScope>(std::move(options));
}

void Observability::note(std::string key, obs::Json value) {
  if (scope_ != nullptr) scope_->note(std::move(key), std::move(value));
}

sim::EvalResult eval_directory(const trace::SyntheticWorkload& workload,
                               int level, const sim::EvalConfig& config,
                               std::size_t max_candidates,
                               std::size_t threads) {
  volume::DirectoryVolumeConfig dvc;
  dvc.level = level;
  dvc.max_candidates = max_candidates;
  server::TraceMetaOracle meta(workload.trace);
  if (threads != 1) {
    sim::ParallelEvalConfig par;
    par.threads = threads;
    const auto spec = sim::shard_directory_volumes(dvc, workload.trace);
    return sim::ParallelEvaluator(config, par).run(workload.trace, spec,
                                                   meta);
  }
  volume::DirectoryVolumes volumes(dvc);
  volumes.bind_paths(workload.trace.paths());
  return sim::PredictionEvaluator(config).run(workload.trace, volumes, meta);
}

volume::PairCounts pair_counts(const trace::SyntheticWorkload& workload,
                               std::uint64_t min_resource_count,
                               util::Seconds window, std::size_t threads) {
  volume::PairCounterConfig pcc;
  pcc.window = window;
  if (threads != 1) {
    return volume::ParallelPairCounterBuilder(pcc, threads)
        .build(workload.trace, min_resource_count);
  }
  return volume::PairCounterBuilder(pcc).build(workload.trace,
                                               min_resource_count);
}

ProbabilityRun eval_probability_with_counts(
    const trace::SyntheticWorkload& workload,
    const volume::PairCounts& counts,
    const volume::ProbabilityVolumeConfig& pvc,
    const sim::EvalConfig& config, std::size_t threads) {
  const auto set =
      volume::build_probability_volumes(workload.trace, counts, pvc);
  server::TraceMetaOracle meta(workload.trace);
  if (threads != 1) {
    sim::ParallelEvalConfig par;
    par.threads = threads;
    const auto spec =
        sim::shard_probability_volumes(&set, pvc.max_candidates);
    return {sim::ParallelEvaluator(config, par).run(workload.trace, spec,
                                                    meta),
            set.stats()};
  }
  volume::ProbabilityVolumes provider(&set, pvc.max_candidates);
  return {sim::PredictionEvaluator(config).run(workload.trace, provider,
                                               meta),
          set.stats()};
}

ProbabilityRun eval_probability(const trace::SyntheticWorkload& workload,
                                const volume::ProbabilityVolumeConfig& pvc,
                                const sim::EvalConfig& config,
                                std::uint64_t min_resource_count,
                                std::size_t threads) {
  const auto counts =
      pair_counts(workload, min_resource_count, pvc.window, threads);
  return eval_probability_with_counts(workload, counts, pvc, config,
                                      threads);
}

void print_banner(const std::string& title,
                  const std::string& what_to_check) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("shape to check: %s\n\n", what_to_check.c_str());
}

}  // namespace piggyweb::bench

// google-benchmark microbenchmarks for the protocol's hot data structures:
// directory-volume maintenance (the paper claims constant-time ops),
// sampled vs exact pair counting, RPV list maintenance, filter
// application, and the chunked/P-volume codecs.
#include <benchmark/benchmark.h>

#include "core/filter.h"
#include "core/rpv.h"
#include "http/chunked.h"
#include "http/piggy_headers.h"
#include "server/meta.h"
#include "trace/profiles.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"

namespace {

using namespace piggyweb;

const trace::SyntheticWorkload& workload() {
  static const trace::SyntheticWorkload w =
      trace::generate(trace::apache_profile(0.004));
  return w;
}

void BM_DirectoryVolumeOnRequest(benchmark::State& state) {
  volume::DirectoryVolumeConfig config;
  config.level = static_cast<int>(state.range(0));
  config.max_candidates = 50;
  volume::DirectoryVolumes volumes(config);
  volumes.bind_paths(workload().trace.paths());
  const auto& requests = workload().trace.requests();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& req = requests[i];
    core::VolumeRequest vr;
    vr.server = req.server;
    vr.source = req.source;
    vr.path = req.path;
    vr.time = req.time;
    vr.size = req.size;
    benchmark::DoNotOptimize(volumes.on_request(vr));
    i = (i + 1) % requests.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DirectoryVolumeOnRequest)->Arg(0)->Arg(1)->Arg(2);

void BM_PairCounterBuild(benchmark::State& state) {
  volume::PairCounterConfig config;
  config.sample_counters = state.range(0) != 0;
  for (auto _ : state) {
    volume::PairCounterBuilder builder(config);
    benchmark::DoNotOptimize(builder.build(workload().trace, 10));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() *
      static_cast<std::int64_t>(workload().trace.size())));
  state.SetLabel(config.sample_counters ? "sampled" : "exact");
}
BENCHMARK(BM_PairCounterBuild)->Arg(0)->Arg(1);

void BM_ProbabilityVolumeBuild(benchmark::State& state) {
  volume::PairCounterConfig pcc;
  const auto counts =
      volume::PairCounterBuilder(pcc).build(workload().trace, 10);
  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = 0.2;
  pvc.effectiveness_threshold = state.range(0) != 0 ? 0.2 : 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        volume::build_probability_volumes(workload().trace, counts, pvc));
  }
  state.SetLabel(pvc.effectiveness_threshold > 0 ? "thinned" : "base");
}
BENCHMARK(BM_ProbabilityVolumeBuild)->Arg(0)->Arg(1);

void BM_RpvListNoteAndLive(benchmark::State& state) {
  core::RpvConfig config;
  config.timeout = 60;
  config.max_entries = static_cast<std::size_t>(state.range(0));
  core::RpvList list(config);
  util::Seconds now = 0;
  core::VolumeId volume = 0;
  for (auto _ : state) {
    list.note(volume, {now});
    benchmark::DoNotOptimize(list.live({now}));
    ++now;
    volume = (volume + 1) % 64;
  }
}
BENCHMARK(BM_RpvListNoteAndLive)->Arg(4)->Arg(16)->Arg(64);

void BM_ApplyFilter(benchmark::State& state) {
  server::TraceMetaOracle meta(workload().trace);
  core::VolumePrediction prediction;
  prediction.volume = 1;
  for (util::InternId i = 0;
       i < static_cast<util::InternId>(state.range(0)); ++i) {
    prediction.resources.push_back(
        i % static_cast<util::InternId>(workload().trace.paths().size()));
  }
  core::VolumeRequest request;
  request.path = 0;
  core::ProxyFilter filter;
  filter.max_elements = 20;
  filter.min_access_count = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::apply_filter(prediction, request, filter, meta));
  }
}
BENCHMARK(BM_ApplyFilter)->Arg(10)->Arg(50)->Arg(200);

void BM_ChunkedRoundTrip(benchmark::State& state) {
  const std::string body(static_cast<std::size_t>(state.range(0)), 'x');
  http::HeaderMap trailers;
  trailers.add("P-volume", "vid=7; e=\"/a/b.html 875000000 2048\"");
  for (auto _ : state) {
    const auto encoded = http::chunk_encode(body, trailers);
    http::ChunkedDecode decoded;
    benchmark::DoNotOptimize(http::chunk_decode(encoded, decoded));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(body.size())));
}
BENCHMARK(BM_ChunkedRoundTrip)->Arg(512)->Arg(16 * 1024)->Arg(256 * 1024);

void BM_PVolumeSerializeParse(benchmark::State& state) {
  util::InternTable paths;
  core::PiggybackMessage message;
  message.volume = 7;
  for (int i = 0; i < state.range(0); ++i) {
    message.elements.push_back(
        {paths.intern("/products/current/item" + std::to_string(i) +
                      ".html"),
         2048, 875000000});
  }
  for (auto _ : state) {
    const auto wire = http::serialize_pvolume(message, paths);
    util::InternTable scratch;
    benchmark::DoNotOptimize(http::parse_pvolume(wire, scratch));
  }
}
BENCHMARK(BM_PVolumeSerializeParse)->Arg(1)->Arg(6)->Arg(30);

void BM_FilterSerializeParse(benchmark::State& state) {
  core::ProxyFilter filter;
  filter.max_elements = 10;
  for (core::VolumeId v = 0;
       v < static_cast<core::VolumeId>(state.range(0)); ++v) {
    filter.rpv.push_back(v);
  }
  filter.probability_threshold = 0.2;
  for (auto _ : state) {
    const auto wire = http::serialize_filter(filter);
    benchmark::DoNotOptimize(http::parse_filter(wire));
  }
}
BENCHMARK(BM_FilterSerializeParse)->Arg(0)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();

// Table 3: server log characteristics (AIUSA, Marimba, Apache, Sun) —
// requests, clients, requests/source, unique resources — plus Appendix A
// skew and method-mix facts.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"
#include "trace/log_stats.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  bench::Observability observability("table3_server_logs", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Table 3: server log characteristics",
      "Sun is by far the largest (most requests, most resources, highest "
      "requests/source ~60); Marimba is tiny (<100 resources) and "
      "POST-dominated; ~85% of requests hit <10% of resources; ~10% of "
      "clients produce >50% of requests");

  sim::Table table({"Server Log", "Requests", "Clients", "req/source",
                    "Unique Resources", "POST share",
                    "top-10% resource share", "top-10% client share"});
  const std::pair<trace::LogProfile, double> profiles[] = {
      {trace::aiusa_profile(bench::kAiusaScale * scale), 23.64},
      {trace::marimba_profile(bench::kMarimbaScale * scale), 9.23},
      {trace::apache_profile(bench::kApacheScale * scale), 10.73},
      {trace::sun_profile(bench::kSunScale * scale), 59.66},
  };
  for (const auto& [profile, paper_rps] : profiles) {
    const auto workload = trace::generate(profile);
    const auto stats = trace::compute_log_stats(workload.trace);
    table.row({profile.name, sim::Table::count(stats.requests),
               sim::Table::count(stats.distinct_sources),
               sim::Table::num(stats.requests_per_source, 2) + " (paper " +
                   sim::Table::num(paper_rps, 2) + ")",
               sim::Table::count(stats.unique_resources),
               sim::Table::pct(stats.post_fraction),
               sim::Table::pct(stats.top10pct_resource_share),
               sim::Table::pct(stats.top10pct_source_share)});
  }
  table.print(std::cout);
  std::printf(
      "\npaper (unscaled): AIUSA 180k/7.6k/23.6/1102; Marimba "
      "222k/24k/9.2/94; Apache 2.9M/272k/10.7/788; Sun "
      "13.0M/219k/59.7/29436.\n");
  return 0;
}

// §2.3 wire-overhead accounting: replay the Sun log through probability
// volumes (p_t = 0.25, eff 0.2), encode every piggyback the protocol
// would actually send, and reproduce the paper's arithmetic: bytes per
// element (~66 B with ~50 B URLs), bytes per message (~398 B for ~6
// elements), how often the piggyback fits in the response's final packet,
// and the packets saved per avoided TCP connection.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/wire_size.h"
#include "sim/report.h"
#include "util/stats.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  bench::Observability observability("overhead_bytes", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Section 2.3: piggyback wire overhead (Sun, probability volumes)",
      "per-element cost = URL length + 16 B; messages of a handful of "
      "elements stay in the low hundreds of bytes, small against the "
      "paper's 13.9 KB mean / 1.53 KB median response, and usually add "
      "zero packets; each avoided connection saves >= 2 packets");

  const auto workload =
      trace::generate(trace::sun_profile(bench::kSunScale * scale));
  const auto counts = bench::pair_counts(workload);
  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = 0.25;
  pvc.effectiveness_threshold = 0.2;
  const auto set =
      volume::build_probability_volumes(workload.trace, counts, pvc);
  volume::ProbabilityVolumes provider(&set, 200);
  server::TraceMetaOracle meta(workload.trace);

  util::RunningStats url_bytes, message_bytes, element_count;
  util::RunningStats response_sizes;
  std::uint64_t responses = 0, with_piggyback = 0, extra_packets = 0;

  core::ProxyFilter filter;  // protocol defaults
  for (const auto& req : workload.trace.requests()) {
    ++responses;
    if (req.status == 200 && req.size > 0) {
      response_sizes.add(static_cast<double>(req.size));
    }
    core::VolumeRequest vr;
    vr.server = req.server;
    vr.source = req.source;
    vr.path = req.path;
    vr.time = req.time;
    vr.size = req.size;
    const auto prediction = provider.on_request(vr);
    const auto message = core::apply_filter(prediction, vr, filter, meta);
    if (message.empty()) continue;
    ++with_piggyback;
    for (const auto& element : message.elements) {
      url_bytes.add(static_cast<double>(
          workload.trace.paths().str(element.resource).size()));
    }
    const auto cost = core::piggyback_wire_cost(req.size, message,
                                                workload.trace.paths());
    message_bytes.add(static_cast<double>(cost.bytes));
    element_count.add(static_cast<double>(message.elements.size()));
    extra_packets += cost.extra_packets;
  }

  sim::Table table({"quantity", "measured", "paper"});
  table.row({"avg URL bytes", sim::Table::num(url_bytes.mean(), 1),
             "~50"});
  table.row({"avg bytes per element",
             sim::Table::num(url_bytes.mean() + 16.0, 1), "~66"});
  table.row({"avg elements per message",
             sim::Table::num(element_count.mean(), 1), "~6 (Sun)"});
  table.row({"avg bytes per piggyback message",
             sim::Table::num(message_bytes.mean(), 1), "~398"});
  table.row({"responses carrying a piggyback",
             sim::Table::pct(static_cast<double>(with_piggyback) /
                             static_cast<double>(responses)),
             "filtered subset"});
  table.row({"piggybacks adding >= 1 packet",
             sim::Table::pct(with_piggyback
                                 ? static_cast<double>(extra_packets) /
                                       static_cast<double>(with_piggyback)
                                 : 0.0),
             "rare"});
  table.row({"mean response body bytes",
             sim::Table::num(response_sizes.mean(), 0), "13900"});
  table.row({"packets saved per avoided TCP connection",
             sim::Table::count(core::kPacketsPerAvoidedConnection),
             ">= 2"});
  table.print(std::cout);
  std::printf(
      "\n(the synthetic site uses shorter URLs and smaller bodies than "
      "1998 Sun; the per-element arithmetic and fits-in-last-packet "
      "conclusion are the reproduction targets)\n");
  return 0;
}

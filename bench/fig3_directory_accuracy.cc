// Figure 3: accuracy of directory-based volumes for the Sun and AIUSA
// logs.
//   (a) fraction predicted (in the last 5 minutes) vs average piggyback
//       size, traced out by sweeping the access filter;
//   (b) update fraction — predicted within 5 min AND previously requested
//       within the last 2 hours — vs average piggyback size (plus the
//       15-minute-window variant the paper quotes for Sun).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"

using namespace piggyweb;

namespace {

void run_log(const trace::LogProfile& profile, std::size_t threads) {
  const auto workload = trace::generate(profile);
  std::printf("(%s: %zu requests)\n", profile.name.c_str(),
              workload.trace.size());
  sim::Table table({"access filter", "level", "avg piggyback",
                    "fraction predicted", "update fraction (T=5min)",
                    "update fraction (T=15min)"});
  for (const int level : {1, 2}) {
    for (const std::uint32_t filter :
         {1u, 50u, 100u, 250u, 500u, 1000u, 2500u}) {
      sim::EvalConfig config;
      config.filter.min_access_count = filter;
      const auto result =
          bench::eval_directory(workload, level, config, 200, threads);

      sim::EvalConfig config15 = config;
      config15.prediction_window = 900;
      const auto result15 =
          bench::eval_directory(workload, level, config15, 200, threads);

      table.row({sim::Table::count(filter),
                 sim::Table::count(static_cast<std::uint64_t>(level)),
                 sim::Table::num(result.avg_piggyback_size(), 1),
                 sim::Table::pct(result.fraction_predicted()),
                 sim::Table::pct(result.update_fraction()),
                 sim::Table::pct(result15.update_fraction())});
    }
  }
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability observability("fig3_directory_accuracy", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  const std::size_t threads = bench::threads_arg(argc, argv);
  bench::print_banner(
      "Figure 3: accuracy of directory-based volumes (Sun, AIUSA)",
      "(a) fraction predicted rises with piggyback size with diminishing "
      "returns (paper: Sun 1/2-level predict ~60% at ~30 elements, AIUSA "
      "peaks ~80% at smaller sizes); (b) update fraction ~20% for Sun, "
      "5-10% for AIUSA, slightly higher at T=15min");

  run_log(trace::sun_profile(bench::kSunScale * scale), threads);
  run_log(trace::aiusa_profile(bench::kAiusaScale * scale), threads);
  return 0;
}

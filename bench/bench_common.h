// Shared plumbing for the table/figure reproduction binaries: cached
// workload generation, evaluator runners for the two volume families, and
// a --scale command-line knob.
//
// Every binary prints the rows/series of one table or figure from the
// paper. Absolute values differ from 1998 (synthetic logs, scaled sizes);
// the *shape* — orderings, crossovers, knees — is the reproduction target,
// and each binary states what to look for.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "obs/manifest.h"
#include "server/meta.h"
#include "sim/prediction_eval.h"
#include "trace/profiles.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"

namespace piggyweb::bench {

// Generic "--name=value" flag parsers. `flag` is the full prefix
// including the equals sign (e.g. "--scale="); malformed values warn on
// stderr and fall back. The named wrappers below cover the flags shared
// by several binaries.
std::string string_arg(int argc, char** argv, std::string_view flag,
                       std::string fallback = "");
double double_arg(int argc, char** argv, std::string_view flag,
                  double fallback);
std::uint64_t u64_arg(int argc, char** argv, std::string_view flag,
                      std::uint64_t fallback);

// Parse "--scale=<x>" from argv; returns fallback when absent or not
// positive.
double scale_arg(int argc, char** argv, double fallback);

// Parse "--threads=<n>" from argv; returns fallback when absent. 0 means
// hardware concurrency; 1 (the default) runs the serial evaluators.
std::size_t threads_arg(int argc, char** argv, std::size_t fallback = 1);

// Parse "--json=<path>" from argv; empty when absent (no JSON report).
std::string json_arg(int argc, char** argv);

// Per-run observability: parses --metrics-out=FILE / --trace-out=FILE /
// --prom-out=FILE / --flight-recorder=FILE and, when any is present,
// installs the process-global registry/tracer/flight-recorder for the
// binary's lifetime and writes the artifacts on destruction.
// Declared first in main() so it outlives everything instrumented:
//
//   bench::Observability obs("fig3_directory_accuracy", argc, argv);
//
// With neither flag the global sinks stay null and instrumentation costs
// one pointer load per site.
class Observability {
 public:
  Observability(std::string run_name, int argc, char** argv);

  bool enabled() const { return scope_ != nullptr; }

  // Attach an extra top-level manifest section (no-op when disabled).
  void note(std::string key, obs::Json value);

 private:
  std::unique_ptr<obs::RunScope> scope_;
};

// Default bench scales keep each binary within seconds on one core while
// leaving enough traffic for stable statistics.
inline constexpr double kAiusaScale = 0.30;   // ~54 k requests
inline constexpr double kMarimbaScale = 0.25; // ~55 k requests
inline constexpr double kApacheScale = 0.02;  // ~58 k requests
inline constexpr double kSunScale = 0.012;    // ~156 k requests
inline constexpr double kAttScale = 0.06;     // ~66 k requests
inline constexpr double kDigitalScale = 0.012;

// Evaluate directory-based volumes over a workload. threads > 1 (or 0 =
// hardware) runs the parallel sharded engine; results are bit-identical
// to the serial path for any thread count.
sim::EvalResult eval_directory(const trace::SyntheticWorkload& workload,
                               int level, const sim::EvalConfig& config,
                               std::size_t max_candidates = 200,
                               std::size_t threads = 1);

// Build probability volumes (optionally thinned/combined) and evaluate.
struct ProbabilityRun {
  sim::EvalResult result;
  volume::VolumeSetStats volume_stats;
};
ProbabilityRun eval_probability(const trace::SyntheticWorkload& workload,
                                const volume::ProbabilityVolumeConfig& pvc,
                                const sim::EvalConfig& config,
                                std::uint64_t min_resource_count = 10,
                                std::size_t threads = 1);

// Same, but reusing precomputed pair counts (sweeps over p_t re-threshold
// the same counters, like the paper's post-processing).
ProbabilityRun eval_probability_with_counts(
    const trace::SyntheticWorkload& workload,
    const volume::PairCounts& counts,
    const volume::ProbabilityVolumeConfig& pvc,
    const sim::EvalConfig& config, std::size_t threads = 1);

// Pair counts for a workload (exact counters, window T = 300 s).
volume::PairCounts pair_counts(const trace::SyntheticWorkload& workload,
                               std::uint64_t min_resource_count = 10,
                               util::Seconds window = 300,
                               std::size_t threads = 1);

// Header banner shared by all binaries.
void print_banner(const std::string& title, const std::string& what_to_check);

}  // namespace piggyweb::bench

// Figure 1: spacing of requests within directory-based volumes for the
// AT&T proxy trace.
//   (a) per directory level: % of requests whose prefix was seen before,
//       and the median interarrival time within a prefix;
//   (b) cumulative distribution of those interarrival times.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/locality.h"
#include "sim/report.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  bench::Observability observability("fig1_directory_locality", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Figure 1: directory-prefix locality (AT&T-like client trace)",
      "(a) seen-before fraction falls with level (paper: 98.5% -> 61.6%) "
      "while median interarrival rises steeply (0.9 s -> ~1800 s); (b) a "
      "large share of within-volume interarrivals is under ~50 s at levels "
      "1-2; removing embedded images raises medians 10-20% but preserves "
      "the distribution shape");

  const auto workload =
      trace::generate(trace::att_client_profile(bench::kAttScale * scale));
  std::printf("trace: %zu requests, %zu servers, %zu resources\n\n",
              workload.trace.size(), workload.trace.servers().size(),
              workload.trace.paths().size());

  // --- (a) prefix statistics ------------------------------------------------
  sim::Table level_table({"Directory Level", "% Seen Before",
                          "Median Interarrival", "Median (no images)"});
  sim::LocalityOptions with_images;
  sim::LocalityOptions no_images;
  no_images.exclude_images = true;
  std::vector<sim::LocalityLevelResult> levels;
  for (int level = 0; level <= 4; ++level) {
    const auto result =
        sim::directory_locality(workload.trace, level, with_images);
    const auto filtered =
        sim::directory_locality(workload.trace, level, no_images);
    levels.push_back(result);
    level_table.row({sim::Table::count(static_cast<std::uint64_t>(level)),
                     sim::Table::pct(result.seen_before_fraction),
                     sim::Table::num(result.median_interarrival, 1) + " sec",
                     sim::Table::num(filtered.median_interarrival, 1) +
                         " sec"});
  }
  level_table.print(std::cout);

  // --- (b) interarrival CDF ---------------------------------------------------
  std::printf("\ninterarrival CDF within level-k volumes:\n");
  sim::Table cdf_table({"t (sec)", "level 0", "level 1", "level 2",
                        "level 3", "level 4"});
  for (std::size_t p = 0; p < levels[0].cdf_points.size(); ++p) {
    std::vector<std::string> row;
    row.push_back(sim::Table::num(levels[0].cdf_points[p], 0));
    for (const auto& level : levels) {
      row.push_back(p < level.cdf_values.size()
                        ? sim::Table::pct(level.cdf_values[p])
                        : "-");
    }
    cdf_table.row(std::move(row));
  }
  cdf_table.print(std::cout);
  std::printf(
      "\npaper: >55%% of accesses within 50 s of another request in the "
      "same 2-level volume; >82%% follow one within two hours.\n");
  return 0;
}

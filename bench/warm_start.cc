// Warm-start benchmark: what a durable snapshot buys at restart.
//
// A proxy cache restarted cold re-learns its working set from scratch —
// the hit rate climbs from zero toward Che's steady-state prediction over
// tens of thousands of requests. A cache restored from a snapshot starts
// *at* steady state. This binary measures both recovery curves over the
// same seeded Zipf stream, plus the snapshot costs (bytes, serialize /
// restore wall time), and emits the committed artifact:
//
//   warm_start [--json=BENCH_warm_start.json] [--quick]
//              [--metrics-out=FILE]
//
// What to look for: the restored curve is flat at the steady-state hit
// ratio from the first window, the cold curve approaches it from below,
// and both converge — the asymptote is a property of the stream, the
// head start is the snapshot's value.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "persist/codec.h"
#include "persist/state_access.h"
#include "proxy/cache.h"
#include "sim/steady_state.h"
#include "util/rng.h"

using namespace piggyweb;

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

bool flag_present(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

struct CurvePoint {
  std::size_t window_end = 0;  // requests into the measurement stream
  double cold = 0;             // windowed hit rate, cold start
  double restored = 0;         // windowed hit rate, snapshot restore
};

proxy::CacheConfig cache_config(std::uint64_t capacity) {
  proxy::CacheConfig config;
  config.capacity_bytes = capacity;  // unit-size objects: capacity in objects
  config.freshness_interval = std::int64_t{1} << 40;
  config.policy = proxy::ReplacementPolicy::kLru;
  return config;
}

// One lookup/insert step of the IRM stream; returns true on a hit.
bool step(proxy::ProxyCache& cache, std::uint64_t rank, std::int64_t tick) {
  const proxy::CacheKey key{1, static_cast<util::InternId>(rank)};
  const util::TimePoint now{tick};
  if (cache.lookup(key, now) == proxy::LookupOutcome::kMiss) {
    cache.insert(key, 1, /*last_modified=*/0, now);
    return false;
  }
  return true;
}

struct ScenarioResult {
  std::size_t catalog = 0;
  double skew = 0;
  std::uint64_t capacity = 0;
  double steady_state_prediction = 0;
  std::uint64_t snapshot_bytes = 0;
  double serialize_seconds = 0;
  double restore_seconds = 0;
  double cold_first_window = 0;
  double restored_first_window = 0;
  std::vector<CurvePoint> curve;
};

ScenarioResult run_scenario(std::size_t catalog, double skew,
                            std::uint64_t capacity, std::size_t warmup,
                            std::size_t measured, std::size_t window) {
  ScenarioResult result;
  result.catalog = catalog;
  result.skew = skew;
  result.capacity = capacity;
  result.steady_state_prediction = sim::zipf_lru_hit_ratio(
      catalog, skew, static_cast<double>(capacity));

  const util::ZipfSampler zipf(catalog, skew);

  // Reach steady state, snapshot, and restore into a fresh cache — the
  // "process restarted with durable state" path.
  proxy::ProxyCache steady(cache_config(capacity));
  util::Rng warm_rng(0x77a2 + capacity);
  for (std::size_t i = 0; i < warmup; ++i) {
    step(steady, zipf(warm_rng), static_cast<std::int64_t>(i));
  }

  auto start = now_seconds();
  persist::ByteWriter writer;
  persist::StateAccess::serialize_proxy_cache(steady, writer);
  const auto bytes = writer.take();
  result.serialize_seconds = now_seconds() - start;
  result.snapshot_bytes = bytes.size();

  proxy::ProxyCache restored(cache_config(capacity));
  start = now_seconds();
  persist::ByteReader reader(bytes);
  std::string error;
  if (!persist::StateAccess::deserialize_proxy_cache(reader, restored,
                                                     error)) {
    std::fprintf(stderr, "restore failed: %s\n", error.c_str());
    return result;
  }
  result.restore_seconds = now_seconds() - start;

  // Race a cold cache against the restored one over the same stream.
  proxy::ProxyCache cold(cache_config(capacity));
  util::Rng measure_rng(0x5eed + capacity);
  std::uint64_t cold_hits = 0;
  std::uint64_t restored_hits = 0;
  for (std::size_t i = 0; i < measured; ++i) {
    const auto rank = zipf(measure_rng);
    const auto tick = static_cast<std::int64_t>(warmup + i);
    if (step(cold, rank, tick)) ++cold_hits;
    if (step(restored, rank, tick)) ++restored_hits;
    if ((i + 1) % window == 0) {
      CurvePoint point;
      point.window_end = i + 1;
      point.cold = static_cast<double>(cold_hits) /
                   static_cast<double>(window);
      point.restored = static_cast<double>(restored_hits) /
                       static_cast<double>(window);
      result.curve.push_back(point);
      cold_hits = 0;
      restored_hits = 0;
    }
  }
  if (!result.curve.empty()) {
    result.cold_first_window = result.curve.front().cold;
    result.restored_first_window = result.curve.front().restored;
  }
  return result;
}

obs::Json scenario_json(const ScenarioResult& r) {
  auto json = obs::Json::object();
  json.set("catalog", static_cast<std::uint64_t>(r.catalog));
  json.set("zipf_skew", r.skew);
  json.set("capacity_objects", r.capacity);
  json.set("steady_state_prediction", r.steady_state_prediction);
  json.set("snapshot_bytes", r.snapshot_bytes);
  json.set("serialize_seconds", r.serialize_seconds);
  json.set("restore_seconds", r.restore_seconds);
  json.set("cold_first_window_hit_rate", r.cold_first_window);
  json.set("restored_first_window_hit_rate", r.restored_first_window);
  auto curve = obs::Json::array();
  for (const auto& point : r.curve) {
    auto row = obs::Json::object();
    row.set("window_end", static_cast<std::uint64_t>(point.window_end));
    row.set("cold", point.cold);
    row.set("restored", point.restored);
    curve.push_back(row);
  }
  json.set("curve", curve);
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability obs("warm_start", argc, argv);
  const auto json_path = bench::string_arg(argc, argv, "--json=");
  const bool quick = flag_present(argc, argv, "--quick");

  const std::size_t warmup = quick ? 20'000 : 200'000;
  const std::size_t measured = quick ? 20'000 : 100'000;
  const std::size_t window = quick ? 2'000 : 5'000;

  struct Shape {
    std::size_t catalog;
    double skew;
    std::uint64_t capacity;
  };
  const std::vector<Shape> shapes = {
      {20'000, 0.8, 500},
      {20'000, 0.8, 2'000},
      {20'000, 1.0, 2'000},
  };

  auto report = obs::Json::object();
  report.set("benchmark", "warm_start");
  report.set("quick", quick);
  report.set("warmup_requests", static_cast<std::uint64_t>(warmup));
  report.set("measured_requests", static_cast<std::uint64_t>(measured));
  report.set("window_requests", static_cast<std::uint64_t>(window));
  auto scenarios = obs::Json::array();

  std::printf(
      "warm-start recovery: windowed hit rate, cold vs snapshot-restored\n"
      "(prediction = Che steady state; restored should start there,\n"
      " cold should climb toward it)\n\n");
  for (const auto& shape : shapes) {
    const auto result = run_scenario(shape.catalog, shape.skew,
                                     shape.capacity, warmup, measured,
                                     window);
    scenarios.push_back(scenario_json(result));
    std::printf(
        "catalog=%zu skew=%.1f capacity=%llu  predicted=%.3f  "
        "first window: cold=%.3f restored=%.3f  snapshot=%llu bytes "
        "(ser %.1f ms, restore %.1f ms)\n",
        result.catalog, result.skew,
        static_cast<unsigned long long>(result.capacity),
        result.steady_state_prediction, result.cold_first_window,
        result.restored_first_window,
        static_cast<unsigned long long>(result.snapshot_bytes),
        result.serialize_seconds * 1e3, result.restore_seconds * 1e3);
  }
  report.set("scenarios", scenarios);

  if (obs.enabled()) obs.note("warm_start", report);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << report.dump(2) << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

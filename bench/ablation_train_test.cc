// Ablation: in-sample vs out-of-sample volumes.
//
// The paper builds one set of probability volumes per log and evaluates
// on the *same* log ("we applied a single set of volumes for the duration
// of each log") — an in-sample evaluation. This ablation quantifies the
// optimism: train volumes on the first half of the trace, evaluate on the
// second half, and compare against same-half training. Small gaps mean
// co-access structure is stable over time and the paper's periodic
// (daily/weekly) volume recomputation is sound.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"
#include "trace/transform.h"

using namespace piggyweb;

namespace {

sim::EvalResult evaluate_with(const trace::Trace& training,
                              const trace::Trace& evaluation,
                              double pt, double eff) {
  volume::PairCounterConfig pcc;
  const auto counts = volume::PairCounterBuilder(pcc).build(training, 10);
  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = pt;
  pvc.effectiveness_threshold = eff;
  const auto set =
      volume::build_probability_volumes(training, counts, pvc);
  volume::ProbabilityVolumes provider(&set, 200);
  server::TraceMetaOracle meta(evaluation);
  sim::EvalConfig config;
  return sim::PredictionEvaluator(config).run(evaluation, provider, meta);
}

void run_log(const trace::LogProfile& profile, double pt, double eff) {
  const auto workload = trace::generate(profile);
  const auto [train, test] =
      trace::split_at_fraction(workload.trace, 0.5);
  std::printf("(%s: %zu train + %zu test requests; p_t=%.2f eff=%.2f)\n",
              profile.name.c_str(), train.size(), test.size(), pt, eff);

  sim::Table table({"volumes trained on", "recall", "precision",
                    "avg piggyback"});
  const auto in_sample = evaluate_with(test, test, pt, eff);
  table.row({"test half (in-sample, paper's method)",
             sim::Table::pct(in_sample.fraction_predicted()),
             sim::Table::pct(in_sample.true_prediction_fraction()),
             sim::Table::num(in_sample.avg_piggyback_size(), 1)});
  const auto out_of_sample = evaluate_with(train, test, pt, eff);
  table.row({"train half (out-of-sample)",
             sim::Table::pct(out_of_sample.fraction_predicted()),
             sim::Table::pct(out_of_sample.true_prediction_fraction()),
             sim::Table::num(out_of_sample.avg_piggyback_size(), 1)});
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability observability("ablation_train_test", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Ablation: in-sample vs out-of-sample probability volumes",
      "out-of-sample recall/precision land close to in-sample (co-access "
      "structure is stable week to week), validating the paper's "
      "same-log evaluation and its periodic-recomputation deployment "
      "story; any gap is the generalization cost");

  run_log(trace::apache_profile(bench::kApacheScale * scale), 0.2, 0.2);
  run_log(trace::sun_profile(bench::kSunScale * scale), 0.2, 0.2);
  return 0;
}

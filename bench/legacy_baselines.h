// LEGACY BASELINES — BENCH-ONLY. Nothing in src/ or tools/ may include
// this header. These are deliberately retired implementations, kept solely
// so the benches can measure the shipped fast paths against the code they
// replaced. Do not "fix" or modernize them: their value is that they stay
// exactly as slow as the code they preserve.
#pragma once

#include <istream>
#include <string>

#include "trace/clf.h"
#include "util/strings.h"

namespace piggyweb::bench_legacy {

// The pre-flat-tables CLF loader shape: per-line ClfEntry with freshly
// allocated host/path strings, and no reserve on the trace. Baseline for
// the CLF fast path (and, transitively, for the binary-container loader).
inline trace::ClfLoadResult legacy_load_clf(
    std::istream& in, trace::Trace& trace,
    const trace::ClfLoadOptions& options) {
  trace::ClfLoadResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (util::trim(line).empty()) continue;
    const auto entry = trace::parse_clf_line(line);
    if (!entry) {
      ++result.skipped_malformed;
      continue;
    }
    if (options.drop_uncachable && trace::is_uncachable_url(entry->path)) {
      ++result.skipped_filtered;
      continue;
    }
    trace.add(entry->time, entry->host, options.server_name, entry->path,
              entry->method, entry->status, entry->size);
    ++result.parsed;
  }
  return result;
}

}  // namespace piggyweb::bench_legacy

// Figure 6: fraction predicted vs average piggyback size for
// probability-based volumes — (a) AIUSA, (b) Sun. Each point comes from
// one probability threshold; the thinned (effective-implications) curve
// reaches the same recall at visibly smaller piggyback sizes, most
// dramatically for Sun.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"

using namespace piggyweb;

namespace {

void run_log(const trace::LogProfile& profile) {
  const auto workload = trace::generate(profile);
  std::printf("(%s: %zu requests)\n", profile.name.c_str(),
              workload.trace.size());
  const auto counts = bench::pair_counts(workload);

  sim::Table table({"p_t", "base avg size", "base predicted",
                    "thinned avg size", "thinned predicted"});
  for (const double pt :
       {0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}) {
    volume::ProbabilityVolumeConfig base;
    base.probability_threshold = pt;
    const auto base_run =
        bench::eval_probability_with_counts(workload, counts, base, {});

    volume::ProbabilityVolumeConfig thinned = base;
    thinned.effectiveness_threshold = 0.2;
    const auto thin_run =
        bench::eval_probability_with_counts(workload, counts, thinned, {});

    table.row({sim::Table::num(pt, 2),
               sim::Table::num(base_run.result.avg_piggyback_size(), 1),
               sim::Table::pct(base_run.result.fraction_predicted()),
               sim::Table::num(thin_run.result.avg_piggyback_size(), 1),
               sim::Table::pct(thin_run.result.fraction_predicted())});
  }
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability observability("fig6_predicted_vs_size", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Figure 6: fraction predicted vs avg piggyback size (probability)",
      "prediction rate grows with piggyback size with diminishing "
      "returns; at any recall the thinned curve needs fewer elements; "
      "compared with Figure 3 the same recall costs far smaller "
      "piggybacks than directory volumes");

  run_log(trace::aiusa_profile(bench::kAiusaScale * scale));
  run_log(trace::sun_profile(bench::kSunScale * scale));
  return 0;
}

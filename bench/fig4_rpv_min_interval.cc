// Figure 4: enforcing a minimum time between piggybacks for the Apache
// log. RPV lists suppress repeat piggybacks of the same volume for a
// window; the paper shows (a) piggyback traffic collapsing as the minimum
// interval grows, while (b) the fraction predicted barely moves, with a
// 30-second interval already capturing most of the savings.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  bench::Observability observability("fig4_rpv_min_interval", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Figure 4: RPV minimum time between piggybacks (Apache)",
      "(a) piggyback elements per request drop steeply with the minimum "
      "interval — most of the drop arrives by ~30 s; (b) fraction "
      "predicted is nearly flat across the sweep; both hold for levels "
      "0 and 1 and both access filters (scaled to this trace's intensity)");

  const auto workload =
      trace::generate(trace::apache_profile(bench::kApacheScale * scale));
  std::printf("(apache: %zu requests)\n", workload.trace.size());

  sim::Table table({"min interval (s)", "level", "filter",
                    "elements/request", "avg msg size",
                    "fraction predicted"});
  for (const int level : {0, 1}) {
    for (const std::uint32_t filter : {100u, 1000u}) {
      for (const util::Seconds interval : {0, 10, 30, 60, 120, 300}) {
        sim::EvalConfig config;
        config.filter.min_access_count = filter;
        config.use_rpv = interval > 0;
        config.rpv.timeout = interval;
        const auto result = bench::eval_directory(workload, level, config);
        table.row({sim::Table::count(static_cast<std::uint64_t>(interval)),
                   sim::Table::count(static_cast<std::uint64_t>(level)),
                   sim::Table::count(filter),
                   sim::Table::num(result.elements_per_request(), 2),
                   sim::Table::num(result.avg_piggyback_size(), 1),
                   sim::Table::pct(result.fraction_predicted())});
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\npaper: the RPV list is extremely effective at cutting piggyback "
      "traffic with no significant recall loss; 30 s achieves most of the "
      "reduction.\n");
  return 0;
}

// Figure 8: precision vs recall for probability volumes thinned with an
// effective-probability threshold of 0.2 (the setting the paper found
// consistently best for a given piggyback size), traced by sweeping p_t,
// for all server logs. Directory volumes are shown for contrast — the
// paper notes they generate 70-90% false predictions even with filtering.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  bench::Observability observability("fig8_precision_recall", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Figure 8: precision vs recall (effective threshold 0.2)",
      "as p_t loosens, recall rises while precision falls, tracing a "
      "frontier; Marimba sits far below the other logs; directory "
      "volumes land at markedly lower precision for comparable recall");

  const trace::LogProfile profiles[] = {
      trace::aiusa_profile(bench::kAiusaScale * scale),
      trace::marimba_profile(bench::kMarimbaScale * scale),
      trace::apache_profile(bench::kApacheScale * scale),
      trace::sun_profile(bench::kSunScale * scale),
  };
  for (const auto& profile : profiles) {
    const auto workload = trace::generate(profile);
    std::printf("(%s: %zu requests)\n", profile.name.c_str(),
                workload.trace.size());
    const auto counts = bench::pair_counts(workload);

    sim::Table table({"p_t", "recall", "precision", "avg size"});
    for (const double pt : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7}) {
      volume::ProbabilityVolumeConfig pvc;
      pvc.probability_threshold = pt;
      pvc.effectiveness_threshold = 0.2;
      const auto run =
          bench::eval_probability_with_counts(workload, counts, pvc, {});
      table.row({sim::Table::num(pt, 2),
                 sim::Table::pct(run.result.fraction_predicted()),
                 sim::Table::pct(run.result.true_prediction_fraction()),
                 sim::Table::num(run.result.avg_piggyback_size(), 1)});
    }
    // Directory-volume contrast point (1-level, access filter 10).
    sim::EvalConfig dir_config;
    dir_config.filter.min_access_count = 10;
    const auto dir = bench::eval_directory(workload, 1, dir_config);
    table.row({"dir-1", sim::Table::pct(dir.fraction_predicted()),
               sim::Table::pct(dir.true_prediction_fraction()),
               sim::Table::num(dir.avg_piggyback_size(), 1)});
    table.print(std::cout);
    std::printf("\n");
  }
  return 0;
}

// Table 2: client log characteristics (Digital, AT&T) — requests, distinct
// servers, unique resources — plus the Appendix A skew facts.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"
#include "trace/log_stats.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  bench::Observability observability("table2_client_logs", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Table 2: client log characteristics",
      "Digital is several times larger than AT&T in requests, servers and "
      "resources; both have heavy server skew (a few percent of servers "
      "hold half the accesses) and 15-25% Not Modified responses");

  sim::Table table({"Client Log", "Requests", "Distinct Servers",
                    "Unique Resources", "req/source", "304 share",
                    "mean size", "median size", "servers for 1/2 accesses"});
  for (auto profile :
       {trace::digital_client_profile(bench::kDigitalScale * scale),
        trace::att_client_profile(bench::kAttScale * scale)}) {
    const auto workload = trace::generate(profile);
    const auto stats = trace::compute_log_stats(workload.trace);
    table.row({profile.name, sim::Table::count(stats.requests),
               sim::Table::count(stats.distinct_servers),
               sim::Table::count(stats.unique_resources),
               sim::Table::num(stats.requests_per_source, 1),
               sim::Table::pct(stats.not_modified_fraction),
               sim::Table::num(stats.mean_response_size, 0),
               sim::Table::num(stats.median_response_size, 0),
               sim::Table::pct(stats.servers_for_half_accesses)});
  }
  table.print(std::cout);
  std::printf(
      "\npaper (unscaled): Digital 6.41M req / 57,832 servers / 2.08M "
      "resources; AT&T 1.11M req / 18,005 servers / 521k resources;\n"
      "Not Modified 18.7%% (Digital) and 15.8%% (AT&T). Synthetic logs are "
      "scaled by --scale (relative shape is the target).\n");
  return 0;
}

// Figure 5 (Sun log):
//   (a) fraction predicted vs probability threshold p_t for the base
//       probability volumes, effectiveness-thinned variants (0.1, 0.2),
//       and "combined" volumes (pairs restricted to a shared 1-level
//       prefix);
//   (b) the distribution of implication probabilities across counted
//       pairs.
// Also prints the §3.3.2 structural statistics (self/symmetric fractions).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  bench::Observability observability("fig5_probability_threshold", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  const std::size_t threads = bench::threads_arg(argc, argv);
  bench::print_banner(
      "Figure 5: fraction predicted vs probability threshold (Sun)",
      "(a) all four curves fall as p_t rises; thinning (eff 0.1/0.2) "
      "tracks the base curve closely; combined volumes sit lowest; (b) "
      "implication probabilities spread across the whole range with mass "
      "at high values (embedded images / popular HREFs)");

  const auto workload =
      trace::generate(trace::sun_profile(bench::kSunScale * scale));
  std::printf("(sun: %zu requests)\n", workload.trace.size());
  const auto counts = bench::pair_counts(workload, 10, 300, threads);
  std::printf("pair counters: %zu\n\n", counts.counter_count());

  struct Variant {
    const char* name;
    double eff;
    int combine;
  };
  const Variant variants[] = {{"base", 0.0, 0},
                              {"eff 0.1", 0.1, 0},
                              {"eff 0.2", 0.2, 0},
                              {"combined (1-level)", 0.0, 1}};

  sim::Table table({"p_t", "base", "eff 0.1", "eff 0.2",
                    "combined (1-level)"});
  for (const double pt : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    std::vector<std::string> row = {sim::Table::num(pt, 2)};
    for (const auto& variant : variants) {
      volume::ProbabilityVolumeConfig pvc;
      pvc.probability_threshold = pt;
      pvc.effectiveness_threshold = variant.eff;
      pvc.combine_prefix_level = variant.combine;
      sim::EvalConfig config;
      const auto run = bench::eval_probability_with_counts(
          workload, counts, pvc, config, threads);
      row.push_back(sim::Table::pct(run.result.fraction_predicted()));
    }
    table.row(std::move(row));
  }
  table.print(std::cout);

  // --- (b) implication probability distribution ----------------------------
  auto probs = counts.all_probabilities();
  std::sort(probs.begin(), probs.end());
  std::printf("\nimplication probability CDF over %zu counted pairs:\n",
              probs.size());
  sim::Table cdf({"p", "fraction of pairs with p(s|r) <= p"});
  for (const double p : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const auto below = std::upper_bound(probs.begin(), probs.end(), p);
    cdf.row({sim::Table::num(p, 2),
             sim::Table::pct(static_cast<double>(below - probs.begin()) /
                             static_cast<double>(probs.size()))});
  }
  cdf.print(std::cout);

  // --- §3.3.2 structural stats -----------------------------------------------
  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = 0.2;
  const auto run = bench::eval_probability_with_counts(workload, counts,
                                                       pvc, {}, threads);
  std::printf(
      "\nvolume structure at p_t=0.2: %zu volumes, avg size %.1f, "
      "self-membership %.1f%% (paper ~1%%), symmetric entries %.1f%% "
      "(paper 3-18%%), avg volumes/resource %.2f\n",
      run.volume_stats.volumes, run.volume_stats.avg_volume_size,
      run.volume_stats.self_fraction * 100.0,
      run.volume_stats.symmetric_fraction * 100.0,
      run.volume_stats.avg_volumes_per_resource);
  return 0;
}

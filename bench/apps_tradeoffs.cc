// §4 application trade-offs via the end-to-end simulator (clients behind
// one proxy, volume center on the path, simulated origins):
//   * cache coherency — a-priori refreshes/invalidations, validations
//     avoided, staleness;
//   * prefetching — useful vs futile fetches and the bandwidth increase
//     (paper: e.g. Apache 40% prefetched at 20% futile / +10% bandwidth);
//   * cache replacement — LRU vs SIZE vs GD-Size vs piggyback-aware LRU
//     vs hint-aware GreedyDual (server-assisted, [24]);
//   * adaptive freshness interval — validations vs staleness balance;
//   * informed fetching — the proxy's real upstream fetch log replayed
//     shortest-first vs FIFO (examples/informed_fetch_demo covers the
//     synthetic-queue version).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/end_to_end.h"
#include "sim/report.h"

using namespace piggyweb;

namespace {

sim::EndToEndConfig base_config() {
  sim::EndToEndConfig config;
  config.cache.capacity_bytes = 24ULL * 1024 * 1024;
  config.cache.freshness_interval = 2 * util::kHour;
  config.base_filter.max_elements = 20;
  config.volumes.level = 1;
  config.rpv.timeout = 60;
  return config;
}

void coherency_section(const trace::SyntheticWorkload& workload) {
  std::printf("--- cache coherency ---\n");
  auto off = base_config();
  off.piggybacking = false;
  const auto baseline = sim::EndToEndSimulator(workload, off).run();

  auto on = base_config();
  on.enable_coherency = true;
  const auto piggy = sim::EndToEndSimulator(workload, on).run();

  sim::Table table({"metric", "no piggybacking", "piggyback coherency"});
  table.row({"fresh hit rate", sim::Table::pct(baseline.cache.fresh_hit_rate()),
             sim::Table::pct(piggy.cache.fresh_hit_rate())});
  table.row({"If-Modified-Since validations",
             sim::Table::count(baseline.validations),
             sim::Table::count(piggy.validations)});
  table.row({"stale serves / fresh hits",
             sim::Table::pct(baseline.stale_rate(), 2),
             sim::Table::pct(piggy.stale_rate(), 2)});
  table.row({"a-priori refreshes", "0",
             sim::Table::count(piggy.coherency.refreshed)});
  table.row({"a-priori invalidations", "0",
             sim::Table::count(piggy.coherency.invalidated)});
  table.row({"mean user latency (s)",
             sim::Table::num(baseline.mean_user_latency(), 3),
             sim::Table::num(piggy.mean_user_latency(), 3)});
  table.print(std::cout);
  std::printf("\n");
}

void prefetch_section(const trace::SyntheticWorkload& workload,
                      const volume::ProbabilityVolumeSet& volumes) {
  std::printf("--- prefetching from thinned probability volumes ---\n");
  // Prefetching needs accurate predictions (§4): all rows (including the
  // off-baseline) use the paper's best volumes, probability-based with
  // effectiveness thinning, so the only varying factor is prefetching.
  auto off = base_config();
  off.probability_volumes = &volumes;
  const auto baseline = sim::EndToEndSimulator(workload, off).run();
  sim::Table table({"size ceiling", "prefetches", "futile %",
                    "bandwidth increase", "fresh hit rate"});
  table.row({"off", "0", "-", "-",
             sim::Table::pct(baseline.cache.fresh_hit_rate())});
  for (const std::uint64_t ceiling :
       {16ULL * 1024, 128ULL * 1024, 1024ULL * 1024}) {
    auto config = off;
    config.enable_prefetch = true;
    config.prefetch.max_resource_bytes = ceiling;
    const auto result = sim::EndToEndSimulator(workload, config).run();
    const double bw_increase =
        baseline.body_bytes == 0
            ? 0.0
            : static_cast<double>(result.body_bytes) /
                      static_cast<double>(baseline.body_bytes) -
                  1.0;
    table.row({sim::Table::count(ceiling / 1024) + " KB",
               sim::Table::count(result.prefetch.issued),
               sim::Table::pct(result.prefetch.futile_fraction()),
               sim::Table::pct(bw_increase),
               sim::Table::pct(result.cache.fresh_hit_rate())});
  }
  table.print(std::cout);
  std::printf(
      "(paper: Apache 40%% prefetched at 20%% futile = +10%% bandwidth; "
      "Sun 30%% at 15%% futile = +5%%)\n\n");
}

void replacement_section(const trace::SyntheticWorkload& workload,
                         const volume::ProbabilityVolumeSet& volumes) {
  std::printf("--- cache replacement under pressure ---\n");
  sim::Table table({"policy", "hit rate", "fresh hit rate", "evictions"});
  for (const auto policy :
       {proxy::ReplacementPolicy::kLru, proxy::ReplacementPolicy::kSize,
        proxy::ReplacementPolicy::kGdSize,
        proxy::ReplacementPolicy::kLruPiggyback,
        proxy::ReplacementPolicy::kGdSizeHint}) {
    auto config = base_config();
    config.cache.capacity_bytes = 512 * 1024;  // force pressure
    config.cache.policy = policy;
    config.probability_volumes = &volumes;  // accurate piggyback hints
    const auto result = sim::EndToEndSimulator(workload, config).run();
    table.row({proxy::policy_name(policy),
               sim::Table::pct(result.cache.hit_rate()),
               sim::Table::pct(result.cache.fresh_hit_rate()),
               sim::Table::count(result.cache.evictions)});
  }
  table.print(std::cout);
  std::printf("\n");
}

void adaptive_ttl_section(const trace::SyntheticWorkload& workload) {
  std::printf("--- adaptive freshness interval ---\n");
  sim::Table table({"mode", "validations", "304 share of validations",
                    "stale serves"});
  for (const bool adaptive : {false, true}) {
    auto config = base_config();
    config.enable_adaptive_ttl = adaptive;
    const auto result = sim::EndToEndSimulator(workload, config).run();
    table.row({adaptive ? "adaptive delta" : "fixed delta",
               sim::Table::count(result.validations),
               sim::Table::pct(result.validations
                                   ? static_cast<double>(
                                         result.validations_not_modified) /
                                         static_cast<double>(
                                             result.validations)
                                   : 0.0),
               sim::Table::count(result.stale_served)});
  }
  table.print(std::cout);
  std::printf("\n");
}

void informed_fetch_section(const trace::SyntheticWorkload& workload) {
  std::printf("--- informed fetching (upstream fetch log replay) ---\n");
  // The piggybacked size attributes let the proxy reorder its fetch
  // queue; the engine logs every upstream fetch and replays the log under
  // both disciplines over the same bottleneck link (§4).
  auto config = base_config();
  config.enable_informed_fetch = true;
  const auto result = sim::EndToEndSimulator(workload, config).run();
  if (!result.informed_fetch || !result.informed_fetch_fifo) {
    std::printf("(no upstream fetches logged)\n\n");
    return;
  }
  sim::Table table({"discipline", "mean wait (s)", "mean completion (s)",
                    "max completion (s)"});
  const auto& fifo = *result.informed_fetch_fifo;
  const auto& informed = *result.informed_fetch;
  table.row({"fifo (uninformed)", sim::Table::num(fifo.mean_wait, 4),
             sim::Table::num(fifo.mean_completion, 4),
             sim::Table::num(fifo.max_completion, 4)});
  table.row({"shortest-first (informed)",
             sim::Table::num(informed.mean_wait, 4),
             sim::Table::num(informed.mean_completion, 4),
             sim::Table::num(informed.max_completion, 4)});
  table.print(std::cout);
  std::printf("(%llu fetches replayed)\n\n",
              static_cast<unsigned long long>(
                  informed.completion_by_id.size()));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability observability("apps_tradeoffs", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Section 4: proxy application trade-offs (end-to-end simulation)",
      "piggyback coherency lifts fresh hits and cuts validations without "
      "raising the stale rate; prefetching trades bandwidth for hit rate "
      "with rising futility at larger budgets; piggyback-aware "
      "replacement is competitive with LRU under pressure; adaptive "
      "deltas rebalance validations vs staleness");

  const auto workload =
      trace::generate(trace::apache_profile(bench::kApacheScale * scale));
  std::printf("workload: apache-like, %zu requests\n\n",
              workload.trace.size());

  // Offline-trained, effectiveness-thinned probability volumes — the
  // paper's most accurate configuration, used where prediction precision
  // matters (prefetching, replacement hints).
  const auto counts = bench::pair_counts(workload);
  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = 0.2;
  pvc.effectiveness_threshold = 0.2;
  const auto volumes =
      volume::build_probability_volumes(workload.trace, counts, pvc);

  coherency_section(workload);
  prefetch_section(workload, volumes);
  replacement_section(workload, volumes);
  adaptive_ttl_section(workload);
  informed_fetch_section(workload);
  return 0;
}

// Ablation: sampled vs exact pair counters (§3.3.1).
//
// The paper bounds counter memory by creating c(s|r) only with probability
// ~ k / (freq(r) * p_t). This bench quantifies the trade: counter-table
// size and the recall/precision of the resulting p_t = 0.2 volumes, for
// exact counting, several sampling strengths, and the directory-restricted
// variant ("limiting the calculation ... to pairs of resources that have
// the same directory prefix").
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/report.h"

using namespace piggyweb;

int main(int argc, char** argv) {
  bench::Observability observability("ablation_counters", argc, argv);
  const double scale = bench::scale_arg(argc, argv, 1.0);
  bench::print_banner(
      "Ablation: sampled vs exact pair counters (Sun)",
      "sampling shrinks the counter table with little recall/precision "
      "loss while strong pairs keep accurate estimates; the directory "
      "restriction cuts counters hardest but loses cross-directory "
      "implications (lower recall)");

  const auto workload =
      trace::generate(trace::sun_profile(bench::kSunScale * scale));
  std::printf("(sun: %zu requests)\n", workload.trace.size());

  struct Variant {
    const char* name;
    bool sampled;
    double k;
    int restrict_level;
  };
  const Variant variants[] = {
      {"exact", false, 0, 0},
      {"sampled k=8", true, 8.0, 0},
      {"sampled k=4", true, 4.0, 0},
      {"sampled k=1", true, 1.0, 0},
      {"exact, same 1-level dir", false, 0, 1},
  };

  sim::Table table({"counting", "counters", "recall", "precision",
                    "avg piggyback"});
  for (const auto& variant : variants) {
    volume::PairCounterConfig pcc;
    pcc.sample_counters = variant.sampled;
    pcc.sample_k = variant.k;
    pcc.sample_threshold = 0.2;
    pcc.restrict_prefix_level = variant.restrict_level;
    const auto counts =
        volume::PairCounterBuilder(pcc).build(workload.trace, 10);

    volume::ProbabilityVolumeConfig pvc;
    pvc.probability_threshold = 0.2;
    sim::EvalConfig config;
    const auto run = bench::eval_probability_with_counts(
        workload, counts, pvc, config);
    table.row({variant.name, sim::Table::count(counts.counter_count()),
               sim::Table::pct(run.result.fraction_predicted()),
               sim::Table::pct(run.result.true_prediction_fraction()),
               sim::Table::num(run.result.avg_piggyback_size(), 1)});
  }
  table.print(std::cout);
  std::printf(
      "\nreading: the sampler's memory/accuracy dial (k) trades counter "
      "count against tail-pair coverage; estimates for frequently "
      "co-occurring pairs stay unbiased because counts start from counter "
      "creation.\n");
  return 0;
}

// Chunked transfer-coding (RFC 2616 §3.6.1) with trailer support — the
// HTTP 1.1 mechanism the paper uses to append piggyback information after
// the response body ("the server's chunked response ends with the
// mandatory zero-length chunk", §2.3).
#pragma once

#include <string>
#include <string_view>

#include "http/header_map.h"

namespace piggyweb::http {

// Encode `body` as chunked data followed by the zero-length chunk and
// `trailers`. chunk_size bounds each data chunk.
std::string chunk_encode(std::string_view body, const HeaderMap& trailers,
                         std::size_t chunk_size = 4096);

enum class ChunkedStatus {
  kComplete,    // decoded through the trailer's final CRLF
  kIncomplete,  // prefix is valid but more bytes are needed
  kMalformed,   // can never become valid
};

struct ChunkedDecode {
  std::string body;
  HeaderMap trailers;
  std::size_t consumed = 0;  // bytes of `input` consumed
};

// Decode a chunked body from the start of `input`. kIncomplete lets a
// connection buffer wait for the rest of a pipelined response.
ChunkedStatus chunk_decode_status(std::string_view input,
                                  ChunkedDecode& out);

// Convenience for whole-message callers: true iff kComplete.
bool chunk_decode(std::string_view input, ChunkedDecode& out);

}  // namespace piggyweb::http

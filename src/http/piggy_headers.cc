#include "http/piggy_headers.h"

#include <cstdio>

#include "util/expect.h"
#include "util/strings.h"

namespace piggyweb::http {
namespace {

// Split a `key=value` or bare-token attribute. Quotes around the value are
// stripped.
struct Attribute {
  std::string_view key;
  std::string_view value;  // empty for bare tokens
};

std::optional<Attribute> parse_attribute(std::string_view piece) {
  piece = util::trim(piece);
  if (piece.empty()) return std::nullopt;
  const auto eq = piece.find('=');
  if (eq == std::string_view::npos) return Attribute{piece, {}};
  auto value = util::trim(piece.substr(eq + 1));
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
    value = value.substr(1, value.size() - 2);
  }
  return Attribute{util::trim(piece.substr(0, eq)), value};
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string serialize_filter(const core::ProxyFilter& filter) {
  if (!filter.enabled) return "nopiggy";
  std::string out;
  if (filter.max_elements != 0xffffffffu) {
    out += "maxpiggy=" + std::to_string(filter.max_elements);
  }
  if (!filter.rpv.empty()) {
    if (!out.empty()) out += "; ";
    out += "rpv=\"";
    for (std::size_t i = 0; i < filter.rpv.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(filter.rpv[i]);
    }
    out += '"';
  }
  if (filter.probability_threshold) {
    if (!out.empty()) out += "; ";
    out += "pt=" + format_double(*filter.probability_threshold);
  }
  if (filter.max_size) {
    if (!out.empty()) out += "; ";
    out += "maxsize=" + std::to_string(*filter.max_size);
  }
  if (!(filter.allow_html && filter.allow_image && filter.allow_other)) {
    if (!out.empty()) out += "; ";
    out += "types=";
    bool first = true;
    const auto append = [&](bool allowed, std::string_view name) {
      if (!allowed) return;
      if (!first) out += ',';
      out += name;
      first = false;
    };
    append(filter.allow_html, "html");
    append(filter.allow_image, "image");
    append(filter.allow_other, "other");
  }
  if (filter.min_access_count > 0) {
    if (!out.empty()) out += "; ";
    out += "minfreq=" + std::to_string(filter.min_access_count);
  }
  if (out.empty()) out = "maxpiggy=" + std::to_string(filter.max_elements);
  return out;
}

std::optional<core::ProxyFilter> parse_filter(std::string_view value) {
  core::ProxyFilter filter;
  for (const auto piece : util::split(value, ';')) {
    const auto attr = parse_attribute(piece);
    if (!attr) continue;
    if (util::iequals(attr->key, "nopiggy")) {
      filter.enabled = false;
    } else if (util::iequals(attr->key, "maxpiggy")) {
      std::uint64_t n = 0;
      if (!util::parse_u64(attr->value, n) || n > 0xffffffffu) {
        return std::nullopt;
      }
      filter.max_elements = static_cast<std::uint32_t>(n);
    } else if (util::iequals(attr->key, "rpv")) {
      for (const auto id_text : util::split_trimmed(attr->value, ',')) {
        std::uint64_t id = 0;
        if (!util::parse_u64(id_text, id) || id > core::kMaxWireVolumeId) {
          return std::nullopt;
        }
        filter.rpv.push_back(static_cast<core::VolumeId>(id));
      }
    } else if (util::iequals(attr->key, "pt")) {
      double pt = 0;
      if (!util::parse_double(attr->value, pt) || pt < 0 || pt > 1) {
        return std::nullopt;
      }
      filter.probability_threshold = pt;
    } else if (util::iequals(attr->key, "maxsize")) {
      std::uint64_t n = 0;
      if (!util::parse_u64(attr->value, n)) return std::nullopt;
      filter.max_size = n;
    } else if (util::iequals(attr->key, "types")) {
      filter.allow_html = filter.allow_image = filter.allow_other = false;
      for (const auto type : util::split_trimmed(attr->value, ',')) {
        if (util::iequals(type, "html")) {
          filter.allow_html = true;
        } else if (util::iequals(type, "image")) {
          filter.allow_image = true;
        } else if (util::iequals(type, "other")) {
          filter.allow_other = true;
        } else {
          return std::nullopt;
        }
      }
    } else if (util::iequals(attr->key, "minfreq")) {
      std::uint64_t n = 0;
      if (!util::parse_u64(attr->value, n) || n > 0xffffffffu) {
        return std::nullopt;
      }
      filter.min_access_count = static_cast<std::uint32_t>(n);
    } else {
      // Unknown attributes are ignored for forward compatibility.
    }
  }
  return filter;
}

void attach_filter(Request& request, const core::ProxyFilter& filter) {
  request.headers.set("TE", "chunked");
  request.headers.set(kPiggyFilterHeader, serialize_filter(filter));
}

std::optional<core::ProxyFilter> extract_filter(const Request& request) {
  const auto value = request.headers.get(kPiggyFilterHeader);
  if (!value) return std::nullopt;
  return parse_filter(*value);
}

std::string serialize_hits(const std::vector<core::VolumeHitCount>& counts) {
  std::string out;
  for (const auto& count : counts) {
    if (!out.empty()) out += ", ";
    out += std::to_string(count.volume);
    out += ':';
    out += std::to_string(count.hits);
  }
  return out;
}

std::optional<std::vector<core::VolumeHitCount>> parse_hits(
    std::string_view value) {
  std::vector<core::VolumeHitCount> out;
  for (const auto piece : util::split_trimmed(value, ',')) {
    const auto colon = piece.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    std::uint64_t volume = 0, hits = 0;
    if (!util::parse_u64(util::trim(piece.substr(0, colon)), volume) ||
        !util::parse_u64(util::trim(piece.substr(colon + 1)), hits) ||
        volume > core::kMaxWireVolumeId || hits > 0xffffffffu) {
      return std::nullopt;
    }
    out.push_back({static_cast<core::VolumeId>(volume),
                   static_cast<std::uint32_t>(hits)});
  }
  return out;
}

void attach_hits(Request& request,
                 const std::vector<core::VolumeHitCount>& counts) {
  if (counts.empty()) return;
  request.headers.set(kPiggyHitsHeader, serialize_hits(counts));
}

std::optional<std::vector<core::VolumeHitCount>> extract_hits(
    const Request& request) {
  const auto value = request.headers.get(kPiggyHitsHeader);
  if (!value) return std::nullopt;
  return parse_hits(*value);
}

std::string serialize_validate(
    const std::vector<core::ValidationItem>& items,
    const util::InternTable& paths) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += "; ";
    out += "e=\"";
    out += paths.str(item.resource);
    out += ' ';
    out += std::to_string(item.last_modified);
    out += '"';
  }
  return out;
}

std::optional<std::vector<core::ValidationItem>> parse_validate(
    std::string_view value, util::InternTable& paths) {
  std::vector<core::ValidationItem> out;
  for (const auto piece : util::split(value, ';')) {
    const auto attr = parse_attribute(piece);
    if (!attr) continue;
    if (!util::iequals(attr->key, "e")) return std::nullopt;
    const auto parts = util::split_trimmed(attr->value, ' ');
    if (parts.size() != 2) return std::nullopt;
    core::ValidationItem item;
    item.resource = paths.intern(parts[0]);
    if (!util::parse_i64(parts[1], item.last_modified)) return std::nullopt;
    out.push_back(item);
  }
  return out;
}

void attach_validate(Request& request,
                     const std::vector<core::ValidationItem>& items,
                     const util::InternTable& paths) {
  if (items.empty()) return;
  request.headers.set(kPiggyValidateHeader,
                      serialize_validate(items, paths));
}

std::optional<std::vector<core::ValidationItem>> extract_validate(
    const Request& request, util::InternTable& paths) {
  const auto value = request.headers.get(kPiggyValidateHeader);
  if (!value) return std::nullopt;
  return parse_validate(*value, paths);
}

std::string serialize_validate_reply(const core::ValidationReply& reply,
                                     const util::InternTable& paths) {
  std::string out;
  for (const auto fresh : reply.fresh) {
    if (!out.empty()) out += "; ";
    out += "f=\"";
    out += paths.str(fresh);
    out += '"';
  }
  for (const auto& stale : reply.stale) {
    if (!out.empty()) out += "; ";
    out += "s=\"";
    out += paths.str(stale.resource);
    out += ' ';
    out += std::to_string(stale.last_modified);
    out += '"';
  }
  return out;
}

std::optional<core::ValidationReply> parse_validate_reply(
    std::string_view value, util::InternTable& paths) {
  core::ValidationReply reply;
  for (const auto piece : util::split(value, ';')) {
    const auto attr = parse_attribute(piece);
    if (!attr) continue;
    if (util::iequals(attr->key, "f")) {
      if (attr->value.empty()) return std::nullopt;
      reply.fresh.push_back(paths.intern(attr->value));
    } else if (util::iequals(attr->key, "s")) {
      const auto parts = util::split_trimmed(attr->value, ' ');
      if (parts.size() != 2) return std::nullopt;
      core::ValidationReply::Stale stale;
      stale.resource = paths.intern(parts[0]);
      if (!util::parse_i64(parts[1], stale.last_modified)) {
        return std::nullopt;
      }
      reply.stale.push_back(stale);
    } else {
      return std::nullopt;
    }
  }
  return reply;
}

void attach_validate_reply(Response& response,
                           const core::ValidationReply& reply,
                           const util::InternTable& paths) {
  if (reply.empty()) return;
  response.headers.set(kPValidateHeader,
                       serialize_validate_reply(reply, paths));
}

std::optional<core::ValidationReply> extract_validate_reply(
    const Response& response, util::InternTable& paths) {
  auto value = response.headers.get(kPValidateHeader);
  if (!value) value = response.trailers.get(kPValidateHeader);
  if (!value) return std::nullopt;
  return parse_validate_reply(*value, paths);
}

std::string serialize_pvolume(const core::PiggybackMessage& message,
                              const util::InternTable& paths) {
  PW_EXPECT(message.volume <= core::kMaxWireVolumeId);
  std::string out = "vid=" + std::to_string(message.volume);
  for (const auto& element : message.elements) {
    out += "; e=\"";
    out += paths.str(element.resource);
    out += ' ';
    out += std::to_string(element.last_modified);
    out += ' ';
    out += std::to_string(element.size);
    if (element.probability > 0) {
      // Optional 4th field: the implication probability, for
      // server-assisted replacement (§4).
      char prob[16];
      std::snprintf(prob, sizeof(prob), " %.3f", element.probability);
      out += prob;
    }
    out += '"';
  }
  return out;
}

std::optional<core::PiggybackMessage> parse_pvolume(
    std::string_view value, util::InternTable& paths) {
  core::PiggybackMessage message;
  bool saw_vid = false;
  for (const auto piece : util::split(value, ';')) {
    const auto attr = parse_attribute(piece);
    if (!attr) continue;
    if (util::iequals(attr->key, "vid")) {
      std::uint64_t vid = 0;
      if (!util::parse_u64(attr->value, vid) ||
          vid > core::kMaxWireVolumeId) {
        return std::nullopt;
      }
      message.volume = static_cast<core::VolumeId>(vid);
      saw_vid = true;
    } else if (util::iequals(attr->key, "e")) {
      const auto parts = util::split_trimmed(attr->value, ' ');
      if (parts.size() != 3 && parts.size() != 4) return std::nullopt;
      core::PiggybackElement element;
      element.resource = paths.intern(parts[0]);
      if (!util::parse_i64(parts[1], element.last_modified)) {
        return std::nullopt;
      }
      if (!util::parse_u64(parts[2], element.size)) return std::nullopt;
      if (parts.size() == 4) {
        if (!util::parse_double(parts[3], element.probability) ||
            element.probability < 0 || element.probability > 1) {
          return std::nullopt;
        }
      }
      message.elements.push_back(element);
    }
  }
  if (!saw_vid) return std::nullopt;
  return message;
}

void attach_pvolume(Response& response,
                    const core::PiggybackMessage& message,
                    const util::InternTable& paths) {
  if (message.empty()) return;
  response.chunked = true;
  response.headers.remove("Content-Length");
  response.headers.set("Transfer-Encoding", "chunked");
  response.headers.set("Trailer", std::string(kPVolumeHeader));
  response.trailers.set(kPVolumeHeader,
                        serialize_pvolume(message, paths));
}

std::optional<core::PiggybackMessage> extract_pvolume(
    const Response& response, util::InternTable& paths) {
  auto value = response.trailers.get(kPVolumeHeader);
  if (!value) value = response.headers.get(kPVolumeHeader);
  if (!value) return std::nullopt;
  return parse_pvolume(*value, paths);
}

}  // namespace piggyweb::http

#include "http/date.h"

#include <array>
#include <cstdio>

#include "util/date.h"
#include "util/strings.h"

namespace piggyweb::http {
namespace {

constexpr std::array<std::string_view, 7> kDays = {
    "Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"};
constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

int month_index(std::string_view name) {
  for (int i = 0; i < 12; ++i) {
    if (util::iequals(kMonths[static_cast<std::size_t>(i)], name)) return i;
  }
  return -1;
}

}  // namespace

std::string format_http_date(std::int64_t unix_seconds) {
  std::int64_t days = unix_seconds / 86400;
  std::int64_t rem = unix_seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  std::int64_t year = 0;
  int mon = 0, day = 0;
  util::civil_from_days(days, year, mon, day);
  const int wd = util::weekday_from_days(days);
  char buf[40];
  std::snprintf(
      buf, sizeof(buf), "%s, %02d %s %04lld %02lld:%02lld:%02lld GMT",
      std::string(kDays[static_cast<std::size_t>(wd)]).c_str(), day,
      std::string(kMonths[static_cast<std::size_t>(mon - 1)]).c_str(),
      static_cast<long long>(year), static_cast<long long>(rem / 3600),
      static_cast<long long>((rem / 60) % 60),
      static_cast<long long>(rem % 60));
  return buf;
}

bool parse_http_date(std::string_view s, std::int64_t& out) {
  // "Sun, 06 Nov 1994 08:49:37 GMT" — fixed layout after the weekday.
  s = util::trim(s);
  const auto comma = s.find(',');
  if (comma == std::string_view::npos) return false;
  const auto rest = util::trim(s.substr(comma + 1));
  // rest: "06 Nov 1994 08:49:37 GMT"
  if (rest.size() < 20) return false;
  std::int64_t day = 0, year = 0, hh = 0, mm = 0, ss = 0;
  if (!util::parse_i64(rest.substr(0, 2), day)) return false;
  const int mon = month_index(rest.substr(3, 3));
  if (mon < 0) return false;
  if (!util::parse_i64(rest.substr(7, 4), year)) return false;
  if (!util::parse_i64(rest.substr(12, 2), hh)) return false;
  if (!util::parse_i64(rest.substr(15, 2), mm)) return false;
  if (!util::parse_i64(rest.substr(18, 2), ss)) return false;
  if (day < 1 || day > 31 || hh > 23 || mm > 59 || ss > 60) return false;
  out = util::days_from_civil(year, mon + 1, static_cast<int>(day)) * 86400 +
        hh * 3600 + mm * 60 + ss;
  return true;
}

}  // namespace piggyweb::http

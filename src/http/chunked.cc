#include "http/chunked.h"

#include <charconv>
#include <cstdio>

#include "util/expect.h"
#include "util/strings.h"

namespace piggyweb::http {
namespace {

// Read a CRLF-terminated line starting at `pos`; returns false if no CRLF.
bool take_line(std::string_view input, std::size_t& pos,
               std::string_view& line) {
  const auto crlf = input.find("\r\n", pos);
  if (crlf == std::string_view::npos) return false;
  line = input.substr(pos, crlf - pos);
  pos = crlf + 2;
  return true;
}

}  // namespace

std::string chunk_encode(std::string_view body, const HeaderMap& trailers,
                         std::size_t chunk_size) {
  PW_EXPECT(chunk_size > 0);
  std::string out;
  out.reserve(body.size() + body.size() / chunk_size * 8 + 64 +
              trailers.size() * 32);
  std::size_t offset = 0;
  while (offset < body.size()) {
    const auto n = std::min(chunk_size, body.size() - offset);
    char size_line[20];
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n", n);
    out += size_line;
    out.append(body.substr(offset, n));
    out += "\r\n";
    offset += n;
  }
  out += "0\r\n";           // mandatory zero-length final chunk
  out += trailers.serialize();
  out += "\r\n";            // end of trailer section
  return out;
}

ChunkedStatus chunk_decode_status(std::string_view input,
                                  ChunkedDecode& out) {
  out = {};
  std::size_t pos = 0;
  while (true) {
    std::string_view size_line;
    if (!take_line(input, pos, size_line)) {
      // No CRLF yet: a partial size line is incomplete unless it already
      // contains a byte that can never be valid hex/extension syntax.
      return ChunkedStatus::kIncomplete;
    }
    // Chunk extensions (";ext=...") are permitted and ignored.
    const auto semi = size_line.find(';');
    const auto hex = util::trim(semi == std::string_view::npos
                                    ? size_line
                                    : size_line.substr(0, semi));
    std::size_t chunk_len = 0;
    const auto [ptr, ec] = std::from_chars(
        hex.data(), hex.data() + hex.size(), chunk_len, 16);
    if (ec != std::errc{} || ptr != hex.data() + hex.size()) {
      return ChunkedStatus::kMalformed;
    }
    if (chunk_len == 0) break;
    if (pos + chunk_len + 2 > input.size()) {
      return ChunkedStatus::kIncomplete;
    }
    out.body.append(input.substr(pos, chunk_len));
    pos += chunk_len;
    if (input.substr(pos, 2) != "\r\n") return ChunkedStatus::kMalformed;
    pos += 2;
  }
  // Trailer section: header lines until an empty line.
  while (true) {
    std::string_view line;
    if (!take_line(input, pos, line)) return ChunkedStatus::kIncomplete;
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) return ChunkedStatus::kMalformed;
    out.trailers.add(util::trim(line.substr(0, colon)),
                     util::trim(line.substr(colon + 1)));
  }
  out.consumed = pos;
  return ChunkedStatus::kComplete;
}

bool chunk_decode(std::string_view input, ChunkedDecode& out) {
  return chunk_decode_status(input, out) == ChunkedStatus::kComplete;
}

}  // namespace piggyweb::http

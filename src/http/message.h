// HTTP/1.1 request/response messages: value types plus parse/serialize.
//
// The subset implemented is what the piggybacking protocol needs (§2.3):
// request lines, status lines, headers, Content-Length bodies, and chunked
// transfer-coding with trailers (the vehicle for the P-volume response
// header, which must trail the body so piggyback construction cannot delay
// the response).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "http/header_map.h"
#include "trace/record.h"

namespace piggyweb::http {

struct Request {
  trace::Method method = trace::Method::kGet;
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  std::string serialize() const;
};

struct Response {
  std::string version = "HTTP/1.1";
  int status = 200;
  std::string reason = "OK";
  HeaderMap headers;
  std::string body;
  // When true the body is sent chunked and `trailers` follow the final
  // chunk; the Trailer header should announce trailer field names.
  bool chunked = false;
  HeaderMap trailers;

  std::string serialize() const;
};

// Parse results carry how many input bytes were consumed so a connection
// buffer can hold pipelined messages. `incomplete` distinguishes "feed me
// more bytes" (a valid prefix) from "never going to parse" — connection
// buffers block on the former and fail on the latter.
struct ParseError {
  std::string message;
  bool incomplete = false;
};

struct RequestParse {
  Request request;
  std::size_t consumed = 0;
};
struct ResponseParse {
  Response response;
  std::size_t consumed = 0;
};

// Parse one complete message from `input`. Returns nullopt with `error`
// filled if the bytes are malformed; PW-incomplete inputs are also errors
// (this is an in-process library, callers always hand over whole messages).
std::optional<RequestParse> parse_request(std::string_view input,
                                          ParseError& error);
std::optional<ResponseParse> parse_response(std::string_view input,
                                            ParseError& error);

std::string_view reason_for_status(int status);

}  // namespace piggyweb::http

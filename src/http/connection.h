// Persistent-connection plumbing (HTTP/1.1 keep-alive + pipelining).
//
// The paper's motivation leans on persistent connections: piggybacks ride
// existing responses, and "the proxy and the server can both decide to
// maintain an open TCP connection if the piggyback information suggests
// that more proxy requests are likely". This module models one such
// connection in process: byte-accurate buffers in each direction, with
// incremental parsing so pipelined messages and partial deliveries behave
// exactly as they would on a socket.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "http/message.h"

namespace piggyweb::http {

// An elastic byte buffer with incremental message extraction. Append
// arbitrary byte slices; try_* parses and consumes one complete message,
// returning nullopt with error.incomplete=true while bytes are missing.
class MessageBuffer {
 public:
  void append(std::string_view bytes) { buffer_.append(bytes); }

  std::optional<Request> try_parse_request(ParseError& error);
  std::optional<Response> try_parse_response(ParseError& error);

  std::size_t buffered_bytes() const { return buffer_.size(); }
  bool empty() const { return buffer_.empty(); }

 private:
  std::string buffer_;
};

// A full-duplex proxy<->server connection. The client side enqueues
// serialized requests and drains parsed responses; the server side drains
// parsed requests and enqueues serialized responses. Pipelining falls out
// naturally: any number of requests may be in flight.
class Connection {
 public:
  // --- client (proxy) side --------------------------------------------------
  void send_request(const Request& request);
  std::optional<Response> receive_response(ParseError& error) {
    return to_client_.try_parse_response(error);
  }

  // --- server side -----------------------------------------------------------
  std::optional<Request> receive_request(ParseError& error) {
    return to_server_.try_parse_request(error);
  }
  void send_response(const Response& response);

  // --- wire accounting --------------------------------------------------------
  std::uint64_t bytes_to_server() const { return bytes_to_server_; }
  std::uint64_t bytes_to_client() const { return bytes_to_client_; }
  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t responses_sent() const { return responses_sent_; }

  // Bytes currently in flight (sent but not yet parsed out).
  std::size_t pending_to_server() const {
    return to_server_.buffered_bytes();
  }
  std::size_t pending_to_client() const {
    return to_client_.buffered_bytes();
  }

 private:
  MessageBuffer to_server_;
  MessageBuffer to_client_;
  std::uint64_t bytes_to_server_ = 0;
  std::uint64_t bytes_to_client_ = 0;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t responses_sent_ = 0;
};

}  // namespace piggyweb::http

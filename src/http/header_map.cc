#include "http/header_map.h"

#include "util/strings.h"

namespace piggyweb::http {

void HeaderMap::add(std::string_view name, std::string_view value) {
  fields_.push_back({std::string(name), std::string(value)});
}

void HeaderMap::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const auto& f : fields_) {
    if (util::iequals(f.name, name)) return std::string_view(f.value);
  }
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::get_all(
    std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& f : fields_) {
    if (util::iequals(f.name, name)) out.emplace_back(f.value);
  }
  return out;
}

std::size_t HeaderMap::remove(std::string_view name) {
  std::size_t removed = 0;
  for (auto it = fields_.begin(); it != fields_.end();) {
    if (util::iequals(it->name, name)) {
      it = fields_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::string HeaderMap::serialize() const {
  std::string out;
  for (const auto& f : fields_) {
    out += f.name;
    out += ": ";
    out += f.value;
    out += "\r\n";
  }
  return out;
}

}  // namespace piggyweb::http

// RFC 1123 HTTP dates ("Sun, 06 Nov 1994 08:49:37 GMT") — the format of
// Last-Modified and If-Modified-Since header values.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace piggyweb::http {

std::string format_http_date(std::int64_t unix_seconds);
bool parse_http_date(std::string_view s, std::int64_t& out);

}  // namespace piggyweb::http

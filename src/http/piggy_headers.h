// Wire grammar for the protocol's two extension headers (§2.3).
//
// Request side — the proxy filter:
//
//   Piggy-filter: maxpiggy=10; rpv="3,4"; pt=0.2; maxsize=65536;
//                 types=html,image; minfreq=5
//   Piggy-filter: nopiggy
//
// Response side — the piggybacked volume, carried as a trailer field of a
// chunked response (announced via `Trailer: P-volume`) so building it
// never delays the body:
//
//   P-volume: vid=7; e="/dir/a.html 887637622 2366"; e="/dir/b.gif 887636681 4034"
//
// Each element quotes "<url> <last-modified-unix-seconds> <size-bytes>".
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/feedback.h"
#include "core/filter.h"
#include "core/piggyback.h"
#include "core/validation.h"
#include "http/message.h"
#include "util/intern.h"

namespace piggyweb::http {

inline constexpr std::string_view kPiggyFilterHeader = "Piggy-filter";
inline constexpr std::string_view kPVolumeHeader = "P-volume";
inline constexpr std::string_view kPiggyHitsHeader = "Piggy-hits";
inline constexpr std::string_view kPiggyValidateHeader = "Piggy-validate";
inline constexpr std::string_view kPValidateHeader = "P-validate";

// --- Piggy-filter -----------------------------------------------------------

std::string serialize_filter(const core::ProxyFilter& filter);
std::optional<core::ProxyFilter> parse_filter(std::string_view value);

// Attach the filter (and the TE: chunked willingness it depends on) to a
// request. A disabled filter serializes as "nopiggy" so the server knows
// this proxy speaks the protocol but wants silence.
void attach_filter(Request& request, const core::ProxyFilter& filter);

// Extract the filter from a request. nullopt means the client doesn't
// speak the protocol (no Piggy-filter header) — the server must not
// piggyback at all.
std::optional<core::ProxyFilter> extract_filter(const Request& request);

// --- Piggy-hits (§5 proxy-to-server feedback) -------------------------------
//
//   Piggy-hits: 3:12, 7:4
//
// "volume 3 served 12 cache hits since my last report, volume 7 served 4".

std::string serialize_hits(const std::vector<core::VolumeHitCount>& counts);
std::optional<std::vector<core::VolumeHitCount>> parse_hits(
    std::string_view value);

// Attach pending feedback to a request (no-op for an empty report).
void attach_hits(Request& request,
                 const std::vector<core::VolumeHitCount>& counts);
std::optional<std::vector<core::VolumeHitCount>> extract_hits(
    const Request& request);

// --- Piggy-validate / P-validate (PCV, after [10]) --------------------------
//
//   Piggy-validate: e="/a.html 886291300"; e="/b.gif 886291500"
//   P-validate: f="/b.gif"; s="/a.html 886295000"
//
// Each request item quotes "<url> <last-modified>"; the reply lists fresh
// urls (f) and stale urls with their current Last-Modified (s).

std::string serialize_validate(const std::vector<core::ValidationItem>& items,
                               const util::InternTable& paths);
std::optional<std::vector<core::ValidationItem>> parse_validate(
    std::string_view value, util::InternTable& paths);
void attach_validate(Request& request,
                     const std::vector<core::ValidationItem>& items,
                     const util::InternTable& paths);
std::optional<std::vector<core::ValidationItem>> extract_validate(
    const Request& request, util::InternTable& paths);

std::string serialize_validate_reply(const core::ValidationReply& reply,
                                     const util::InternTable& paths);
std::optional<core::ValidationReply> parse_validate_reply(
    std::string_view value, util::InternTable& paths);
void attach_validate_reply(Response& response,
                           const core::ValidationReply& reply,
                           const util::InternTable& paths);
std::optional<core::ValidationReply> extract_validate_reply(
    const Response& response, util::InternTable& paths);

// --- P-volume ---------------------------------------------------------------

std::string serialize_pvolume(const core::PiggybackMessage& message,
                              const util::InternTable& paths);
std::optional<core::PiggybackMessage> parse_pvolume(
    std::string_view value, util::InternTable& paths);

// Turn `response` into a chunked response whose trailer carries the
// piggyback. No-op for empty messages. The volume id must fit the 2-byte
// wire bound (kMaxWireVolumeId); callers keep wire ids in range by
// construction (directory volumes) or by hashing into range.
void attach_pvolume(Response& response,
                    const core::PiggybackMessage& message,
                    const util::InternTable& paths);

// Read a piggyback from a response's trailers (or headers, for servers
// that chose not to chunk). Interns any new paths into `paths`.
std::optional<core::PiggybackMessage> extract_pvolume(
    const Response& response, util::InternTable& paths);

}  // namespace piggyweb::http

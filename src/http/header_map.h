// Case-insensitive, order-preserving HTTP header map. Field names compare
// ASCII-case-insensitively (RFC 2616 §4.2); insertion order is preserved
// because serialization should round-trip and trailers care about order.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace piggyweb::http {

class HeaderMap {
 public:
  struct Field {
    std::string name;
    std::string value;
  };

  // Append a field (duplicates allowed, as HTTP permits repeated fields).
  void add(std::string_view name, std::string_view value);

  // Replace all fields named `name` with a single field.
  void set(std::string_view name, std::string_view value);

  // First value for `name`.
  std::optional<std::string_view> get(std::string_view name) const;

  // All values for `name`, in insertion order.
  std::vector<std::string_view> get_all(std::string_view name) const;

  bool contains(std::string_view name) const { return get(name).has_value(); }

  // Remove all fields named `name`; returns how many were removed.
  std::size_t remove(std::string_view name);

  const std::vector<Field>& fields() const { return fields_; }
  std::size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  // "Name: value\r\n" for every field.
  std::string serialize() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace piggyweb::http

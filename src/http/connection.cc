#include "http/connection.h"

namespace piggyweb::http {

std::optional<Request> MessageBuffer::try_parse_request(ParseError& error) {
  if (buffer_.empty()) {
    error = {};
    error.message = "buffer empty";
    error.incomplete = true;
    return std::nullopt;
  }
  auto parsed = parse_request(buffer_, error);
  if (!parsed) return std::nullopt;
  buffer_.erase(0, parsed->consumed);
  return std::move(parsed->request);
}

std::optional<Response> MessageBuffer::try_parse_response(
    ParseError& error) {
  if (buffer_.empty()) {
    error = {};
    error.message = "buffer empty";
    error.incomplete = true;
    return std::nullopt;
  }
  auto parsed = parse_response(buffer_, error);
  if (!parsed) return std::nullopt;
  buffer_.erase(0, parsed->consumed);
  return std::move(parsed->response);
}

void Connection::send_request(const Request& request) {
  const auto wire = request.serialize();
  bytes_to_server_ += wire.size();
  ++requests_sent_;
  to_server_.append(wire);
}

void Connection::send_response(const Response& response) {
  const auto wire = response.serialize();
  bytes_to_client_ += wire.size();
  ++responses_sent_;
  to_client_.append(wire);
}

}  // namespace piggyweb::http

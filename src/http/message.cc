#include "http/message.h"

#include "http/chunked.h"
#include "util/strings.h"

namespace piggyweb::http {
namespace {

// Parse the header block starting at `pos` (just past the start line) up
// to and including the blank line. Returns false on malformed fields.
bool parse_headers(std::string_view input, std::size_t& pos,
                   HeaderMap& headers, ParseError& error) {
  while (true) {
    const auto crlf = input.find("\r\n", pos);
    if (crlf == std::string_view::npos) {
      error.message = "truncated header block";
      error.incomplete = true;
      return false;
    }
    const auto line = input.substr(pos, crlf - pos);
    pos = crlf + 2;
    if (line.empty()) return true;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      error.message = "malformed header field";
      return false;
    }
    headers.add(util::trim(line.substr(0, colon)),
                util::trim(line.substr(colon + 1)));
  }
}

bool is_chunked(const HeaderMap& headers) {
  const auto te = headers.get("Transfer-Encoding");
  return te && util::iequals(util::trim(*te), "chunked");
}

// Read the message body given the headers; fills body/trailers/consumed.
bool parse_body(std::string_view input, std::size_t& pos,
                const HeaderMap& headers, std::string& body,
                HeaderMap& trailers, ParseError& error) {
  if (is_chunked(headers)) {
    ChunkedDecode decoded;
    const auto status = chunk_decode_status(input.substr(pos), decoded);
    if (status != ChunkedStatus::kComplete) {
      error.message = status == ChunkedStatus::kIncomplete
                          ? "truncated chunked body"
                          : "malformed chunked body";
      error.incomplete = status == ChunkedStatus::kIncomplete;
      return false;
    }
    body = std::move(decoded.body);
    trailers = std::move(decoded.trailers);
    pos += decoded.consumed;
    return true;
  }
  std::uint64_t length = 0;
  if (const auto cl = headers.get("Content-Length")) {
    if (!util::parse_u64(util::trim(*cl), length)) {
      error.message = "bad Content-Length";
      return false;
    }
  }
  if (pos + length > input.size()) {
    error.message = "truncated body";
    error.incomplete = true;
    return false;
  }
  body = std::string(input.substr(pos, length));
  pos += length;
  return true;
}

}  // namespace

std::string_view reason_for_status(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 304:
      return "Not Modified";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

std::string Request::serialize() const {
  std::string out;
  out.reserve(target.size() + headers.size() * 32 + body.size() + 32);
  out += trace::method_name(method);
  out += ' ';
  out += target;
  out += ' ';
  out += version;
  out += "\r\n";
  out += headers.serialize();
  out += "\r\n";
  out += body;
  return out;
}

std::string Response::serialize() const {
  std::string out;
  out.reserve(body.size() + headers.size() * 32 + 64);
  out += version;
  out += ' ';
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\n";
  out += headers.serialize();
  out += "\r\n";
  if (chunked) {
    out += chunk_encode(body, trailers);
  } else {
    out += body;
  }
  return out;
}

std::optional<RequestParse> parse_request(std::string_view input,
                                          ParseError& error) {
  error = {};
  const auto crlf = input.find("\r\n");
  if (crlf == std::string_view::npos) {
    error.message = "missing request line";
    error.incomplete = true;
    return std::nullopt;
  }
  const auto line = input.substr(0, crlf);
  const auto parts = util::split_trimmed(line, ' ');
  if (parts.size() != 3) {
    error.message = "malformed request line";
    return std::nullopt;
  }
  RequestParse out;
  if (!trace::parse_method(parts[0], out.request.method)) {
    error.message = "unsupported method";
    return std::nullopt;
  }
  out.request.target = std::string(parts[1]);
  out.request.version = std::string(parts[2]);
  std::size_t pos = crlf + 2;
  if (!parse_headers(input, pos, out.request.headers, error)) {
    return std::nullopt;
  }
  HeaderMap ignored_trailers;
  if (!parse_body(input, pos, out.request.headers, out.request.body,
                  ignored_trailers, error)) {
    return std::nullopt;
  }
  out.consumed = pos;
  return out;
}

std::optional<ResponseParse> parse_response(std::string_view input,
                                            ParseError& error) {
  error = {};
  const auto crlf = input.find("\r\n");
  if (crlf == std::string_view::npos) {
    error.message = "missing status line";
    error.incomplete = true;
    return std::nullopt;
  }
  const auto line = input.substr(0, crlf);
  // "HTTP/1.1 200 OK" — reason may contain spaces.
  const auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    error.message = "malformed status line";
    return std::nullopt;
  }
  const auto sp2 = line.find(' ', sp1 + 1);
  ResponseParse out;
  out.response.version = std::string(line.substr(0, sp1));
  std::uint64_t status = 0;
  const auto status_text = sp2 == std::string_view::npos
                               ? line.substr(sp1 + 1)
                               : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (!util::parse_u64(status_text, status) || status < 100 ||
      status > 599) {
    error.message = "bad status code";
    return std::nullopt;
  }
  out.response.status = static_cast<int>(status);
  out.response.reason = sp2 == std::string_view::npos
                            ? std::string()
                            : std::string(line.substr(sp2 + 1));
  std::size_t pos = crlf + 2;
  if (!parse_headers(input, pos, out.response.headers, error)) {
    return std::nullopt;
  }
  out.response.chunked = is_chunked(out.response.headers);
  if (!parse_body(input, pos, out.response.headers, out.response.body,
                  out.response.trailers, error)) {
    return std::nullopt;
  }
  out.consumed = pos;
  return out;
}

}  // namespace piggyweb::http

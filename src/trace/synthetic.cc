#include "trace/synthetic.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <string>

#include "util/expect.h"
#include "util/hash.h"

namespace piggyweb::trace {
namespace {

constexpr std::array<std::string_view, 20> kTopDirNames = {
    "products", "people",  "research", "news",    "software",
    "support",  "docs",    "pub",      "archive", "gallery",
    "projects", "papers",  "releases", "tools",   "data",
    "info",     "press",   "jobs",     "events",  "library"};

constexpr std::array<std::string_view, 10> kSubDirNames = {
    "current", "old", "v1", "misc", "notes", "src", "ref", "list", "extra",
    "more"};

constexpr std::array<std::string_view, 4> kOtherExts = {"pdf", "ps", "zip",
                                                        "txt"};

std::string top_dir_name(int i) {
  const auto base = kTopDirNames[static_cast<std::size_t>(i) %
                                 kTopDirNames.size()];
  std::string name = "/";
  name += base;
  if (static_cast<std::size_t>(i) >= kTopDirNames.size()) {
    name += std::to_string(i / static_cast<int>(kTopDirNames.size()));
  }
  return name;
}

std::string sub_dir_name(const std::string& parent, int i) {
  std::string name = parent;
  name += '/';
  name += kSubDirNames[static_cast<std::size_t>(i) % kSubDirNames.size()];
  if (static_cast<std::size_t>(i) >= kSubDirNames.size()) {
    name += std::to_string(i / static_cast<int>(kSubDirNames.size()));
  }
  return name;
}

std::uint64_t clamp_size(double bytes) {
  if (bytes < 64.0) return 64;
  if (bytes > 64.0 * 1024 * 1024) return 64ULL * 1024 * 1024;
  return static_cast<std::uint64_t>(bytes);
}

}  // namespace

SiteModel::SiteModel(const SiteShape& shape, util::Seconds duration,
                     util::Rng& rng)
    : host_(shape.host) {
  PW_EXPECT(shape.top_dirs > 0);
  PW_EXPECT(shape.pages > 0);
  PW_EXPECT(shape.max_depth >= 1);

  // --- directory tree -----------------------------------------------------
  std::vector<std::string> dirs;
  dirs.emplace_back("");  // site root; paths below are "<dir>/<name>"
  std::vector<std::string> frontier;
  for (int i = 0; i < shape.top_dirs; ++i) {
    dirs.push_back(top_dir_name(i));
    frontier.push_back(dirs.back());
  }
  for (int depth = 2; depth <= shape.max_depth; ++depth) {
    std::vector<std::string> next;
    for (const auto& parent : frontier) {
      const auto n = (depth == 2)
                         ? rng.poisson(shape.subdirs_per_dir)
                         : (rng.chance(shape.deep_spawn_prob)
                                ? 1 + rng.below(2)
                                : 0);
      for (std::uint64_t j = 0; j < n; ++j) {
        dirs.push_back(sub_dir_name(parent, static_cast<int>(j)));
        next.push_back(dirs.back());
      }
    }
    frontier = std::move(next);
  }

  // Directory weights: Zipf over a shuffled order so popularity is not
  // correlated with creation order.
  std::vector<std::size_t> dir_order(dirs.size());
  for (std::size_t i = 0; i < dirs.size(); ++i) dir_order[i] = i;
  for (std::size_t i = dirs.size(); i > 1; --i) {
    std::swap(dir_order[i - 1], dir_order[rng.below(i)]);
  }
  util::ZipfSampler dir_zipf(dirs.size(), shape.dir_popularity_skew);
  const auto sample_dir = [&]() -> const std::string& {
    return dirs[dir_order[dir_zipf(rng)]];
  };

  const auto add_resource = [&](std::string path, ContentType type,
                                std::uint64_t size) {
    SyntheticResource res;
    res.path = std::move(path);
    res.type = type;
    res.size = size;
    const auto idx = static_cast<std::uint32_t>(resources_.size());
    index_.emplace(res.path, idx);
    resources_.push_back(std::move(res));
    return idx;
  };

  // --- pages ---------------------------------------------------------------
  std::vector<std::uint32_t> pages;
  std::unordered_map<std::string, std::vector<std::uint32_t>> pages_by_dir;
  const auto add_page = [&](const std::string& dir, const std::string& name) {
    const auto size =
        clamp_size(rng.lognormal(shape.html_size_mu, shape.html_size_sigma));
    const auto idx = add_resource(dir + "/" + name, ContentType::kHtml, size);
    pages.push_back(idx);
    pages_by_dir[dir].push_back(idx);
    return idx;
  };

  add_page("", "index.html");
  for (int i = 0; i < shape.top_dirs && static_cast<int>(pages.size()) <
                                            shape.pages;
       ++i) {
    add_page(top_dir_name(i), "index.html");
  }
  int page_seq = 0;
  while (static_cast<int>(pages.size()) < shape.pages) {
    add_page(sample_dir(), "pg" + std::to_string(page_seq++) + ".html");
  }

  // --- embedded images -----------------------------------------------------
  std::vector<std::uint32_t> shared_pool;
  std::unordered_map<std::string, std::vector<std::uint32_t>> images_by_dir;
  int image_seq = 0;
  const auto image_size = [&]() {
    return clamp_size(
        rng.lognormal(shape.image_size_mu, shape.image_size_sigma));
  };
  for (const auto page_idx : pages) {
    const auto& page_path = resources_[page_idx].path;
    const auto slash = page_path.find_last_of('/');
    const std::string dir = page_path.substr(0, slash);
    const auto n_images = rng.poisson(shape.images_per_page_mean);
    std::vector<std::uint32_t> embedded;
    for (std::uint64_t j = 0; j < n_images; ++j) {
      std::uint32_t img = 0;
      if (rng.chance(shape.image_same_dir_prob)) {
        auto& local = images_by_dir[dir];
        if (!local.empty() && rng.chance(shape.image_reuse_prob)) {
          img = local[rng.below(local.size())];
        } else {
          img = add_resource(
              dir + "/img" + std::to_string(image_seq++) + ".gif",
              ContentType::kImage, image_size());
          local.push_back(img);
        }
      } else {
        if (static_cast<int>(shared_pool.size()) < shape.shared_image_pool) {
          img = add_resource(
              "/images/logo" + std::to_string(shared_pool.size()) + ".gif",
              ContentType::kImage, image_size());
          shared_pool.push_back(img);
        } else {
          img = shared_pool[rng.below(shared_pool.size())];
        }
      }
      if (std::find(embedded.begin(), embedded.end(), img) ==
          embedded.end()) {
        embedded.push_back(img);
      }
    }
    resources_[page_idx].embedded = std::move(embedded);
  }

  // --- other resources (pdf/ps/zip/txt) ------------------------------------
  const auto n_other = static_cast<int>(
      shape.other_resources_frac * static_cast<double>(shape.pages));
  for (int i = 0; i < n_other; ++i) {
    const auto ext = kOtherExts[rng.below(kOtherExts.size())];
    add_resource(sample_dir() + "/doc" + std::to_string(i) + "." +
                     std::string(ext),
                 ContentType::kOther,
                 clamp_size(rng.lognormal(shape.other_size_mu,
                                          shape.other_size_sigma)));
  }

  // --- HREF links ----------------------------------------------------------
  for (const auto page_idx : pages) {
    const auto& page_path = resources_[page_idx].path;
    const auto slash = page_path.find_last_of('/');
    const std::string dir = page_path.substr(0, slash);
    const auto& local = pages_by_dir[dir];
    const auto n_links = rng.poisson(shape.links_per_page_mean);
    std::vector<std::uint32_t> links;
    for (std::uint64_t j = 0; j < n_links; ++j) {
      std::uint32_t target = 0;
      if (rng.chance(shape.link_same_dir_prob) && local.size() > 1) {
        target = local[rng.below(local.size())];
      } else {
        target = pages[rng.below(pages.size())];
      }
      if (target != page_idx &&
          std::find(links.begin(), links.end(), target) == links.end()) {
        links.push_back(target);
      }
    }
    resources_[page_idx].links = std::move(links);
  }

  // --- popularity ordering ---------------------------------------------------
  // Index pages (root and top-level) keep the best ranks; remaining pages
  // are shuffled so popularity is independent of creation order.
  pages_by_popularity_ = pages;
  const std::size_t n_index = 1 + static_cast<std::size_t>(std::min(
                                     shape.top_dirs,
                                     static_cast<int>(pages.size()) - 1));
  for (std::size_t i = pages_by_popularity_.size(); i > n_index + 1; --i) {
    const auto j = n_index + rng.below(i - n_index);
    std::swap(pages_by_popularity_[i - 1], pages_by_popularity_[j]);
  }

  // --- modification processes -------------------------------------------------
  for (auto& res : resources_) {
    res.created = {-static_cast<util::Seconds>(rng.below(30 * util::kDay))};
    const double interval = rng.chance(shape.hot_change_frac)
                                ? shape.hot_change_interval
                                : shape.cold_change_interval;
    double t = rng.exponential(interval);
    while (t < static_cast<double>(duration)) {
      res.changes.push_back({static_cast<util::Seconds>(t)});
      t += rng.exponential(interval);
    }
  }
}

std::uint32_t SiteModel::index_of(std::string_view path) const {
  const auto it = index_.find(std::string(path));
  return it == index_.end() ? static_cast<std::uint32_t>(resources_.size())
                            : it->second;
}

util::TimePoint SiteModel::last_modified(std::uint32_t idx,
                                         util::TimePoint t) const {
  PW_EXPECT(idx < resources_.size());
  const auto& changes = resources_[idx].changes;
  const auto it = std::upper_bound(changes.begin(), changes.end(), t);
  if (it == changes.begin()) return resources_[idx].created;
  return *(it - 1);
}

bool SiteModel::modified_between(std::uint32_t idx, util::TimePoint since,
                                 util::TimePoint now) const {
  PW_EXPECT(idx < resources_.size());
  const auto& changes = resources_[idx].changes;
  const auto it = std::upper_bound(changes.begin(), changes.end(), since);
  return it != changes.end() && *it <= now;
}

const SiteModel* SyntheticWorkload::site_for(std::string_view host) const {
  for (const auto& site : sites) {
    if (site.host() == host) return &site;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Browsing simulation

namespace {

// Per-client transient state shared across that client's sessions.
struct ClientState {
  // (site index << 32 | resource index) -> Last-Modified of the copy the
  // client holds. Used to decide 200 vs 304.
  std::unordered_map<std::uint64_t, std::int64_t> cache;
};

class BrowseSimulator {
 public:
  BrowseSimulator(const std::vector<SiteModel>& sites,
                  const BrowseShape& shape, util::Rng& rng, Trace& trace)
      : sites_(sites), shape_(shape), rng_(rng), trace_(trace) {
    page_zipfs_.reserve(sites.size());
    for (const auto& site : sites) {
      page_zipfs_.emplace_back(
          std::max<std::size_t>(1, site.pages_by_popularity().size()),
          shape.page_skew);
    }
  }

  void run_until_target() {
    std::uint64_t next_client = 0;
    // Lognormal session counts: mean = sessions_per_client_mean, heavy
    // upper tail (crawlers, proxies, office gateways).
    const double sigma = shape_.sessions_sigma;
    const double mu =
        std::log(std::max(0.05, shape_.sessions_per_client_mean)) -
        sigma * sigma / 2.0;
    while (trace_.size() < shape_.target_requests) {
      auto client = next_client++;
      if (shape_.client_pool > 0) client %= shape_.client_pool;
      const auto sessions = static_cast<std::uint64_t>(
          std::ceil(rng_.lognormal(mu, sigma)));
      for (std::uint64_t s = 0;
           s < sessions && trace_.size() < shape_.target_requests; ++s) {
        run_session(pick_site(), client);
      }
    }
    trace_.sort_by_time();
  }

  void run_session(std::size_t site_idx, std::uint64_t client) {
    const auto start = static_cast<double>(
        rng_.below(static_cast<std::uint64_t>(shape_.duration)));
    double now = start;

    // A handful of clients disable inline images / have no cache; derive
    // these stable per-client traits from the client id.
    const auto trait = util::mix64(client * 0x9e37 + 17);
    const bool fetch_images =
        static_cast<double>(trait & 0xffff) / 65536.0 < shape_.image_fetch_prob;
    const bool has_cache = static_cast<double>((trait >> 16) & 0xffff) /
                               65536.0 <
                           shape_.client_cache_prob;

    if (shape_.post_fraction > 0 && rng_.chance(shape_.post_fraction)) {
      run_post_session(site_idx, client, now);
      return;
    }

    const auto& site = sites_[site_idx];
    if (site.pages_by_popularity().empty()) return;
    // A visit, plus possible return visits later the same day (the source
    // of the 5-minute-to-2-hour re-access band).
    for (int visit = 0; visit < 3; ++visit) {
      const auto pages = rng_.poisson(shape_.pages_per_session_mean) + 1;
      std::uint32_t page = pick_page(site_idx);
      for (std::uint64_t v = 0; v < pages; ++v) {
        if (now >= static_cast<double>(shape_.duration)) return;
        if (shape_.other_jump_prob > 0 &&
            rng_.chance(shape_.other_jump_prob)) {
          const auto other = pick_other(site_idx);
          if (other != kNoResource) {
            emit(site_idx, client, other, now, has_cache, Method::kGet);
            now += rng_.lognormal(shape_.think_mu, shape_.think_sigma);
            continue;
          }
        }
        emit(site_idx, client, page, now, has_cache, Method::kGet);
        if (fetch_images) {
          for (const auto img : site.resource(page).embedded) {
            const double gap =
                0.05 + rng_.uniform() * shape_.embedded_gap_max;
            emit(site_idx, client, img, now + gap, has_cache, Method::kGet);
          }
        }
        now += rng_.lognormal(shape_.think_mu, shape_.think_sigma);
        page = next_page(site_idx, page);
      }
      if (!rng_.chance(shape_.revisit_prob)) break;
      now += rng_.exponential(shape_.revisit_delay_mean);
    }
  }

 private:
  static constexpr std::uint32_t kNoResource = 0xffffffffu;

  std::size_t pick_site() {
    if (sites_.size() == 1) return 0;
    return site_zipf_ ? (*site_zipf_)(rng_) : rng_.below(sites_.size());
  }

 public:
  // Zipf site popularity for multi-site (client-trace) generation.
  void set_site_sampler(util::ZipfSampler sampler) {
    site_zipf_.emplace(std::move(sampler));
  }

 private:
  std::uint32_t pick_page(std::size_t site_idx) {
    const auto& pop = sites_[site_idx].pages_by_popularity();
    return pop[page_zipfs_[site_idx](rng_) % pop.size()];
  }

  std::uint32_t pick_other(std::size_t site_idx) {
    // Uniform over non-HTML, non-image resources; scan-sample a few tries.
    const auto& res = sites_[site_idx].resources();
    for (int tries = 0; tries < 8; ++tries) {
      const auto idx = static_cast<std::uint32_t>(rng_.below(res.size()));
      if (res[idx].type == ContentType::kOther) return idx;
    }
    return kNoResource;
  }

  std::uint32_t next_page(std::size_t site_idx, std::uint32_t page) {
    const auto& links = sites_[site_idx].resource(page).links;
    if (!links.empty() && rng_.chance(shape_.follow_link_prob)) {
      return links[rng_.below(links.size())];
    }
    return pick_page(site_idx);
  }

  void run_post_session(std::size_t site_idx, std::uint64_t client,
                        double now) {
    const auto n = 1 + rng_.poisson(shape_.pages_per_session_mean);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto res = pick_page(site_idx);
      emit(site_idx, client, res, now, /*has_cache=*/false, Method::kPost);
      now += rng_.exponential(20.0);
    }
  }

  void emit(std::size_t site_idx, std::uint64_t client, std::uint32_t res_idx,
            double when, bool has_cache, Method method) {
    if (when >= static_cast<double>(shape_.duration)) return;
    const auto& site = sites_[site_idx];
    const util::TimePoint t{static_cast<util::Seconds>(when)};
    const auto lm = site.last_modified(res_idx, t);

    Request r;
    r.time = t;
    r.method = method;
    r.last_modified = lm.value;
    const auto key =
        (static_cast<std::uint64_t>(site_idx) << 32) | res_idx;
    auto& cache = clients_[client].cache;
    if (method == Method::kGet && has_cache) {
      const auto it = cache.find(key);
      if (it != cache.end() && it->second >= lm.value) {
        r.status = 304;
        r.size = 0;
      } else {
        r.status = 200;
        r.size = site.resource(res_idx).size;
        cache[key] = lm.value;
      }
    } else {
      r.status = 200;
      r.size = site.resource(res_idx).size;
    }
    r.source = trace_.sources().intern("client-" + std::to_string(client));
    r.server = trace_.servers().intern(site.host());
    r.path = trace_.paths().intern(site.resource(res_idx).path);
    trace_.add(r);
  }

  const std::vector<SiteModel>& sites_;
  const BrowseShape& shape_;
  util::Rng& rng_;
  Trace& trace_;
  std::vector<util::ZipfSampler> page_zipfs_;
  std::optional<util::ZipfSampler> site_zipf_;
  std::unordered_map<std::uint64_t, ClientState> clients_;
};

}  // namespace

SyntheticWorkload generate_server_log(const SiteShape& site_shape,
                                      const BrowseShape& browse,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  SyntheticWorkload out;
  out.sites.emplace_back(site_shape, browse.duration, rng);
  BrowseSimulator sim(out.sites, browse, rng, out.trace);
  sim.run_until_target();
  return out;
}

SyntheticWorkload generate_client_trace(const MultiSiteShape& multi,
                                        const BrowseShape& browse,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  SyntheticWorkload out;
  out.sites.reserve(static_cast<std::size_t>(multi.sites));
  for (int i = 0; i < multi.sites; ++i) {
    SiteShape shape = multi.base_site;
    shape.host = "site" + std::to_string(i) + ".example.com";
    // Per-site page counts follow a bounded Pareto: a few big sites, a
    // long tail of small ones (matches the client-log observation that a
    // few servers hold most resources).
    const double scale = rng.pareto(multi.size_spread_alpha, 1.0, 60.0);
    shape.pages = std::max(4, static_cast<int>(
                                  static_cast<double>(shape.pages) * scale /
                                  4.0));
    shape.top_dirs = std::max(2, shape.top_dirs * shape.pages /
                                     std::max(1, multi.base_site.pages));
    out.sites.emplace_back(shape, browse.duration, rng);
  }
  BrowseSimulator sim(out.sites, browse, rng, out.trace);
  sim.set_site_sampler(util::ZipfSampler(
      static_cast<std::size_t>(multi.sites), multi.site_skew));
  sim.run_until_target();
  return out;
}

}  // namespace piggyweb::trace

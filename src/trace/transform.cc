#include "trace/transform.h"

#include <vector>

#include "util/expect.h"

namespace piggyweb::trace {

Trace filter_requests(const Trace& trace,
                      const std::function<bool(const Request&)>& keep) {
  Trace out;
  out.sources() = trace.sources();
  out.servers() = trace.servers();
  out.paths() = trace.paths();
  for (const auto& request : trace.requests()) {
    if (keep(request)) out.add(request);
  }
  return out;
}

Trace slice_by_time(const Trace& trace, util::TimePoint from,
                    util::TimePoint to) {
  return filter_requests(trace, [from, to](const Request& r) {
    return r.time >= from && r.time < to;
  });
}

std::pair<Trace, Trace> split_at_fraction(const Trace& trace,
                                          double fraction) {
  PW_EXPECT(fraction > 0.0 && fraction < 1.0);
  if (trace.empty()) return {Trace{}, Trace{}};
  const auto start = trace.requests().front().time;
  const auto cut =
      start + static_cast<util::Seconds>(
                  fraction * static_cast<double>(trace.span()) + 1);
  return {slice_by_time(trace, start, cut),
          slice_by_time(trace, cut,
                        {trace.requests().back().time.value + 1})};
}

Trace filter_unpopular(const Trace& trace, std::uint64_t min_count) {
  std::vector<std::uint64_t> counts(trace.paths().size(), 0);
  for (const auto& request : trace.requests()) ++counts[request.path];
  return filter_requests(trace, [&counts, min_count](const Request& r) {
    return counts[r.path] >= min_count;
  });
}

Trace filter_source(const Trace& trace, util::InternId source) {
  return filter_requests(
      trace, [source](const Request& r) { return r.source == source; });
}

}  // namespace piggyweb::trace

// Streaming zero-materialization replay (the batch-cursor API).
//
// A TraceView is the evaluator-facing contract over a trace that may or
// may not live in memory: request_count(), stable id->string tables for
// sources/servers/paths, and window(begin, count) — a span of decoded
// Requests valid until the next window() call. The two implementations:
//
//   * MaterializedTraceView wraps a loaded Trace; windows are subspans of
//     the request vector (zero cost) and the string tables are the live
//     InternTables.
//   * StreamingTraceSource drives BinaryTraceReader::read_batch straight
//     off an mmap'd PIGGYTRC container: windows are decoded into one
//     bounded buffer that is reused across calls, and the string tables
//     are views into the mapping — no intermediate Trace, no per-request
//     string copies, memory bounded by the largest window regardless of
//     trace size.
//
// Lifetime rules: a window span is invalidated by the next window() call
// on the same view (materialized views don't actually invalidate, but
// callers must not rely on that). String-table views live as long as the
// TraceView itself.
//
// content_fingerprint() returns trace_content_fingerprint of the
// equivalent materialized trace for either implementation — a streaming
// replay therefore interoperates with checkpoints and manifests exactly
// like a materializing one.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/binary.h"
#include "trace/record.h"
#include "trace/source.h"
#include "util/intern.h"
#include "util/mmap_file.h"

namespace piggyweb::trace {

class TraceView {
 public:
  virtual ~TraceView() = default;

  virtual std::size_t request_count() const = 0;

  // Stable id -> string tables; ids in any window resolve against these.
  virtual util::StringTableView sources() const = 0;
  virtual util::StringTableView servers() const = 0;
  virtual util::StringTableView paths() const = 0;

  // Requests [begin, begin + count); requires begin + count <=
  // request_count(). The span is valid until the next window() call.
  virtual std::span<const Request> window(std::size_t begin,
                                          std::size_t count) = 0;

  // trace_content_fingerprint of the materialized equivalent.
  virtual std::uint64_t content_fingerprint() = 0;
};

// TraceView over an in-memory Trace (borrowed or owned).
class MaterializedTraceView final : public TraceView {
 public:
  // Borrows `trace`; it must outlive the view.
  explicit MaterializedTraceView(const Trace& trace) : trace_(&trace) {}
  // Takes ownership (the open_trace_view CLF/synthetic path).
  explicit MaterializedTraceView(Trace&& trace)
      : owned_(std::make_unique<Trace>(std::move(trace))),
        trace_(owned_.get()) {}

  std::size_t request_count() const override { return trace_->size(); }
  util::StringTableView sources() const override { return trace_->sources(); }
  util::StringTableView servers() const override { return trace_->servers(); }
  util::StringTableView paths() const override { return trace_->paths(); }
  std::span<const Request> window(std::size_t begin,
                                  std::size_t count) override;
  std::uint64_t content_fingerprint() override;

  const Trace& trace() const { return *trace_; }

 private:
  std::unique_ptr<Trace> owned_;
  const Trace* trace_;
  std::optional<std::uint64_t> fingerprint_;  // computed once, cached
};

// TraceView decoding batches straight off an mmap'd PIGGYTRC container.
class StreamingTraceSource final : public TraceView {
 public:
  // Maps `path` and validates the container (full BinaryTraceReader::open
  // validation, including the content fingerprint). Returns nullptr with
  // a message in `error` on any failure.
  static std::unique_ptr<StreamingTraceSource> open(const std::string& path,
                                                    std::string& error);

  std::size_t request_count() const override {
    return reader_.request_count();
  }
  util::StringTableView sources() const override {
    return util::StringTableView(std::span(tables_[0]));
  }
  util::StringTableView servers() const override {
    return util::StringTableView(std::span(tables_[1]));
  }
  util::StringTableView paths() const override {
    return util::StringTableView(std::span(tables_[2]));
  }
  std::span<const Request> window(std::size_t begin,
                                  std::size_t count) override;
  std::uint64_t content_fingerprint() override {
    return reader_.content_fingerprint();
  }

 private:
  StreamingTraceSource() = default;

  util::MmapFile file_;
  BinaryTraceReader reader_;
  // id -> string views into the mapping, decoded once at open.
  std::vector<std::string_view> tables_[3];
  // Reused decode buffer; sized to the largest window requested so far.
  std::vector<Request> buffer_;
};

// TraceView exposing only the first `limit` requests of another view
// (piggyweb_evaluate --limit). Delegates string tables and windows to the
// inner view; content_fingerprint still describes the *full* underlying
// trace, so a limited replay must not be checkpointed against it (the
// tools forbid --limit with --save-state / --load-state).
class LimitedTraceView final : public TraceView {
 public:
  // Borrows `inner`; it must outlive this view.
  LimitedTraceView(TraceView& inner, std::size_t limit);

  std::size_t request_count() const override { return count_; }
  util::StringTableView sources() const override { return inner_->sources(); }
  util::StringTableView servers() const override { return inner_->servers(); }
  util::StringTableView paths() const override { return inner_->paths(); }
  std::span<const Request> window(std::size_t begin,
                                  std::size_t count) override;
  std::uint64_t content_fingerprint() override {
    return inner_->content_fingerprint();
  }

 private:
  TraceView* inner_;
  std::size_t count_;
};

// Open `spec` as a TraceView. Binary containers stream (backing kStream,
// memory bounded by the window size); CLF text and synthetic specs have
// no random-access on-disk representation, so they materialize internally
// — exactly as load_trace would — and are wrapped in an owning
// MaterializedTraceView. `stats` reports what happened, like load_trace.
std::unique_ptr<TraceView> open_trace_view(const std::string& spec,
                                           const TraceSourceOptions& options,
                                           TraceLoadStats& stats,
                                           std::string& error);

}  // namespace piggyweb::trace

// Summary statistics over a trace — the numbers Tables 2 and 3 (and the
// surrounding Appendix A prose) report: request/client/resource counts,
// requests per source, response size moments, Not-Modified share, and the
// concentration statistics ("top 1% of servers held 59% of resources",
// "85% of requests touch <10% of resources").
#pragma once

#include <cstdint>
#include <string>

#include "trace/record.h"

namespace piggyweb::trace {

struct LogStats {
  std::uint64_t requests = 0;
  std::uint64_t distinct_sources = 0;
  std::uint64_t distinct_servers = 0;
  std::uint64_t unique_resources = 0;
  double requests_per_source = 0;
  double mean_response_size = 0;    // over status-200 bodies
  double median_response_size = 0;
  double not_modified_fraction = 0; // 304 share of all requests
  double post_fraction = 0;
  util::Seconds span = 0;

  // Fraction of all requests hitting the most-popular 10% of resources.
  double top10pct_resource_share = 0;
  // Fraction of requests issued by the most-active 10% of sources.
  double top10pct_source_share = 0;
  // Smallest fraction of servers covering half of the resource *accesses*
  // (client traces; 0 for single-server logs).
  double servers_for_half_accesses = 0;
};

LogStats compute_log_stats(const Trace& trace);

// Render one row, matching the layout of the paper's Tables 2/3.
std::string format_server_log_row(const std::string& name,
                                  const LogStats& stats);
std::string format_client_log_row(const std::string& name,
                                  const LogStats& stats);

}  // namespace piggyweb::trace

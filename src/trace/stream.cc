#include "trace/stream.h"

#include <algorithm>
#include <utility>

#include "util/expect.h"

namespace piggyweb::trace {

std::span<const Request> MaterializedTraceView::window(std::size_t begin,
                                                       std::size_t count) {
  PW_EXPECT(begin + count <= trace_->size());
  return std::span(trace_->requests()).subspan(begin, count);
}

std::uint64_t MaterializedTraceView::content_fingerprint() {
  if (!fingerprint_.has_value()) {
    fingerprint_ = trace_content_fingerprint(*trace_);
  }
  return *fingerprint_;
}

std::unique_ptr<StreamingTraceSource> StreamingTraceSource::open(
    const std::string& path, std::string& error) {
  auto mapping = util::MmapFile::open(path, error);
  if (!mapping) return nullptr;
  mapping->advise_sequential();
  auto reader = BinaryTraceReader::open(mapping->bytes(), error);
  if (!reader) {
    error = path + ": " + error;
    return nullptr;
  }
  // make_unique needs a public constructor; the factory is the only maker.
  std::unique_ptr<StreamingTraceSource> source(new StreamingTraceSource());
  source->file_ = std::move(*mapping);
  source->reader_ = *reader;
  for (std::size_t t = 0; t < 3; ++t) {
    source->reader_.decode_string_views(t, source->tables_[t]);
  }
  return source;
}

std::span<const Request> StreamingTraceSource::window(std::size_t begin,
                                                      std::size_t count) {
  PW_EXPECT(begin + count <= reader_.request_count());
  if (buffer_.size() < count) buffer_.resize(count);
  const std::size_t decoded =
      reader_.read_batch(begin, std::span(buffer_).subspan(0, count));
  PW_EXPECT(decoded == count);
  return std::span(std::as_const(buffer_)).subspan(0, count);
}

LimitedTraceView::LimitedTraceView(TraceView& inner, std::size_t limit)
    : inner_(&inner), count_(std::min(limit, inner.request_count())) {}

std::span<const Request> LimitedTraceView::window(std::size_t begin,
                                                  std::size_t count) {
  PW_EXPECT(begin + count <= count_);
  return inner_->window(begin, count);
}

namespace {

// Fully materializing TraceSource formats, wrapped for the view API.
std::unique_ptr<TraceView> open_materialized_view(
    const std::string& spec, const TraceSourceOptions& options,
    TraceLoadStats& stats, std::string& error) {
  Trace trace;
  if (!load_trace(spec, options, trace, stats, error)) return nullptr;
  return std::make_unique<MaterializedTraceView>(std::move(trace));
}

}  // namespace

std::unique_ptr<TraceView> open_trace_view(const std::string& spec,
                                           const TraceSourceOptions& options,
                                           TraceLoadStats& stats,
                                           std::string& error) {
  auto source = open_trace_source(spec, options, error);
  if (source == nullptr) return nullptr;
  if (source->format() != TraceFormat::kBinary) {
    return open_materialized_view(spec, options, stats, error);
  }
  auto streaming = StreamingTraceSource::open(spec, error);
  if (streaming == nullptr) return nullptr;
  stats.format = TraceFormat::kBinary;
  stats.backing = TraceBacking::kStream;
  stats.requests = streaming->request_count();
  stats.skipped_malformed = 0;
  stats.skipped_filtered = 0;
  return streaming;
}

}  // namespace piggyweb::trace

#include "trace/clf.h"

#include <array>
#include <cstdio>
#include <istream>
#include <ostream>

#include "util/date.h"
#include "util/strings.h"

namespace piggyweb::trace {
namespace {

constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

int month_index(std::string_view name) {
  for (int i = 0; i < 12; ++i) {
    if (kMonths[static_cast<std::size_t>(i)] == name) return i;
  }
  return -1;
}

}  // namespace

bool parse_clf_date(std::string_view s, std::int64_t& out) {
  // dd/Mon/yyyy:HH:MM:SS [+-]HHMM
  if (s.size() < 20) return false;
  std::int64_t day = 0, year = 0, hh = 0, mm = 0, ss = 0;
  if (s[2] != '/' || s[6] != '/' || s[11] != ':' || s[14] != ':' ||
      s[17] != ':') {
    return false;
  }
  if (!util::parse_i64(s.substr(0, 2), day)) return false;
  const int mon = month_index(s.substr(3, 3));
  if (mon < 0) return false;
  if (!util::parse_i64(s.substr(7, 4), year)) return false;
  if (!util::parse_i64(s.substr(12, 2), hh)) return false;
  if (!util::parse_i64(s.substr(15, 2), mm)) return false;
  if (!util::parse_i64(s.substr(18, 2), ss)) return false;
  if (day < 1 || day > 31 || hh > 23 || mm > 59 || ss > 60) return false;

  std::int64_t offset = 0;
  const auto zone = util::trim(s.substr(20));
  if (!zone.empty()) {
    if (zone.size() != 5 || (zone[0] != '+' && zone[0] != '-')) return false;
    std::int64_t zh = 0, zm = 0;
    if (!util::parse_i64(zone.substr(1, 2), zh) ||
        !util::parse_i64(zone.substr(3, 2), zm)) {
      return false;
    }
    offset = (zh * 3600 + zm * 60) * (zone[0] == '-' ? -1 : 1);
  }
  const auto days = util::days_from_civil(year, mon + 1, static_cast<int>(day));
  out = days * 86400 + hh * 3600 + mm * 60 + ss - offset;
  return true;
}

std::string format_clf_date(std::int64_t unix_seconds) {
  std::int64_t days = unix_seconds / 86400;
  std::int64_t rem = unix_seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  std::int64_t year = 0;
  int mon = 0, day = 0;
  util::civil_from_days(days, year, mon, day);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%02d/%s/%04lld:%02lld:%02lld:%02lld +0000",
                day, std::string(kMonths[static_cast<std::size_t>(mon - 1)]).c_str(),
                static_cast<long long>(year),
                static_cast<long long>(rem / 3600),
                static_cast<long long>((rem / 60) % 60),
                static_cast<long long>(rem % 60));
  return buf;
}

bool is_uncachable_url(std::string_view path) {
  return path.find("cgi") != std::string_view::npos ||
         path.find('?') != std::string_view::npos;
}

std::optional<ClfEntry> parse_clf_line(std::string_view line) {
  line = util::trim(line);
  if (line.empty()) return std::nullopt;

  // host
  const auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  ClfEntry entry;
  entry.host = std::string(line.substr(0, sp1));

  // skip ident + authuser
  const auto bracket = line.find('[', sp1);
  if (bracket == std::string_view::npos) return std::nullopt;
  const auto bracket_end = line.find(']', bracket);
  if (bracket_end == std::string_view::npos) return std::nullopt;
  std::int64_t ts = 0;
  if (!parse_clf_date(line.substr(bracket + 1, bracket_end - bracket - 1),
                      ts)) {
    return std::nullopt;
  }
  entry.time = {ts};

  const auto quote = line.find('"', bracket_end);
  if (quote == std::string_view::npos) return std::nullopt;
  const auto quote_end = line.find('"', quote + 1);
  if (quote_end == std::string_view::npos) return std::nullopt;
  const auto reqline = line.substr(quote + 1, quote_end - quote - 1);
  const auto parts = util::split_trimmed(reqline, ' ');
  if (parts.size() < 2) return std::nullopt;
  if (!parse_method(parts[0], entry.method)) return std::nullopt;
  entry.path = util::normalize_path(parts[1]);

  const auto tail = util::trim(line.substr(quote_end + 1));
  const auto tail_parts = util::split_trimmed(tail, ' ');
  if (tail_parts.empty()) return std::nullopt;
  std::uint64_t status = 0;
  if (!util::parse_u64(tail_parts[0], status) || status > 999) {
    return std::nullopt;
  }
  entry.status = static_cast<std::uint16_t>(status);
  entry.size = 0;
  if (tail_parts.size() > 1 && tail_parts[1] != "-") {
    if (!util::parse_u64(tail_parts[1], entry.size)) return std::nullopt;
  }
  return entry;
}

std::string format_clf_line(const ClfEntry& entry) {
  std::string out;
  out.reserve(96);
  out += entry.host;
  out += " - - [";
  out += format_clf_date(entry.time.value);
  out += "] \"";
  out += method_name(entry.method);
  out += ' ';
  out += entry.path;
  out += " HTTP/1.0\" ";
  out += std::to_string(entry.status);
  out += ' ';
  out += std::to_string(entry.size);
  return out;
}

ClfLoadResult load_clf(std::istream& in, Trace& trace,
                       const ClfLoadOptions& options) {
  ClfLoadResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (util::trim(line).empty()) continue;
    const auto entry = parse_clf_line(line);
    if (!entry) {
      ++result.skipped_malformed;
      continue;
    }
    if (options.drop_uncachable && is_uncachable_url(entry->path)) {
      ++result.skipped_filtered;
      continue;
    }
    if (options.drop_post && entry->method != Method::kGet) {
      ++result.skipped_filtered;
      continue;
    }
    trace.add(entry->time, entry->host, options.server_name, entry->path,
              entry->method, entry->status, entry->size);
    ++result.parsed;
  }
  return result;
}

void write_clf(std::ostream& out, const Trace& trace) {
  for (const auto& r : trace.requests()) {
    ClfEntry entry;
    entry.host = std::string(trace.sources().str(r.source));
    entry.time = r.time;
    entry.method = r.method;
    entry.path = std::string(trace.paths().str(r.path));
    entry.status = r.status;
    entry.size = r.size;
    out << format_clf_line(entry) << '\n';
  }
}

}  // namespace piggyweb::trace

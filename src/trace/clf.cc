#include "trace/clf.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <istream>
#include <ostream>

#include "trace/stream.h"
#include "util/date.h"
#include "util/scan.h"
#include "util/strings.h"

namespace piggyweb::trace {
namespace {

constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

int month_index(std::string_view name) {
  for (int i = 0; i < 12; ++i) {
    if (kMonths[static_cast<std::size_t>(i)] == name) return i;
  }
  return -1;
}

}  // namespace

bool parse_clf_date(std::string_view s, std::int64_t& out) {
  // dd/Mon/yyyy:HH:MM:SS [+-]HHMM
  if (s.size() < 20) return false;
  std::int64_t day = 0, year = 0, hh = 0, mm = 0, ss = 0;
  if (s[2] != '/' || s[6] != '/' || s[11] != ':' || s[14] != ':' ||
      s[17] != ':') {
    return false;
  }
  if (!util::parse_i64(s.substr(0, 2), day)) return false;
  const int mon = month_index(s.substr(3, 3));
  if (mon < 0) return false;
  if (!util::parse_i64(s.substr(7, 4), year)) return false;
  if (!util::parse_i64(s.substr(12, 2), hh)) return false;
  if (!util::parse_i64(s.substr(15, 2), mm)) return false;
  if (!util::parse_i64(s.substr(18, 2), ss)) return false;
  if (day < 1 || day > 31 || hh > 23 || mm > 59 || ss > 60) return false;

  std::int64_t offset = 0;
  const auto zone = util::trim(s.substr(20));
  if (!zone.empty()) {
    if (zone.size() != 5 || (zone[0] != '+' && zone[0] != '-')) return false;
    std::int64_t zh = 0, zm = 0;
    if (!util::parse_i64(zone.substr(1, 2), zh) ||
        !util::parse_i64(zone.substr(3, 2), zm)) {
      return false;
    }
    offset = (zh * 3600 + zm * 60) * (zone[0] == '-' ? -1 : 1);
  }
  const auto days = util::days_from_civil(year, mon + 1, static_cast<int>(day));
  out = days * 86400 + hh * 3600 + mm * 60 + ss - offset;
  return true;
}

std::string format_clf_date(std::int64_t unix_seconds) {
  std::int64_t days = unix_seconds / 86400;
  std::int64_t rem = unix_seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  std::int64_t year = 0;
  int mon = 0, day = 0;
  util::civil_from_days(days, year, mon, day);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%02d/%s/%04lld:%02lld:%02lld:%02lld +0000",
                day, std::string(kMonths[static_cast<std::size_t>(mon - 1)]).c_str(),
                static_cast<long long>(year),
                static_cast<long long>(rem / 3600),
                static_cast<long long>((rem / 60) % 60),
                static_cast<long long>(rem % 60));
  return buf;
}

bool is_uncachable_url(std::string_view path) {
  return path.find("cgi") != std::string_view::npos ||
         path.find('?') != std::string_view::npos;
}

namespace {

// Pops the next space/tab-separated token off `s` (empty if exhausted) —
// split_trimmed without the vector.
std::string_view next_token(std::string_view& s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string_view::npos) {
    s = {};
    return {};
  }
  auto end = s.find_first_of(" \t", begin);
  if (end == std::string_view::npos) end = s.size();
  const auto token = s.substr(begin, end - begin);
  s.remove_prefix(end);
  return token;
}

}  // namespace

bool parse_clf_fields_scalar(std::string_view line, ClfFields& out) {
  line = util::trim(line);
  if (line.empty()) return false;

  // host
  const auto sp1 = util::find_byte_scalar(line, ' ');
  if (sp1 == std::string_view::npos) return false;
  out.host = line.substr(0, sp1);

  // skip ident + authuser
  const auto bracket = util::find_byte_scalar(line, '[', sp1);
  if (bracket == std::string_view::npos) return false;
  const auto bracket_end = util::find_byte_scalar(line, ']', bracket);
  if (bracket_end == std::string_view::npos) return false;
  std::int64_t ts = 0;
  if (!parse_clf_date(line.substr(bracket + 1, bracket_end - bracket - 1),
                      ts)) {
    return false;
  }
  out.time = {ts};

  const auto quote = util::find_byte_scalar(line, '"', bracket_end);
  if (quote == std::string_view::npos) return false;
  const auto quote_end = util::find_byte_scalar(line, '"', quote + 1);
  if (quote_end == std::string_view::npos) return false;
  auto reqline = line.substr(quote + 1, quote_end - quote - 1);
  const auto method_token = next_token(reqline);
  const auto path_token = next_token(reqline);
  if (method_token.empty() || path_token.empty()) return false;
  if (!parse_method(method_token, out.method)) return false;
  util::normalize_path_into(path_token, out.path);

  auto tail = line.substr(quote_end + 1);
  const auto status_token = next_token(tail);
  if (status_token.empty()) return false;
  std::uint64_t status = 0;
  if (!util::parse_u64(status_token, status) || status > 999) return false;
  out.status = static_cast<std::uint16_t>(status);
  out.size = 0;
  const auto size_token = next_token(tail);
  if (!size_token.empty() && size_token != "-") {
    if (!util::parse_u64(size_token, out.size)) return false;
  }
  return true;
}

// Production parser: identical field grammar to the scalar reference, but
// every line-level delimiter (host space, timestamp brackets, request-line
// quotes) is located by the wide scanner, 16 (SSE2) or 8 (SWAR) bytes per
// step. The randomized differential in trace_clf_test pins the two
// implementations together.
bool parse_clf_fields(std::string_view line, ClfFields& out) {
  line = util::trim(line);
  if (line.empty()) return false;

  // host
  const auto sp1 = util::find_byte(line, ' ');
  if (sp1 == std::string_view::npos) return false;
  out.host = line.substr(0, sp1);

  // skip ident + authuser
  const auto bracket = util::find_byte(line, '[', sp1);
  if (bracket == std::string_view::npos) return false;
  const auto bracket_end = util::find_byte(line, ']', bracket);
  if (bracket_end == std::string_view::npos) return false;
  std::int64_t ts = 0;
  if (!parse_clf_date(line.substr(bracket + 1, bracket_end - bracket - 1),
                      ts)) {
    return false;
  }
  out.time = {ts};

  const auto quote = util::find_byte(line, '"', bracket_end);
  if (quote == std::string_view::npos) return false;
  const auto quote_end = util::find_byte(line, '"', quote + 1);
  if (quote_end == std::string_view::npos) return false;
  auto reqline = line.substr(quote + 1, quote_end - quote - 1);
  const auto method_token = next_token(reqline);
  const auto path_token = next_token(reqline);
  if (method_token.empty() || path_token.empty()) return false;
  if (!parse_method(method_token, out.method)) return false;
  util::normalize_path_into(path_token, out.path);

  auto tail = line.substr(quote_end + 1);
  const auto status_token = next_token(tail);
  if (status_token.empty()) return false;
  std::uint64_t status = 0;
  if (!util::parse_u64(status_token, status) || status > 999) return false;
  out.status = static_cast<std::uint16_t>(status);
  out.size = 0;
  const auto size_token = next_token(tail);
  if (!size_token.empty() && size_token != "-") {
    if (!util::parse_u64(size_token, out.size)) return false;
  }
  return true;
}

std::optional<ClfEntry> parse_clf_line(std::string_view line) {
  ClfFields fields;
  if (!parse_clf_fields(line, fields)) return std::nullopt;
  ClfEntry entry;
  entry.host = std::string(fields.host);
  entry.time = fields.time;
  entry.method = fields.method;
  entry.path = std::move(fields.path);
  entry.status = fields.status;
  entry.size = fields.size;
  return entry;
}

std::string format_clf_line(const ClfEntry& entry) {
  std::string out;
  out.reserve(96);
  out += entry.host;
  out += " - - [";
  out += format_clf_date(entry.time.value);
  out += "] \"";
  out += method_name(entry.method);
  out += ' ';
  out += entry.path;
  out += " HTTP/1.0\" ";
  out += std::to_string(entry.status);
  out += ' ';
  out += std::to_string(entry.size);
  return out;
}

ClfLoadResult load_clf(std::istream& in, Trace& trace,
                       const ClfLoadOptions& options) {
  ClfLoadResult result;

  // When the stream is seekable the remaining byte count is knowable;
  // CLF lines run ~60-120 bytes, so bytes/64 over-estimates the request
  // count slightly and one reserve absorbs all vector growth up front.
  if (const auto here = in.tellg(); here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(here);
    if (end != std::istream::pos_type(-1) && end > here) {
      const auto bytes = static_cast<std::uint64_t>(end - here);
      trace.reserve(trace.size() + static_cast<std::size_t>(bytes / 64));
    }
  }

  std::string line;
  ClfFields fields;  // line/path buffers reused across all lines
  while (std::getline(in, line)) {
    if (util::trim(line).empty()) continue;
    if (!parse_clf_fields(line, fields)) {
      ++result.skipped_malformed;
      continue;
    }
    if (options.drop_uncachable && is_uncachable_url(fields.path)) {
      ++result.skipped_filtered;
      continue;
    }
    if (options.drop_post && fields.method != Method::kGet) {
      ++result.skipped_filtered;
      continue;
    }
    trace.add(fields.time, fields.host, options.server_name, fields.path,
              fields.method, fields.status, fields.size);
    ++result.parsed;
  }
  return result;
}

ClfLoadResult load_clf_text(std::string_view text, Trace& trace,
                            const ClfLoadOptions& options) {
  ClfLoadResult result;
  trace.reserve(trace.size() + text.size() / 64);

  ClfFields fields;  // path buffer reused across all lines
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto eol = util::find_byte(text, '\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const auto line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (util::trim(line).empty()) continue;
    if (!parse_clf_fields(line, fields)) {
      ++result.skipped_malformed;
      continue;
    }
    if (options.drop_uncachable && is_uncachable_url(fields.path)) {
      ++result.skipped_filtered;
      continue;
    }
    if (options.drop_post && fields.method != Method::kGet) {
      ++result.skipped_filtered;
      continue;
    }
    trace.add(fields.time, fields.host, options.server_name, fields.path,
              fields.method, fields.status, fields.size);
    ++result.parsed;
  }
  return result;
}

void write_clf(std::ostream& out, const Trace& trace) {
  MaterializedTraceView view(trace);
  write_clf(out, view);
}

void write_clf(std::ostream& out, TraceView& view) {
  const auto sources = view.sources();
  const auto paths = view.paths();
  const auto total = view.request_count();
  constexpr std::size_t kWriteWindow = 4096;
  ClfEntry entry;
  for (std::size_t base = 0; base < total; base += kWriteWindow) {
    const auto count = std::min(kWriteWindow, total - base);
    for (const auto& r : view.window(base, count)) {
      entry.host = std::string(sources.str(r.source));
      entry.time = r.time;
      entry.method = r.method;
      entry.path = std::string(paths.str(r.path));
      entry.status = r.status;
      entry.size = r.size;
      out << format_clf_line(entry) << '\n';
    }
  }
}

}  // namespace piggyweb::trace

#include "trace/binary.h"

#include <bit>
#include <cstring>

#include "persist/codec.h"
#include "util/expect.h"
#include "util/hash.h"

namespace piggyweb::trace {
namespace {

// Canonical section order. The reader requires exactly this layout, which
// makes "same Trace -> same bytes" checkable by comparing whole files.
constexpr std::string_view kSectionNames[] = {
    "header",          "strings.sources", "strings.servers",
    "strings.paths",   "col.time",        "col.source",
    "col.server",      "col.path",        "col.method",
    "col.status",      "col.size",        "col.last_modified",
};
constexpr std::size_t kSectionCount = std::size(kSectionNames);

// Seed for the content fingerprint fold over the non-header sections.
constexpr std::string_view kFingerprintSeed = "piggyweb-trace-columns";

// FNV-1a over the exact byte stream a persist::ByteWriter would produce,
// without materializing it. Mirrors ByteWriter's little-endian encoding
// method for method; the shared encode_* templates below are instantiated
// over both so the writer and the fingerprint cannot drift apart.
class FnvStream {
 public:
  void u8(std::uint8_t v) { step(v); }
  void u16(std::uint16_t v) { words(v, 2); }
  void u32(std::uint32_t v) { words(v, 4); }
  void u64(std::uint64_t v) { words(v, 8); }
  void i64(std::int64_t v) { words(static_cast<std::uint64_t>(v), 8); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    h_ = util::fnv1a(s, h_);
  }

  std::uint64_t value() const { return h_; }

 private:
  void words(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) step(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void step(std::uint8_t b) {
    h_ ^= b;
    h_ *= util::kFnvPrime;
  }
  std::uint64_t h_ = util::kFnvOffset;
};

template <typename Sink>
void encode_string_table(Sink& sink, const util::InternTable& table) {
  sink.u32(static_cast<std::uint32_t>(table.size()));
  for (std::size_t id = 0; id < table.size(); ++id) {
    sink.str(table.str(static_cast<util::InternId>(id)));
  }
}

// One fixed-width column; `put` encodes a single request's cell.
template <typename Sink, typename Put>
void encode_column(Sink& sink, const std::vector<Request>& requests,
                   Put put) {
  for (const Request& r : requests) put(sink, r);
}

// Encodes section payload `index` (1..11; the header is built separately
// because it embeds the fingerprint of the others) into `sink`.
template <typename Sink>
void encode_section(Sink& sink, std::size_t index, const Trace& trace) {
  const std::vector<Request>& reqs = trace.requests();
  switch (index) {
    case 1: encode_string_table(sink, trace.sources()); break;
    case 2: encode_string_table(sink, trace.servers()); break;
    case 3: encode_string_table(sink, trace.paths()); break;
    case 4:
      encode_column(sink, reqs,
                    [](Sink& s, const Request& r) { s.i64(r.time.value); });
      break;
    case 5:
      encode_column(sink, reqs,
                    [](Sink& s, const Request& r) { s.u32(r.source); });
      break;
    case 6:
      encode_column(sink, reqs,
                    [](Sink& s, const Request& r) { s.u32(r.server); });
      break;
    case 7:
      encode_column(sink, reqs,
                    [](Sink& s, const Request& r) { s.u32(r.path); });
      break;
    case 8:
      encode_column(sink, reqs, [](Sink& s, const Request& r) {
        s.u8(static_cast<std::uint8_t>(r.method));
      });
      break;
    case 9:
      encode_column(sink, reqs,
                    [](Sink& s, const Request& r) { s.u16(r.status); });
      break;
    case 10:
      encode_column(sink, reqs,
                    [](Sink& s, const Request& r) { s.u64(r.size); });
      break;
    case 11:
      encode_column(sink, reqs,
                    [](Sink& s, const Request& r) { s.i64(r.last_modified); });
      break;
    default: PW_EXPECT(false);
  }
}

// Unaligned little-endian cell load straight out of a (possibly mapped)
// column; `index` must be in bounds.
template <typename T>
T load_le(std::string_view column, std::size_t index) {
  const char* p = column.data() + index * sizeof(T);
  if constexpr (std::endian::native == std::endian::little) {
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
  } else {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
           << (8 * i);
    }
    return static_cast<T>(v);
  }
}

// Validates the `strings.*` payload structure and returns the string
// count, or false on any malformation.
bool parse_string_table_header(std::string_view payload, std::size_t& count,
                               std::string& error, std::string_view name) {
  persist::ByteReader r(payload);
  const std::uint32_t n = r.u32();
  if (!r.fits(n, 4)) {
    error = std::string(name) + ": string count exceeds section size";
    return false;
  }
  for (std::uint32_t i = 0; i < n; ++i) r.str();
  if (!r.ok() || !r.at_end()) {
    error = std::string(name) + ": malformed string table";
    return false;
  }
  count = n;
  return true;
}

}  // namespace

bool looks_like_binary_trace(std::string_view prefix) {
  return prefix.size() >= kBinaryTraceMagic.size() &&
         prefix.substr(0, kBinaryTraceMagic.size()) == kBinaryTraceMagic;
}

std::uint64_t trace_content_fingerprint(const Trace& trace) {
  std::uint64_t fp = util::fnv1a(kFingerprintSeed);
  for (std::size_t i = 1; i < kSectionCount; ++i) {
    FnvStream stream;
    encode_section(stream, i, trace);
    fp = util::hash_combine(fp, stream.value());
  }
  return fp;
}

std::string serialize_binary_trace(const Trace& trace) {
  PW_EXPECT(trace.sources().size() <= 0xffffffffu &&
            trace.servers().size() <= 0xffffffffu &&
            trace.paths().size() <= 0xffffffffu);
  persist::SnapshotWriter writer;
  {
    persist::ByteWriter header;
    header.u64(trace.size());
    header.u64(trace_content_fingerprint(trace));
    writer.add_section(kSectionNames[0], header.take());
  }
  for (std::size_t i = 1; i < kSectionCount; ++i) {
    persist::ByteWriter payload;
    encode_section(payload, i, trace);
    writer.add_section(kSectionNames[i], payload.take());
  }
  return writer.finish(kBinaryTraceMagic, kBinaryTraceVersion);
}

std::optional<BinaryTraceReader> BinaryTraceReader::open(
    std::string_view file, std::string& error) {
  auto container = persist::SnapshotReader::parse(
      file, error, kBinaryTraceMagic, kBinaryTraceVersion);
  if (!container) return std::nullopt;

  // Canonical layout: exactly the known sections, in order.
  const auto& sections = container->sections();
  if (sections.size() != kSectionCount) {
    error = "trace container has wrong section count";
    return std::nullopt;
  }
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    if (sections[i].name != kSectionNames[i]) {
      error = "trace container section \"" + sections[i].name +
              "\" out of place (expected \"" + std::string(kSectionNames[i]) +
              "\")";
      return std::nullopt;
    }
  }

  BinaryTraceReader reader;
  {
    persist::ByteReader header(sections[0].payload);
    reader.count_ = header.u64();
    reader.fingerprint_ = header.u64();
    if (!header.ok() || !header.at_end()) {
      error = "malformed trace header section";
      return std::nullopt;
    }
  }
  // A column cell is at most 8 bytes, so a count the file cannot possibly
  // back is rejected here before any count*width arithmetic.
  if (reader.count_ > file.size()) {
    error = "trace header request count exceeds file size";
    return std::nullopt;
  }

  for (std::size_t i = 0; i < 3; ++i) {
    reader.strings_[i] = sections[1 + i].payload;
    if (!parse_string_table_header(reader.strings_[i],
                                   reader.string_counts_[i], error,
                                   kSectionNames[1 + i])) {
      return std::nullopt;
    }
  }

  const struct {
    std::string_view* column;
    std::size_t width;
  } columns[] = {
      {&reader.col_time_, 8},   {&reader.col_source_, 4},
      {&reader.col_server_, 4}, {&reader.col_path_, 4},
      {&reader.col_method_, 1}, {&reader.col_status_, 2},
      {&reader.col_size_, 8},   {&reader.col_last_modified_, 8},
  };
  for (std::size_t i = 0; i < std::size(columns); ++i) {
    const std::string_view payload = sections[4 + i].payload;
    if (payload.size() != reader.count_ * columns[i].width) {
      error = "column \"" + sections[4 + i].name +
              "\" length does not match the header request count";
      return std::nullopt;
    }
    *columns[i].column = payload;
  }

  // Cell-level validation: every id must resolve against its string table
  // and every method byte must be a known enum value, so downstream code
  // can index without bounds checks.
  for (std::size_t i = 0; i < reader.count_; ++i) {
    if (load_le<std::uint32_t>(reader.col_source_, i) >=
            reader.string_counts_[0] ||
        load_le<std::uint32_t>(reader.col_server_, i) >=
            reader.string_counts_[1] ||
        load_le<std::uint32_t>(reader.col_path_, i) >=
            reader.string_counts_[2]) {
      error = "trace column references an out-of-range string id";
      return std::nullopt;
    }
    if (load_le<std::uint8_t>(reader.col_method_, i) >
        static_cast<std::uint8_t>(Method::kHead)) {
      error = "trace column holds an unknown method value";
      return std::nullopt;
    }
  }

  // The header fingerprint must equal the fold over the stored payloads —
  // the same fold trace_content_fingerprint computes from a live Trace.
  std::uint64_t fp = util::fnv1a(kFingerprintSeed);
  for (std::size_t i = 1; i < kSectionCount; ++i) {
    fp = util::hash_combine(fp, util::fnv1a(sections[i].payload));
  }
  if (fp != reader.fingerprint_) {
    error = "trace header fingerprint does not match section contents";
    return std::nullopt;
  }

  return reader;
}

std::size_t BinaryTraceReader::read_batch(std::size_t begin,
                                          std::span<Request> out) const {
  if (begin >= count_) return 0;
  const std::size_t n = std::min(out.size(), count_ - begin);
  for (std::size_t i = 0; i < n; ++i) {
    Request& r = out[i];
    const std::size_t row = begin + i;
    r.time.value = load_le<std::int64_t>(col_time_, row);
    r.source = load_le<std::uint32_t>(col_source_, row);
    r.server = load_le<std::uint32_t>(col_server_, row);
    r.path = load_le<std::uint32_t>(col_path_, row);
    r.method = static_cast<Method>(load_le<std::uint8_t>(col_method_, row));
    r.status = load_le<std::uint16_t>(col_status_, row);
    r.size = load_le<std::uint64_t>(col_size_, row);
    r.last_modified = load_le<std::int64_t>(col_last_modified_, row);
  }
  return n;
}

void BinaryTraceReader::decode_string_views(
    std::size_t table, std::vector<std::string_view>& out) const {
  PW_EXPECT(table < 3);
  persist::ByteReader r(strings_[table]);
  const std::uint32_t n = r.u32();
  out.clear();
  out.reserve(n);
  // open() validated the table structure, so every str() read succeeds.
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.str());
  PW_EXPECT(r.ok() && r.at_end());
}

bool BinaryTraceReader::load(Trace& out, std::string& error) const {
  PW_EXPECT(out.empty() && out.sources().empty() && out.servers().empty() &&
            out.paths().empty());
  util::InternTable* const tables[3] = {&out.sources(), &out.servers(),
                                        &out.paths()};
  for (std::size_t t = 0; t < 3; ++t) {
    persist::ByteReader r(strings_[t]);
    const std::uint32_t n = r.u32();
    tables[t]->reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      // open() validated the structure; a failure here can only be a
      // duplicate string, which would renumber every id after it.
      if (tables[t]->intern(r.str()) != i) {
        error = std::string(kSectionNames[1 + t]) +
                ": duplicate string in table";
        return false;
      }
    }
  }

  std::vector<Request>& reqs = out.requests();
  reqs.resize(count_);
  // Column-major fill: one sequential pass per column over the mapping.
  for (std::size_t i = 0; i < count_; ++i)
    reqs[i].time.value = load_le<std::int64_t>(col_time_, i);
  for (std::size_t i = 0; i < count_; ++i)
    reqs[i].source = load_le<std::uint32_t>(col_source_, i);
  for (std::size_t i = 0; i < count_; ++i)
    reqs[i].server = load_le<std::uint32_t>(col_server_, i);
  for (std::size_t i = 0; i < count_; ++i)
    reqs[i].path = load_le<std::uint32_t>(col_path_, i);
  for (std::size_t i = 0; i < count_; ++i)
    reqs[i].method = static_cast<Method>(load_le<std::uint8_t>(col_method_, i));
  for (std::size_t i = 0; i < count_; ++i)
    reqs[i].status = load_le<std::uint16_t>(col_status_, i);
  for (std::size_t i = 0; i < count_; ++i)
    reqs[i].size = load_le<std::uint64_t>(col_size_, i);
  for (std::size_t i = 0; i < count_; ++i)
    reqs[i].last_modified = load_le<std::int64_t>(col_last_modified_, i);
  return true;
}

bool load_binary_trace(std::string_view file, Trace& out,
                       std::string& error) {
  auto reader = BinaryTraceReader::open(file, error);
  if (!reader) return false;
  return reader->load(out, error);
}

}  // namespace piggyweb::trace

// Columnar binary trace container ("PIGGYTRC").
//
// The CLF text parse dominates replay time at scale; this format stores a
// Trace as fixed-width little-endian columns plus the three intern string
// tables, inside the same section/checksum envelope the durable snapshots
// use (persist/codec.h, magic "PIGGYTRC" instead of "PIGGYSNP"):
//
//   header               u64 request_count, u64 content_fingerprint
//   strings.sources      u32 count, count x (u32 len + bytes), id order
//   strings.servers      (same)
//   strings.paths        (same)
//   col.time             request_count x i64   seconds since epoch
//   col.source           request_count x u32   intern id
//   col.server           request_count x u32   intern id
//   col.path             request_count x u32   intern id
//   col.method           request_count x u8    Method enum value
//   col.status           request_count x u16
//   col.size             request_count x u64
//   col.last_modified    request_count x i64   (-1 = unknown)
//
// The writer is canonical: the same Trace (same requests in the same
// order, same intern tables) always produces the same bytes, so the
// whole-file checksum doubles as a trace identity and the content
// fingerprint (a fold over the section payloads, exposed as
// trace_content_fingerprint) is computable from either the file or an
// in-memory Trace — that is what binds eval checkpoints to a trace
// independently of which format it was loaded from.
//
// BinaryTraceReader is zero-copy: it borrows the file bytes (typically a
// util::MmapFile region), validates structure/checksums/id-bounds once at
// open, and then serves request batches straight from the mapped columns.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.h"

namespace piggyweb::trace {

inline constexpr std::string_view kBinaryTraceMagic = "PIGGYTRC";
inline constexpr std::uint32_t kBinaryTraceVersion = 1;

// True when `prefix` (the first bytes of a file) starts with the binary
// trace magic — the TraceSource auto-sniff.
bool looks_like_binary_trace(std::string_view prefix);

// Canonical serialization of a trace (see format comment above).
std::string serialize_binary_trace(const Trace& trace);

// Content fingerprint over the canonical column encoding — equal for a
// Trace loaded from CLF and the same Trace round-tripped through the
// binary container. Stored in (and verified against) the file header.
std::uint64_t trace_content_fingerprint(const Trace& trace);

// Zero-copy reader over a serialized binary trace. The buffer passed to
// open() must outlive the reader and every batch it decodes.
class BinaryTraceReader {
 public:
  // Validates the container (magic, version, section checksums), the
  // section set, column lengths against the header count, string-table
  // structure, id bounds of every source/server/path/method cell, and the
  // header fingerprint. Corrupt input of any kind is rejected with a
  // message in `error`, never crashed on.
  static std::optional<BinaryTraceReader> open(std::string_view file,
                                               std::string& error);

  std::size_t request_count() const { return count_; }
  std::uint64_t content_fingerprint() const { return fingerprint_; }
  std::size_t source_count() const { return string_counts_[0]; }
  std::size_t server_count() const { return string_counts_[1]; }
  std::size_t path_count() const { return string_counts_[2]; }

  // Decode up to out.size() requests starting at request index `begin`,
  // straight from the mapped columns; returns the number decoded (0 at
  // end of trace).
  std::size_t read_batch(std::size_t begin, std::span<Request> out) const;

  // Decode string table `table` (0 sources, 1 servers, 2 paths) as id ->
  // view entries pointing into the open()ed buffer — no copies. The views
  // are valid for the buffer's lifetime. This is the id->string surface
  // the streaming replay path hands to consumers in place of a live
  // InternTable.
  void decode_string_views(std::size_t table,
                           std::vector<std::string_view>& out) const;

  // Materialize the whole trace (string tables in id order, then all
  // requests column-major) into the empty trace `out`. Fails only on a
  // duplicate string inside one table (which would shift intern ids).
  bool load(Trace& out, std::string& error) const;

 private:
  std::size_t count_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::string_view strings_[3];  // sources/servers/paths payloads
  std::size_t string_counts_[3] = {0, 0, 0};
  std::string_view col_time_;
  std::string_view col_source_;
  std::string_view col_server_;
  std::string_view col_path_;
  std::string_view col_method_;
  std::string_view col_status_;
  std::string_view col_size_;
  std::string_view col_last_modified_;
};

// Convenience: open + load over one buffer.
bool load_binary_trace(std::string_view file, Trace& out, std::string& error);

}  // namespace piggyweb::trace

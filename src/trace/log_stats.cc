#include "trace/log_stats.h"

#include <algorithm>
#include <cstdio>

#include "util/stats.h"

namespace piggyweb::trace {

LogStats compute_log_stats(const Trace& trace) {
  LogStats s;
  s.requests = trace.size();
  s.span = trace.span();
  if (trace.empty()) return s;

  util::FrequencyTable by_resource;
  util::FrequencyTable by_source;
  util::FrequencyTable accesses_by_server;
  util::Quantiles sizes;
  std::uint64_t not_modified = 0;
  std::uint64_t posts = 0;
  util::RunningStats size_stats;

  for (const auto& r : trace.requests()) {
    by_resource.add(r.path);
    by_source.add(r.source);
    accesses_by_server.add(r.server);
    if (r.status == 304) ++not_modified;
    if (r.method == Method::kPost) ++posts;
    if (r.status == 200 && r.size > 0) {
      sizes.add(static_cast<double>(r.size));
      size_stats.add(static_cast<double>(r.size));
    }
  }

  s.distinct_sources = by_source.distinct();
  s.distinct_servers = accesses_by_server.distinct();
  s.unique_resources = by_resource.distinct();
  s.requests_per_source =
      static_cast<double>(s.requests) /
      static_cast<double>(std::max<std::uint64_t>(1, s.distinct_sources));
  s.mean_response_size = size_stats.mean();
  s.median_response_size = sizes.empty() ? 0 : sizes.median();
  s.not_modified_fraction =
      static_cast<double>(not_modified) / static_cast<double>(s.requests);
  s.post_fraction =
      static_cast<double>(posts) / static_cast<double>(s.requests);

  // Share of requests covered by the top 10% of resources / sources.
  const auto covered_by_top = [](const util::FrequencyTable& table,
                                 double top_fraction) {
    const auto ranked = table.by_rank();
    if (ranked.empty()) return 0.0;
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(ranked.size()) *
                                    top_fraction));
    std::uint64_t covered = 0;
    for (std::size_t i = 0; i < keep; ++i) covered += table.count(ranked[i]);
    return static_cast<double>(covered) /
           static_cast<double>(table.total());
  };
  s.top10pct_resource_share = covered_by_top(by_resource, 0.10);
  s.top10pct_source_share = covered_by_top(by_source, 0.10);
  s.servers_for_half_accesses =
      s.distinct_servers > 1 ? accesses_by_server.coverage_share(0.5) : 0.0;
  return s;
}

std::string format_server_log_row(const std::string& name,
                                  const LogStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-10s %10llu %10llu %12.2f %12llu",
                name.c_str(),
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.distinct_sources),
                stats.requests_per_source,
                static_cast<unsigned long long>(stats.unique_resources));
  return buf;
}

std::string format_client_log_row(const std::string& name,
                                  const LogStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-16s %10llu %10llu %12llu",
                name.c_str(),
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.distinct_servers),
                static_cast<unsigned long long>(stats.unique_resources));
  return buf;
}

}  // namespace piggyweb::trace

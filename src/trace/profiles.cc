#include "trace/profiles.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace piggyweb::trace {
namespace {

std::size_t scaled(double base, double scale, std::size_t floor_value) {
  const auto v = static_cast<std::size_t>(base * scale);
  return std::max(v, floor_value);
}

// Scale the site's content proportionally to the request scale, so
// per-resource access intensity (requests/resource — what locality and
// prediction metrics feed on) matches the paper's logs at every scale.
// The directory tree shrinks sub-linearly so scaled sites keep enough
// structure for the level sweeps.
void scale_site(SiteShape& site, double scale) {
  site.pages = std::max(30, static_cast<int>(site.pages * scale));
  const double tree_scale = std::pow(scale, 0.35);
  site.top_dirs =
      std::max(4, static_cast<int>(site.top_dirs * tree_scale));
  site.subdirs_per_dir =
      std::max(1.0, site.subdirs_per_dir * tree_scale);
}

}  // namespace

LogProfile aiusa_profile(double scale) {
  PW_EXPECT(scale > 0);
  LogProfile p;
  p.name = "aiusa";
  p.seed = 0xA105A;
  p.site.host = "www.amnesty-usa.example.org";
  p.site.top_dirs = 10;
  p.site.subdirs_per_dir = 2.0;
  p.site.max_depth = 3;
  p.site.pages = 300;  // with images/docs this lands near 1102 resources
  p.site.images_per_page_mean = 3.2;
  p.site.image_reuse_prob = 0.35;
  p.site.links_per_page_mean = 5.0;
  p.site.other_resources_frac = 0.15;
  scale_site(p.site, scale);
  p.browse.target_requests = scaled(180'324, scale, 2'000);
  p.browse.sessions_per_client_mean = 1.0;  // -> ~23.6 req/source
  p.browse.duration = 28 * util::kDay;
  p.browse.pages_per_session_mean = 2.0;
  p.browse.revisit_prob = 0.22;  // activists visit once; few return soon
  return p;
}

LogProfile marimba_profile(double scale) {
  PW_EXPECT(scale > 0);
  LogProfile p;
  p.name = "marimba";
  p.seed = 0x3A51B;
  p.site.host = "trans.marimba.example.com";
  p.site.top_dirs = 3;
  p.site.subdirs_per_dir = 0.5;
  p.site.max_depth = 2;
  p.site.pages = 80;  // ~94 resources once images/others are added
  p.site.images_per_page_mean = 0.1;
  p.site.links_per_page_mean = 0.5;
  p.site.other_resources_frac = 0.1;
  // Marimba served a tiny fixed set of transfer endpoints: the site does
  // not shrink with scale (it is already minimal).
  p.browse.target_requests = scaled(222'393, scale, 2'000);
  p.browse.sessions_per_client_mean = 2.8;  // -> ~9.2 req/source
  p.browse.duration = 21 * util::kDay;
  p.browse.pages_per_session_mean = 1.5;
  p.browse.post_fraction = 0.97;  // "practically all requests using POST"
  p.browse.image_fetch_prob = 0.1;
  p.browse.follow_link_prob = 0.1;
  p.browse.revisit_prob = 0.15;
  return p;
}

LogProfile apache_profile(double scale) {
  PW_EXPECT(scale > 0);
  LogProfile p;
  p.name = "apache";
  p.seed = 0xA9AC4E;
  p.site.host = "www.apache.example.org";
  p.site.top_dirs = 8;
  p.site.subdirs_per_dir = 2.5;
  p.site.max_depth = 3;
  p.site.pages = 220;  // lands near 788 resources
  p.site.images_per_page_mean = 1.4;
  p.site.links_per_page_mean = 6.0;
  p.site.other_resources_frac = 0.5;  // tarballs and docs
  p.site.other_size_mu = 12.0;        // distribution archives are large
  scale_site(p.site, scale);
  p.browse.target_requests = scaled(2'916'549, scale, 5'000);
  p.browse.sessions_per_client_mean = 1.0;  // -> ~10.7 req/source
  p.browse.duration = 49 * util::kDay;
  p.browse.pages_per_session_mean = 1.0;
  p.browse.other_jump_prob = 0.12;  // downloads are a big share
  p.browse.revisit_prob = 0.55;     // developers keep coming back
  return p;
}

LogProfile sun_profile(double scale) {
  PW_EXPECT(scale > 0);
  LogProfile p;
  p.name = "sun";
  p.seed = 0x50BEA;
  p.site.host = "www.sun.example.com";
  p.site.top_dirs = 18;
  p.site.subdirs_per_dir = 6.0;
  p.site.max_depth = 4;
  p.site.pages = 9'000;  // ~29 k resources once images/docs are added
  p.site.images_per_page_mean = 1.8;
  p.site.links_per_page_mean = 7.0;
  p.site.other_resources_frac = 0.25;
  p.site.hot_change_frac = 0.08;  // busy corporate site, frequent updates
  scale_site(p.site, scale);
  p.browse.target_requests = scaled(13'037'895, scale, 10'000);
  p.browse.sessions_per_client_mean = 1.5;  // -> ~59.7 req/source
  p.browse.duration = 9 * util::kDay;
  p.browse.pages_per_session_mean = 6.0;
  p.browse.revisit_prob = 0.45;  // heavy repeat visitors (59.7 req/source)
  return p;
}

LogProfile att_client_profile(double scale) {
  PW_EXPECT(scale > 0);
  LogProfile p;
  p.name = "att_client";
  p.is_client_trace = true;
  p.seed = 0xA77C1;
  p.multi.sites = std::max(60, static_cast<int>(18'005.0 * scale));
  p.multi.base_site.pages = 110;
  p.multi.base_site.top_dirs = 6;
  p.multi.base_site.max_depth = 5;  // Figure 1 looks at levels 0-4
  p.multi.base_site.subdirs_per_dir = 3.5;
  p.multi.base_site.deep_spawn_prob = 0.75;  // deep real-world URL trees
  p.multi.base_site.dir_popularity_skew = 0.4;  // content spread widely
  p.multi.base_site.image_same_dir_prob = 0.3;  // 1998-style central /images
  p.multi.base_site.shared_image_pool = 12;
  p.multi.site_skew = 0.65;
  p.browse.target_requests = scaled(1'110'000, scale, 5'000);
  p.browse.sessions_per_client_mean = 1.3;
  p.browse.client_cache_prob = 0.55;  // keeps 304s near the paper's 15-25%
  p.browse.duration = 18 * util::kDay;
  p.browse.pages_per_session_mean = 10.0;
  p.browse.page_skew = 0.55;       // client traces spread wide (2 req/resource)
  p.browse.follow_link_prob = 0.35;
  return p;
}

LogProfile digital_client_profile(double scale) {
  PW_EXPECT(scale > 0);
  LogProfile p;
  p.name = "digital_client";
  p.is_client_trace = true;
  p.seed = 0xD16174;
  p.multi.sites = std::max(80, static_cast<int>(57'832.0 * scale));
  p.multi.base_site.pages = 110;
  p.multi.base_site.top_dirs = 6;
  p.multi.base_site.max_depth = 5;
  p.multi.base_site.subdirs_per_dir = 3.5;
  p.multi.base_site.deep_spawn_prob = 0.75;
  p.multi.base_site.dir_popularity_skew = 0.4;
  p.multi.base_site.image_same_dir_prob = 0.3;
  p.multi.base_site.shared_image_pool = 12;
  p.multi.site_skew = 0.65;
  p.browse.target_requests = scaled(6'410'000, scale, 5'000);
  p.browse.sessions_per_client_mean = 1.4;
  p.browse.client_cache_prob = 0.55;
  p.browse.duration = 7 * util::kDay;
  p.browse.pages_per_session_mean = 10.0;
  p.browse.page_skew = 0.55;
  p.browse.follow_link_prob = 0.35;
  return p;
}

std::vector<LogProfile> all_server_profiles() {
  return {aiusa_profile(), marimba_profile(), apache_profile(),
          sun_profile()};
}

std::optional<LogProfile> profile_by_name(std::string_view name,
                                          double scale) {
  if (name == "aiusa") return aiusa_profile(scale);
  if (name == "marimba") return marimba_profile(scale);
  if (name == "apache") return apache_profile(scale);
  if (name == "sun") return sun_profile(scale);
  if (name == "att_client") return att_client_profile(scale);
  if (name == "digital_client") return digital_client_profile(scale);
  return std::nullopt;
}

std::optional<LogProfile> profile_by_name(std::string_view name) {
  if (name == "aiusa") return aiusa_profile();
  if (name == "marimba") return marimba_profile();
  if (name == "apache") return apache_profile();
  if (name == "sun") return sun_profile();
  if (name == "att_client") return att_client_profile();
  if (name == "digital_client") return digital_client_profile();
  return std::nullopt;
}

SyntheticWorkload generate(const LogProfile& profile) {
  if (profile.is_client_trace) {
    return generate_client_trace(profile.multi, profile.browse, profile.seed);
  }
  return generate_server_log(profile.site, profile.browse, profile.seed);
}

}  // namespace piggyweb::trace

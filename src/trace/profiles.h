// Per-log synthetic profiles.
//
// Each profile targets the published characteristics of one of the paper's
// logs (Appendix A, Tables 2 and 3), scaled down by `scale` in request
// count while preserving requests-per-source, resource counts, popularity
// skew and session structure — the quantities the paper's metrics depend
// on. scale = 1.0 reproduces the paper's request counts (only sensible for
// the smaller logs); the benches default to scales that keep runtimes in
// seconds on one core.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/synthetic.h"

namespace piggyweb::trace {

struct LogProfile {
  std::string name;
  bool is_client_trace = false;
  SiteShape site;            // server logs
  MultiSiteShape multi;      // client traces
  BrowseShape browse;
  std::uint64_t seed = 0;
};

// Server logs (Table 3) ------------------------------------------------------

// AIUSA: 28 days, 180 k requests, 7.6 k clients, 23.6 req/source, 1102
// resources. Small activist site, modest fan-out.
LogProfile aiusa_profile(double scale = 1.0);

// Marimba: 21 days, 222 k requests, 24 k clients, 9.2 req/source, 94
// resources, almost all POST — the paper notes its volumes predict poorly.
LogProfile marimba_profile(double scale = 1.0);

// Apache: 49 days, 2.9 M requests, 272 k clients, 10.7 req/source, 788
// resources. Default scale keeps ~10.7 req/source.
LogProfile apache_profile(double scale = 0.1);

// Sun: 9 days, 13 M requests, 218 k clients, 59.7 req/source, 29436
// resources. The largest and busiest site.
LogProfile sun_profile(double scale = 0.03);

// Client traces (Table 2) ----------------------------------------------------

// AT&T: 18 days, 1.11 M requests, 18 k servers, 521 k unique resources.
LogProfile att_client_profile(double scale = 0.15);

// Digital: 7 days, 6.41 M requests, 57.8 k servers, 2.08 M resources.
LogProfile digital_client_profile(double scale = 0.04);

// All server-log profiles at their default scales (AIUSA, Marimba, Apache,
// Sun) — the set iterated by the table/figure benches.
std::vector<LogProfile> all_server_profiles();

// Profile by log name: "aiusa", "marimba", "apache", "sun", "att_client",
// or "digital_client"; nullopt for anything else. The single lookup shared
// by piggyweb_generate and "synthetic:" trace-source specs.
std::optional<LogProfile> profile_by_name(std::string_view name,
                                          double scale);

// Same lookup at each profile's declared default scale.
std::optional<LogProfile> profile_by_name(std::string_view name);

// Generate the workload for a profile.
SyntheticWorkload generate(const LogProfile& profile);

}  // namespace piggyweb::trace

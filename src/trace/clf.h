// Common Log Format (CLF) reader/writer. The 1998 server logs the paper
// used were Apache-style CLF:
//
//   host ident authuser [10/Oct/1998:13:55:36 -0700] "GET /p.html HTTP/1.0" 200 2326
//
// We parse into Trace records (applying the paper's §A cleanup: path
// normalization, dropping "cgi"/query URLs if requested) and can write
// synthetic traces back out as CLF so external tools can consume them.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "trace/record.h"

namespace piggyweb::trace {

class TraceView;

struct ClfEntry {
  std::string host;         // remote client
  util::TimePoint time;     // seconds since Unix epoch
  Method method = Method::kGet;
  std::string path;         // normalized
  std::uint16_t status = 200;
  std::uint64_t size = 0;   // "-" maps to 0
};

// Parse one CLF line. Returns nullopt on malformed input (callers count
// and skip bad lines, the standard posture for real-world logs).
std::optional<ClfEntry> parse_clf_line(std::string_view line);

// Allocation-free parsed form for bulk loading: `host` is a view into the
// input line (valid only until the caller's line buffer changes) and the
// normalized path is written into the reusable `path` buffer. Parsing a
// line performs no heap allocation once `path` has grown to the longest
// path seen. Returns false on malformed input, leaving `out` unspecified.
struct ClfFields {
  std::string_view host;
  util::TimePoint time;
  Method method = Method::kGet;
  std::string path;  // reusable normalized-path buffer
  std::uint16_t status = 200;
  std::uint64_t size = 0;
};
bool parse_clf_fields(std::string_view line, ClfFields& out);

// Reference implementation of parse_clf_fields using one-byte-at-a-time
// scanning. parse_clf_fields itself locates delimiters with the wide
// (SSE2/SWAR) scanner in util/scan.h; the two must agree on every input —
// a randomized differential test enforces it. Exposed for that test and
// for the hot-path microbench.
bool parse_clf_fields_scalar(std::string_view line, ClfFields& out);

// Serialize an entry back to a CLF line (UTC zone).
std::string format_clf_line(const ClfEntry& entry);

// Parse "10/Oct/1998:13:55:36 -0700" to Unix seconds. Exposed for tests.
bool parse_clf_date(std::string_view s, std::int64_t& out);
std::string format_clf_date(std::int64_t unix_seconds);

struct ClfLoadOptions {
  std::string server_name = "server";  // server logs don't name themselves
  bool drop_uncachable = true;   // drop "cgi" substrings and '?' queries (§A)
  bool drop_post = false;        // optionally drop non-GET methods
};

struct ClfLoadResult {
  std::size_t parsed = 0;
  std::size_t skipped_malformed = 0;
  std::size_t skipped_filtered = 0;
};

// Append all lines from `in` to `trace`. Does not sort; call sort_by_time().
ClfLoadResult load_clf(std::istream& in, Trace& trace,
                       const ClfLoadOptions& options = {});

// As load_clf, but over an in-memory buffer (typically an mmap'd log
// file): lines are split with the wide byte scanner and parsed without
// any istream or per-line copy. Behaves exactly like load_clf over the
// same bytes, including blank-line and final-unterminated-line handling.
ClfLoadResult load_clf_text(std::string_view text, Trace& trace,
                            const ClfLoadOptions& options = {});

// Write a trace as CLF lines (server logs: one line per request). The
// TraceView overload walks bounded windows, so a streaming (mmap-backed)
// view converts to CLF without materializing; the Trace overload
// delegates to it and writes identical bytes.
void write_clf(std::ostream& out, const Trace& trace);
void write_clf(std::ostream& out, TraceView& view);

// §A cleanup predicate: true if the URL should be treated as uncachable.
bool is_uncachable_url(std::string_view path);

}  // namespace piggyweb::trace

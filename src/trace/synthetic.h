// Synthetic workload generation.
//
// The paper's evaluation runs over proprietary 1997/98 logs (AT&T and
// Digital client traces; AIUSA, Apache, Marimba and Sun server logs). Those
// are not obtainable, so we generate synthetic equivalents that reproduce
// the structural properties the paper's results depend on:
//
//   * Zipf resource popularity (85% of requests to <10% of resources),
//   * heavy per-source skew (10% of clients producing >50% of requests),
//   * directory-tree structure with content locality (pages and their
//     embedded images and HREF neighbours share directory prefixes),
//   * session-structured client behaviour (page + embedded images within
//     seconds; think times between page views; link-following),
//   * heavy-tailed response sizes (lognormal body, Pareto tail),
//   * per-resource modification processes (hot and cold resources),
//   * If-Modified-Since revalidations producing 304s.
//
// A SiteModel is the server-side ground truth (resources, sizes, types,
// link/embedding structure, modification times); the browsing simulator
// emits a Trace against one or more sites.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/record.h"
#include "util/rng.h"
#include "util/time.h"

namespace piggyweb::trace {

// ---------------------------------------------------------------------------
// Site model

struct SiteShape {
  std::string host = "www.example.com";
  int top_dirs = 12;             // 1-level directories
  double subdirs_per_dir = 3.0;  // mean 2-level subdirectories per top dir
  int max_depth = 3;             // deepest directory nesting level
  double deep_spawn_prob = 0.4;  // chance a dir spawns subdirs below level 2
  int pages = 400;               // HTML pages
  double dir_popularity_skew = 0.8;   // Zipf skew of pages across directories
  double images_per_page_mean = 4.0;  // embedded images per page
  double image_same_dir_prob = 0.75;  // embedded image lives in page's dir
  double image_reuse_prob = 0.5;      // reuse an existing image in that dir
  int shared_image_pool = 8;          // site-wide logos/banners in /images
  double links_per_page_mean = 5.0;   // HREF links per page
  double link_same_dir_prob = 0.7;    // HREF target in same directory
  double other_resources_frac = 0.1;  // pdf/ps/zip as a fraction of pages
  double page_popularity_skew = 0.9;  // Zipf skew over pages
  double html_size_mu = 8.3, html_size_sigma = 1.0;    // ln bytes (~4 KB)
  double image_size_mu = 7.6, image_size_sigma = 1.2;  // ln bytes (~2 KB)
  double other_size_mu = 10.5, other_size_sigma = 1.5; // ln bytes (~36 KB)
  double hot_change_frac = 0.05;      // resources changing ~hourly
  double hot_change_interval = 2.0 * util::kHour;
  double cold_change_interval = 30.0 * util::kDay;
};

struct SyntheticResource {
  std::string path;
  ContentType type = ContentType::kHtml;
  std::uint64_t size = 0;
  std::vector<std::uint32_t> embedded;  // image indices (html pages only)
  std::vector<std::uint32_t> links;     // HREF page indices (html only)
  std::vector<util::TimePoint> changes; // sorted modification times
  util::TimePoint created{0};           // initial Last-Modified
};

class SiteModel {
 public:
  SiteModel(const SiteShape& shape, util::Seconds duration, util::Rng& rng);

  const std::string& host() const { return host_; }
  const std::vector<SyntheticResource>& resources() const {
    return resources_;
  }
  const SyntheticResource& resource(std::uint32_t idx) const {
    return resources_[idx];
  }
  std::size_t size() const { return resources_.size(); }

  // Indices of HTML pages, most popular first.
  const std::vector<std::uint32_t>& pages_by_popularity() const {
    return pages_by_popularity_;
  }

  // Lookup by path; returns size() if unknown.
  std::uint32_t index_of(std::string_view path) const;

  // Last-Modified time of a resource as of time t.
  util::TimePoint last_modified(std::uint32_t idx, util::TimePoint t) const;

  // True if the resource changed in (since, now].
  bool modified_between(std::uint32_t idx, util::TimePoint since,
                        util::TimePoint now) const;

 private:
  std::string host_;
  std::vector<SyntheticResource> resources_;
  std::vector<std::uint32_t> pages_by_popularity_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

// ---------------------------------------------------------------------------
// Browsing model

struct BrowseShape {
  std::size_t target_requests = 100'000;
  std::size_t client_pool = 0;           // 0 = unbounded distinct clients
  // Each client makes a lognormally-distributed number of visits — the
  // mean controls requests/source, the sigma the per-client skew ("10%
  // of clients produce >50% of requests").
  double sessions_per_client_mean = 1.2;
  double sessions_sigma = 1.6;
  util::Seconds duration = 7 * util::kDay;
  double pages_per_session_mean = 6.0;
  double think_mu = 3.3, think_sigma = 0.9;  // ln seconds between page views
  double image_fetch_prob = 0.85;        // clients that fetch inline images
  double embedded_gap_max = 3.0;         // seconds spread of embedded fetches
  double follow_link_prob = 0.65;        // next page via HREF vs Zipf jump
  double page_skew = 0.9;                // Zipf skew of page popularity
  double other_jump_prob = 0.05;         // fetch a non-HTML resource instead
  double client_cache_prob = 0.7;        // client has a cache (sends IMS)
  double post_fraction = 0.0;            // Marimba-style POST traffic
  // After a session ends the client may come back later in the day —
  // this produces the re-accesses in the 5-minute-to-2-hour band that
  // cache coherency feeds on (Table 1's "updated by piggyback" column).
  double revisit_prob = 0.35;
  double revisit_delay_mean = 2400.0;    // seconds until the return visit
};

struct SyntheticWorkload {
  Trace trace;
  std::vector<SiteModel> sites;  // index aligns with trace server ids when
                                 // sites were generated through this API

  // Site whose host equals the trace server id's name; nullptr if none.
  const SiteModel* site_for(std::string_view host) const;
};

// Generate a server log: one site, many client sources.
SyntheticWorkload generate_server_log(const SiteShape& site_shape,
                                      const BrowseShape& browse,
                                      std::uint64_t seed);

// Generate a client (proxy) trace: many sites, sources are the proxy's
// clients. Site sizes follow a Pareto distribution scaled from `base_site`;
// site popularity is Zipf with `site_skew`.
struct MultiSiteShape {
  int sites = 300;
  double site_skew = 0.95;        // Zipf over sites
  double size_spread_alpha = 1.2; // Pareto shape for per-site page counts
  SiteShape base_site;            // template; pages scaled per site
};

SyntheticWorkload generate_client_trace(const MultiSiteShape& multi,
                                        const BrowseShape& browse,
                                        std::uint64_t seed);

}  // namespace piggyweb::trace

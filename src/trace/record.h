// Trace records. A Trace is a time-ordered sequence of requests with
// interned source / server / path ids; the same structure represents both
// server logs (single server, many client sources — the paper's
// "pseudo-proxy traces" group these by source IP) and client/proxy traces
// (one proxy's clients, many servers).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/intern.h"
#include "util/time.h"

namespace piggyweb::trace {

enum class Method : std::uint8_t { kGet, kPost, kHead };

std::string_view method_name(Method m);
bool parse_method(std::string_view s, Method& out);

// Coarse content classes used by proxy filters ("a proxy serving
// low-bandwidth clients does not need piggyback info for images", §2.2).
enum class ContentType : std::uint8_t { kHtml, kImage, kOther };

std::string_view content_type_name(ContentType t);

// Classify by path extension (html/htm -> html; gif/jpg/jpeg/png/xbm ->
// image; everything else -> other).
ContentType classify_path(std::string_view path);

// classify_path precomputed over a whole path table: one string scan per
// distinct path instead of one per request. The evaluators' hot loops
// resolve content types through this table.
class PathTypeTable {
 public:
  // Accepts a live InternTable (implicitly) or a StringTableView over
  // decoded container strings — the streaming path builds type tables
  // without materializing an InternTable.
  explicit PathTypeTable(util::StringTableView paths);

  ContentType type_of(util::InternId path) const { return types_[path]; }
  std::size_t size() const { return types_.size(); }

 private:
  std::vector<ContentType> types_;
};

struct Request {
  util::TimePoint time;
  util::InternId source = util::kInvalidIntern;    // client / proxy IP
  util::InternId server = util::kInvalidIntern;    // origin host
  util::InternId path = util::kInvalidIntern;      // normalized resource path
  Method method = Method::kGet;
  std::uint16_t status = 200;
  std::uint64_t size = 0;            // response body bytes
  std::int64_t last_modified = -1;   // seconds since epoch; -1 unknown
};

class Trace {
 public:
  // Interns and appends; keeps no ordering invariant (call sort_by_time()).
  void add(util::TimePoint time, std::string_view source,
           std::string_view server, std::string_view path,
           Method method = Method::kGet, std::uint16_t status = 200,
           std::uint64_t size = 0, std::int64_t last_modified = -1);

  void add(const Request& r) { requests_.push_back(r); }

  // Pre-size the request vector for a known (or estimated) request count;
  // bulk loaders call this so appends never reallocate mid-load.
  void reserve(std::size_t expected_requests) {
    requests_.reserve(expected_requests);
  }

  void sort_by_time();

  const std::vector<Request>& requests() const { return requests_; }
  std::vector<Request>& requests() { return requests_; }

  const util::InternTable& sources() const { return sources_; }
  const util::InternTable& servers() const { return servers_; }
  const util::InternTable& paths() const { return paths_; }
  util::InternTable& sources() { return sources_; }
  util::InternTable& servers() { return servers_; }
  util::InternTable& paths() { return paths_; }

  std::size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }

  // Duration covered by the trace (0 for empty/singleton traces).
  util::Seconds span() const;

 private:
  util::InternTable sources_;
  util::InternTable servers_;
  util::InternTable paths_;
  std::vector<Request> requests_;
};

}  // namespace piggyweb::trace

// Unified trace ingestion. Every consumer of a trace file — the evaluate
// and analyze tools, the convert tool, the benches — goes through a
// TraceSource instead of open-coding ifstream + load_clf. A source knows
// how to materialize a Trace from one backing representation:
//
//   * CLF text logs (trace/clf.h),
//   * "PIGGYTRC" columnar binary containers, memory-mapped and decoded
//     zero-copy (trace/binary.h, util/mmap_file.h),
//   * synthetic profiles, via the spec "synthetic:<profile>[:<scale>]"
//     (e.g. "synthetic:aiusa:0.1") instead of a file path.
//
// The format is sniffed from the path/spec by default: a "synthetic:"
// prefix selects generation, files starting with the 8-byte "PIGGYTRC"
// magic are binary, everything else parses as CLF. Callers can pin the
// format explicitly (the tools' --trace-format flag).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "trace/clf.h"
#include "trace/record.h"

namespace piggyweb::trace {

enum class TraceFormat : std::uint8_t { kAuto, kClf, kBinary, kSynthetic };

// "auto" / "clf" / "binary" / "synthetic"; false on anything else.
bool parse_trace_format(std::string_view name, TraceFormat& out);
std::string_view trace_format_name(TraceFormat format);

// Which backing path actually served a load — distinct from the format:
// CLF text parses out of an mmap'd buffer when the file maps (read-copy
// through an ifstream otherwise), binary containers decode out of a
// mapping either into a materialized Trace (kMmap) or batch-by-batch
// without materializing (kStream), and synthetic traces are generated.
enum class TraceBacking : std::uint8_t { kReadCopy, kMmap, kStream, kGenerated };
std::string_view trace_backing_name(TraceBacking backing);

struct TraceSourceOptions {
  TraceFormat format = TraceFormat::kAuto;
  ClfLoadOptions clf;  // applied only when the source parses CLF text
};

// What a load actually did, for the tools' "parsed N requests" line.
struct TraceLoadStats {
  TraceFormat format = TraceFormat::kClf;  // resolved, never kAuto
  TraceBacking backing = TraceBacking::kReadCopy;  // path that served it
  std::size_t requests = 0;
  std::size_t skipped_malformed = 0;  // CLF only
  std::size_t skipped_filtered = 0;   // CLF only
};

// One openable trace. load() appends nothing on failure paths it can
// detect up front and leaves `out` unspecified once decoding has begun;
// callers treat a false return as fatal. The loaded trace is time-sorted.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  // Materialize the trace into the empty `out`. Returns false with a
  // message in `error` on malformed input.
  virtual bool load(Trace& out, TraceLoadStats& stats,
                    std::string& error) = 0;

  // The resolved format ("clf", "binary", "synthetic").
  virtual TraceFormat format() const = 0;
};

// Open `spec` as a trace source, resolving TraceFormat::kAuto by sniffing
// (see file comment). Opening validates cheaply — existence, magic,
// synthetic-spec syntax; binary containers are fully checksummed at
// load(). Returns nullptr with a message in `error` on failure.
std::unique_ptr<TraceSource> open_trace_source(
    const std::string& spec, const TraceSourceOptions& options,
    std::string& error);

// Convenience: open + load + sort in one call.
bool load_trace(const std::string& spec, const TraceSourceOptions& options,
                Trace& out, TraceLoadStats& stats, std::string& error);

}  // namespace piggyweb::trace

#include "trace/source.h"

#include <cstdlib>
#include <fstream>

#include "trace/binary.h"
#include "trace/profiles.h"
#include "util/mmap_file.h"

namespace piggyweb::trace {
namespace {

constexpr std::string_view kSyntheticPrefix = "synthetic:";

class ClfTraceSource final : public TraceSource {
 public:
  ClfTraceSource(std::string path, ClfLoadOptions options)
      : path_(std::move(path)), options_(std::move(options)) {}

  bool load(Trace& out, TraceLoadStats& stats, std::string& error) override {
    ClfLoadResult result;
    // Prefer parsing straight out of an mmap'd buffer (wide-scanner line
    // splitting, no per-line copy); fall back to the ifstream path when
    // the file cannot be mapped (e.g. process substitution pipes).
    std::string mmap_error;
    if (auto mapping = util::MmapFile::open(path_, mmap_error)) {
      mapping->advise_sequential();
      result = load_clf_text(mapping->bytes(), out, options_);
      stats.backing = TraceBacking::kMmap;
    } else {
      std::ifstream in(path_, std::ios::binary);
      if (!in) {
        error = path_ + ": cannot open";
        return false;
      }
      result = load_clf(in, out, options_);
      stats.backing = TraceBacking::kReadCopy;
    }
    out.sort_by_time();
    stats.format = TraceFormat::kClf;
    stats.requests = result.parsed;
    stats.skipped_malformed = result.skipped_malformed;
    stats.skipped_filtered = result.skipped_filtered;
    return true;
  }

  TraceFormat format() const override { return TraceFormat::kClf; }

 private:
  std::string path_;
  ClfLoadOptions options_;
};

class BinaryTraceSource final : public TraceSource {
 public:
  explicit BinaryTraceSource(std::string path) : path_(std::move(path)) {}

  bool load(Trace& out, TraceLoadStats& stats, std::string& error) override {
    auto mapping = util::MmapFile::open(path_, error);
    if (!mapping) return false;
    mapping->advise_sequential();
    // Binary containers preserve the order they were written in (writers
    // serialize time-sorted traces), so no re-sort here.
    if (!load_binary_trace(mapping->bytes(), out, error)) {
      error = path_ + ": " + error;
      return false;
    }
    stats.format = TraceFormat::kBinary;
    stats.backing = TraceBacking::kMmap;
    stats.requests = out.size();
    return true;
  }

  TraceFormat format() const override { return TraceFormat::kBinary; }

 private:
  std::string path_;
};

class SyntheticTraceSource final : public TraceSource {
 public:
  explicit SyntheticTraceSource(LogProfile profile)
      : profile_(std::move(profile)) {}

  bool load(Trace& out, TraceLoadStats& stats, std::string& error) override {
    (void)error;
    SyntheticWorkload workload = generate(profile_);
    out = std::move(workload.trace);
    out.sort_by_time();
    stats.format = TraceFormat::kSynthetic;
    stats.backing = TraceBacking::kGenerated;
    stats.requests = out.size();
    return true;
  }

  TraceFormat format() const override { return TraceFormat::kSynthetic; }

 private:
  LogProfile profile_;
};

// Parse "synthetic:<profile>[:<scale>]" into a profile.
std::unique_ptr<TraceSource> open_synthetic(std::string_view spec,
                                            std::string& error) {
  std::string_view rest = spec.substr(kSyntheticPrefix.size());
  std::string_view name = rest;
  std::string_view scale_text;
  if (const std::size_t colon = rest.find(':');
      colon != std::string_view::npos) {
    name = rest.substr(0, colon);
    scale_text = rest.substr(colon + 1);
  }
  std::optional<LogProfile> profile;
  if (scale_text.empty()) {
    profile = profile_by_name(name);
  } else {
    const std::string text(scale_text);
    char* end = nullptr;
    const double scale = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !(scale > 0.0)) {
      error = "bad synthetic trace scale '" + text + "'";
      return nullptr;
    }
    profile = profile_by_name(name, scale);
  }
  if (!profile) {
    error = "unknown synthetic profile '" + std::string(name) +
            "' (aiusa|marimba|apache|sun|att_client|digital_client)";
    return nullptr;
  }
  return std::make_unique<SyntheticTraceSource>(std::move(*profile));
}

// Read up to the magic's worth of leading bytes; false if unreadable.
bool read_prefix(const std::string& path, std::string& prefix,
                 std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = path + ": cannot open";
    return false;
  }
  char buffer[8] = {};
  in.read(buffer, sizeof(buffer));
  prefix.assign(buffer, static_cast<std::size_t>(in.gcount()));
  return true;
}

}  // namespace

bool parse_trace_format(std::string_view name, TraceFormat& out) {
  if (name == "auto") out = TraceFormat::kAuto;
  else if (name == "clf") out = TraceFormat::kClf;
  else if (name == "binary") out = TraceFormat::kBinary;
  else if (name == "synthetic") out = TraceFormat::kSynthetic;
  else return false;
  return true;
}

std::string_view trace_format_name(TraceFormat format) {
  switch (format) {
    case TraceFormat::kAuto: return "auto";
    case TraceFormat::kClf: return "clf";
    case TraceFormat::kBinary: return "binary";
    case TraceFormat::kSynthetic: return "synthetic";
  }
  return "auto";
}

std::string_view trace_backing_name(TraceBacking backing) {
  switch (backing) {
    case TraceBacking::kReadCopy: return "read-copy";
    case TraceBacking::kMmap: return "mmap";
    case TraceBacking::kStream: return "stream";
    case TraceBacking::kGenerated: return "generated";
  }
  return "read-copy";
}

std::unique_ptr<TraceSource> open_trace_source(
    const std::string& spec, const TraceSourceOptions& options,
    std::string& error) {
  TraceFormat format = options.format;
  if (format == TraceFormat::kAuto) {
    if (spec.starts_with(kSyntheticPrefix)) {
      format = TraceFormat::kSynthetic;
    } else {
      std::string prefix;
      if (!read_prefix(spec, prefix, error)) return nullptr;
      format = looks_like_binary_trace(prefix) ? TraceFormat::kBinary
                                               : TraceFormat::kClf;
    }
  }
  switch (format) {
    case TraceFormat::kSynthetic: {
      if (!spec.starts_with(kSyntheticPrefix)) {
        error = "synthetic trace specs look like synthetic:<profile>[:scale]";
        return nullptr;
      }
      return open_synthetic(spec, error);
    }
    case TraceFormat::kBinary:
      return std::make_unique<BinaryTraceSource>(spec);
    case TraceFormat::kClf:
      return std::make_unique<ClfTraceSource>(spec, options.clf);
    case TraceFormat::kAuto: break;  // resolved above
  }
  error = "unresolved trace format";
  return nullptr;
}

bool load_trace(const std::string& spec, const TraceSourceOptions& options,
                Trace& out, TraceLoadStats& stats, std::string& error) {
  auto source = open_trace_source(spec, options, error);
  if (!source) return false;
  return source->load(out, stats, error);
}

}  // namespace piggyweb::trace

// Trace transformations. Subsets share the original's intern-id space
// (tables are copied verbatim), so volumes built on one slice apply
// directly to another — the basis of train/test evaluation of volume
// construction (bench/ablation_train_test).
#pragma once

#include <functional>

#include "trace/record.h"

namespace piggyweb::trace {

// Requests satisfying `keep`, with intern tables copied from `trace`.
Trace filter_requests(const Trace& trace,
                      const std::function<bool(const Request&)>& keep);

// Requests with time in [from, to).
Trace slice_by_time(const Trace& trace, util::TimePoint from,
                    util::TimePoint to);

// Split at `fraction` of the trace's time span (not request count): the
// first part covers [start, start + fraction*span), the second the rest.
std::pair<Trace, Trace> split_at_fraction(const Trace& trace,
                                          double fraction);

// The paper's §A cleanup: keep only requests to resources accessed at
// least `min_count` times in the trace.
Trace filter_unpopular(const Trace& trace, std::uint64_t min_count);

// Requests from a single source (one pseudo-proxy's view).
Trace filter_source(const Trace& trace, util::InternId source);

}  // namespace piggyweb::trace

#include "trace/record.h"

#include <algorithm>

#include "util/strings.h"

namespace piggyweb::trace {

std::string_view method_name(Method m) {
  switch (m) {
    case Method::kGet:
      return "GET";
    case Method::kPost:
      return "POST";
    case Method::kHead:
      return "HEAD";
  }
  return "GET";
}

bool parse_method(std::string_view s, Method& out) {
  if (s == "GET") {
    out = Method::kGet;
    return true;
  }
  if (s == "POST") {
    out = Method::kPost;
    return true;
  }
  if (s == "HEAD") {
    out = Method::kHead;
    return true;
  }
  return false;
}

std::string_view content_type_name(ContentType t) {
  switch (t) {
    case ContentType::kHtml:
      return "html";
    case ContentType::kImage:
      return "image";
    case ContentType::kOther:
      return "other";
  }
  return "other";
}

ContentType classify_path(std::string_view path) {
  const auto ext = util::path_extension(path);
  if (ext.empty() || util::iequals(ext, "html") || util::iequals(ext, "htm")) {
    return ContentType::kHtml;
  }
  for (const auto img : {"gif", "jpg", "jpeg", "png", "xbm", "bmp", "ico"}) {
    if (util::iequals(ext, img)) return ContentType::kImage;
  }
  return ContentType::kOther;
}

PathTypeTable::PathTypeTable(util::StringTableView paths) {
  types_.reserve(paths.size());
  for (std::size_t id = 0; id < paths.size(); ++id) {
    types_.push_back(classify_path(paths.str(static_cast<util::InternId>(id))));
  }
}

void Trace::add(util::TimePoint time, std::string_view source,
                std::string_view server, std::string_view path, Method method,
                std::uint16_t status, std::uint64_t size,
                std::int64_t last_modified) {
  Request r;
  r.time = time;
  r.source = sources_.intern(source);
  r.server = servers_.intern(server);
  r.path = paths_.intern(path);
  r.method = method;
  r.status = status;
  r.size = size;
  r.last_modified = last_modified;
  requests_.push_back(r);
}

void Trace::sort_by_time() {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) {
                     return a.time < b.time;
                   });
}

util::Seconds Trace::span() const {
  if (requests_.size() < 2) return 0;
  return requests_.back().time - requests_.front().time;
}

}  // namespace piggyweb::trace

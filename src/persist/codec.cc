#include "persist/codec.h"

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/expect.h"
#include "util/hash.h"

namespace piggyweb::persist {

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  PW_EXPECT(s.size() <= 0xffffffffu);
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.append(s.data(), s.size());
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string_view ByteReader::str() {
  const auto len = u32();
  if (!ok_ || len > remaining()) {
    ok_ = false;
    return {};
  }
  const auto view = data_.substr(pos_, len);
  pos_ += len;
  return view;
}

bool ByteReader::fits(std::uint64_t n, std::size_t element_bytes) {
  PW_EXPECT(element_bytes > 0);
  if (!ok_ || n > remaining() / element_bytes) {
    ok_ = false;
    return false;
  }
  return true;
}

void ByteReader::skip(std::uint64_t n) {
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return;
  }
  pos_ += static_cast<std::size_t>(n);
}

std::uint64_t ByteReader::take(std::size_t n) {
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return 0;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += n;
  return v;
}

void SnapshotWriter::add_section(std::string_view name, std::string payload) {
  PW_EXPECT(!name.empty() && name.size() <= 0xffffu);
  PW_EXPECT(!has_section(name));
  sections_.push_back({std::string(name), std::move(payload)});
}

bool SnapshotWriter::has_section(std::string_view name) const {
  for (const auto& section : sections_) {
    if (section.name == name) return true;
  }
  return false;
}

std::string SnapshotWriter::finish(std::string_view magic,
                                   std::uint32_t version) const {
  PW_EXPECT(magic.size() == kSnapshotMagic.size());
  ByteWriter out;
  for (const char c : magic) out.u8(static_cast<std::uint8_t>(c));
  out.u32(version);
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& section : sections_) {
    out.u16(static_cast<std::uint16_t>(section.name.size()));
    for (const char c : section.name) out.u8(static_cast<std::uint8_t>(c));
    out.u64(section.payload.size());
    out.u64(util::fnv1a(section.payload));
    for (const char c : section.payload) {
      out.u8(static_cast<std::uint8_t>(c));
    }
  }
  const auto footer = util::fnv1a(out.bytes());
  out.u64(footer);
  return out.take();
}

std::optional<SnapshotReader> SnapshotReader::parse(std::string_view file,
                                                    std::string& error,
                                                    std::string_view magic,
                                                    std::uint32_t version) {
  PW_EXPECT(magic.size() == kSnapshotMagic.size());
  if (file.size() < magic.size() + 4 + 4 + 8) {
    error = "container too small to hold a header";
    return std::nullopt;
  }
  // Footer first: the whole-file checksum covers everything before it.
  const auto body = file.substr(0, file.size() - 8);
  ByteReader footer(file.substr(file.size() - 8));
  if (footer.u64() != util::fnv1a(body)) {
    error = "whole-file checksum mismatch";
    return std::nullopt;
  }

  ByteReader in(body);
  if (body.substr(0, magic.size()) != magic) {
    error = "bad magic (expected " + std::string(magic) + " container)";
    return std::nullopt;
  }
  for (std::size_t i = 0; i < magic.size(); ++i) in.u8();
  const auto file_version = in.u32();
  if (file_version != version) {
    error = "unsupported container version " + std::to_string(file_version);
    return std::nullopt;
  }
  const auto count = in.u32();

  SnapshotReader reader;
  reader.sections_.reserve(count <= 1024 ? count : 0);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = in.u16();
    if (!in.ok() || name_len == 0 || name_len > in.remaining()) {
      error = "section " + std::to_string(i) + ": bad name length";
      return std::nullopt;
    }
    std::string name;
    name.reserve(name_len);
    for (std::uint16_t c = 0; c < name_len; ++c) {
      name.push_back(static_cast<char>(in.u8()));
    }
    const auto length = in.u64();
    const auto checksum = in.u64();
    if (!in.ok() || length > in.remaining()) {
      error = "section '" + name + "': truncated payload";
      return std::nullopt;
    }
    const auto payload =
        body.substr(body.size() - in.remaining(), length);
    in.skip(length);
    if (!in.ok()) {
      error = "section '" + name + "': truncated payload";
      return std::nullopt;
    }
    if (util::fnv1a(payload) != checksum) {
      error = "section '" + name + "': checksum mismatch";
      return std::nullopt;
    }
    for (const auto& existing : reader.sections_) {
      if (existing.name == name) {
        error = "duplicate section '" + name + "'";
        return std::nullopt;
      }
    }
    reader.sections_.push_back({std::move(name), payload});
  }
  if (!in.at_end()) {
    error = "trailing bytes after last section";
    return std::nullopt;
  }
  return reader;
}

const SnapshotSection* SnapshotReader::find(std::string_view name) const {
  for (const auto& section : sections_) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

std::uint64_t snapshot_checksum(std::string_view bytes) {
  return util::fnv1a(bytes);
}

std::string checksum_hex(std::uint64_t checksum) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(checksum));
  return buf;
}

bool write_file_bytes(const std::string& path, std::string_view bytes,
                      std::string& error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    error = path + ": cannot open for writing";
    return false;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) {
    error = path + ": write failed";
    return false;
  }
  return true;
}

std::optional<std::string> read_file_bytes(const std::string& path,
                                           std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = path + ": cannot open";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    error = path + ": read failed";
    return std::nullopt;
  }
  return std::move(buffer).str();
}

}  // namespace piggyweb::persist

// Checkpoint/restore for the discrete-event simulation engine's durable
// per-node state: each proxy node's cache (entries, replacement queues,
// GreedyDual inflation, freshness overrides, stats) and its filter
// policy's RPV table. Everything else about a node — topology, agents,
// engine counters — is configuration or derived output, reconstructed by
// building the engine the same way and re-running.
#pragma once

#include <string>
#include <string_view>

namespace piggyweb::sim {
class SimulationEngine;
}

namespace piggyweb::persist {

std::string serialize_engine_state(const sim::SimulationEngine& engine);

// Restores into an engine built with the same workload/topology/config.
// The node count and each node's cache/RPV configuration are checked
// against echoes in the snapshot; on failure the engine's node state is
// unspecified and the engine must be discarded.
bool restore_engine_state(sim::SimulationEngine& engine, std::string_view file,
                          std::string& error);

}  // namespace piggyweb::persist

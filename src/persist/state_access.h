// Private-state bridge for the snapshot layer.
//
// The durable tables keep their invariants behind private members; rather
// than widen their public APIs with persistence-only accessors, each one
// befriends this single struct. StateAccess member functions (defined in
// tables.cc and engine_state.cc) are the only code outside a table's own
// translation unit that may touch its internals, which keeps the blast
// radius of a representation change easy to audit: grep for StateAccess.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "persist/tables.h"

namespace piggyweb::volume {
class PairCounts;
class DirectoryVolumes;
}  // namespace piggyweb::volume

namespace piggyweb::proxy {
class ProxyCache;
}

namespace piggyweb::core {
class RpvTable;
}

namespace piggyweb::sim {
class ProxyNode;
class SimulationEngine;
}  // namespace piggyweb::sim

namespace piggyweb::persist {

struct StateAccess {
  // volume::PairCounts — dense c(r) vector plus the pair-counter map.
  static void serialize_pair_counts(const volume::PairCounts& counts,
                                    ByteWriter& out);
  static bool deserialize_pair_counts(ByteReader& in,
                                      volume::PairCounts& counts,
                                      std::string& error);

  // volume::DirectoryVolumes — full structural export/import. Import
  // installs `images` in order into an empty provider (the i-th image
  // becomes local volume i, public id = offset + stride * i) and appends
  // the assigned public ids, parallel to `images`, to `assigned_ids`.
  // Pointers, because a shard restore picks a non-contiguous subset of a
  // snapshot's images. On failure the provider is partially filled and
  // must be discarded.
  static std::vector<DirectoryVolumeImage> export_directory_volumes(
      const volume::DirectoryVolumes& provider);
  static bool import_directory_volumes(
      volume::DirectoryVolumes& provider,
      std::span<const DirectoryVolumeImage* const> images,
      std::vector<core::VolumeId>& assigned_ids, std::string& error);

  // proxy::ProxyCache — exact state: entries in LRU order, the three
  // replacement queues as index sequences (preserving equal-key order),
  // GreedyDual inflation, freshness overrides, and stats. The restore
  // target must be constructed with the same CacheConfig as the saved
  // cache (checked); on failure its state is unspecified.
  static void serialize_proxy_cache(const proxy::ProxyCache& cache,
                                    ByteWriter& out);
  static bool deserialize_proxy_cache(ByteReader& in, proxy::ProxyCache& cache,
                                      std::string& error);

  // core::RpvTable — per-server FIFO lists plus the server LRU order. The
  // restore target must be constructed with the same RpvConfig and
  // max_servers as the saved table (checked).
  static void serialize_rpv_table(const core::RpvTable& table, ByteWriter& out);
  static bool deserialize_rpv_table(ByteReader& in, core::RpvTable& table,
                                    std::string& error);

  // sim::SimulationEngine — the durable per-node state (caches and filter
  // RPV tables) lives in the node array.
  static std::span<const std::unique_ptr<sim::ProxyNode>> nodes(
      const sim::SimulationEngine& engine);
};

}  // namespace piggyweb::persist

#include "persist/eval_state.h"

#include <algorithm>
#include <iterator>
#include <tuple>
#include <utility>

#include "persist/state_access.h"
#include "trace/binary.h"
#include "util/expect.h"
#include "util/hash.h"

namespace piggyweb::persist {

namespace {

bool by_key(const std::pair<std::uint64_t, sim::detail::ResourceState>& a,
            const std::pair<std::uint64_t, sim::detail::ResourceState>& b) {
  return a.first < b.first;
}

template <typename Pairs>
void sort_unique_by_key(Pairs& pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  PW_ENSURE(std::adjacent_find(pairs.begin(), pairs.end(),
                               [](const auto& a, const auto& b) {
                                 return a.first == b.first;
                               }) == pairs.end());
}

}  // namespace

std::uint64_t trace_fingerprint(const trace::Trace& trace) {
  return trace::trace_content_fingerprint(trace);
}

EvalConfigEcho make_eval_config_echo(
    std::string_view scheme, const sim::EvalConfig& eval,
    const volume::DirectoryVolumeConfig* directory) {
  EvalConfigEcho echo;
  echo.scheme = std::string(scheme);
  echo.prediction_window = eval.prediction_window;
  echo.cache_horizon = eval.cache_horizon;
  echo.filter_max_elements = eval.filter.max_elements;
  echo.filter_min_access_count = eval.filter.min_access_count;
  echo.use_rpv = eval.use_rpv;
  echo.rpv_timeout = eval.rpv.timeout;
  echo.rpv_max_entries = eval.rpv.max_entries;
  echo.min_piggyback_interval = eval.min_piggyback_interval;
  if (directory != nullptr) {
    echo.directory_level = directory->level;
    echo.max_volume_elements = directory->max_volume_elements;
    echo.max_candidates = directory->max_candidates;
    echo.large_size_threshold = directory->large_size_threshold;
  }
  return echo;
}

EvalSnapshot capture_eval_state(
    std::span<const volume::DirectoryVolumes* const> providers,
    std::span<const sim::detail::MetricAccumulator* const> accumulators,
    EvalConfigEcho config, std::uint64_t next_request,
    std::uint64_t total_requests, std::uint64_t fingerprint) {
  EvalSnapshot snapshot;
  const bool directory = config.scheme == "directory";
  snapshot.config = std::move(config);
  snapshot.next_request = next_request;
  snapshot.total_requests = total_requests;
  snapshot.fingerprint = fingerprint;

  for (const auto* provider : providers) {
    PW_EXPECT(provider != nullptr);
    auto images = StateAccess::export_directory_volumes(*provider);
    snapshot.volumes.insert(snapshot.volumes.end(),
                            std::make_move_iterator(images.begin()),
                            std::make_move_iterator(images.end()));
  }
  // Canonical order: sorted by (server, prefix). Each (server, prefix)
  // lives in exactly one shard, so the set — and with it the sorted
  // sequence — is the same at every shard count.
  std::sort(snapshot.volumes.begin(), snapshot.volumes.end(),
            [](const DirectoryVolumeImage& a, const DirectoryVolumeImage& b) {
              return std::tie(a.server, a.prefix) <
                     std::tie(b.server, b.prefix);
            });
  util::FlatMap<core::VolumeId, core::VolumeId> canonical_of;
  canonical_of.reserve(snapshot.volumes.size());
  for (std::size_t i = 0; i < snapshot.volumes.size(); ++i) {
    auto& image = snapshot.volumes[i];
    const auto canonical = static_cast<core::VolumeId>(i);
    PW_ENSURE(canonical_of.try_emplace(image.saved_id, canonical).second);
    image.saved_id = canonical;
  }

  for (const auto* accumulator : accumulators) {
    PW_EXPECT(accumulator != nullptr);
    accumulator->export_state(snapshot.metrics);
  }
  if (directory) {
    // Rewrite RPV state from the run's volume numbering to canonical
    // indices; every noted id names a volume the run discovered.
    for (auto& kv : snapshot.metrics.rpv) {
      for (auto& entry : kv.second) {
        const auto it = canonical_of.find(entry.volume);
        PW_ENSURE(it != canonical_of.end());
        entry.volume = it->second;
      }
    }
  }
  std::sort(snapshot.metrics.resource_state.begin(),
            snapshot.metrics.resource_state.end(), by_key);
  PW_ENSURE(std::adjacent_find(snapshot.metrics.resource_state.begin(),
                               snapshot.metrics.resource_state.end(),
                               [](const auto& a, const auto& b) {
                                 return a.first == b.first;
                               }) == snapshot.metrics.resource_state.end());
  sort_unique_by_key(snapshot.metrics.last_piggy);
  sort_unique_by_key(snapshot.metrics.rpv);
  return snapshot;
}

std::string serialize_eval_snapshot(const EvalSnapshot& snapshot) {
  SnapshotWriter writer;
  {
    ByteWriter meta;
    meta.str(snapshot.config.scheme);
    meta.i64(snapshot.config.prediction_window);
    meta.i64(snapshot.config.cache_horizon);
    meta.u32(snapshot.config.filter_max_elements);
    meta.u32(snapshot.config.filter_min_access_count);
    meta.u8(snapshot.config.use_rpv ? 1 : 0);
    meta.i64(snapshot.config.rpv_timeout);
    meta.u64(snapshot.config.rpv_max_entries);
    meta.i64(snapshot.config.min_piggyback_interval);
    meta.i64(snapshot.config.directory_level);
    meta.u64(snapshot.config.max_volume_elements);
    meta.u64(snapshot.config.max_candidates);
    meta.u64(snapshot.config.large_size_threshold);
    meta.u64(snapshot.next_request);
    meta.u64(snapshot.total_requests);
    meta.u64(snapshot.fingerprint);
    writer.add_section("eval_meta", meta.take());
  }
  {
    ByteWriter volumes;
    serialize_directory_volume_images(snapshot.volumes, volumes);
    writer.add_section("eval_volumes", volumes.take());
  }
  {
    ByteWriter out;
    const auto& m = snapshot.metrics;
    out.u64(m.counters.requests);
    out.u64(m.counters.predicted_requests);
    out.u64(m.counters.piggyback_messages);
    out.u64(m.counters.piggyback_elements);
    out.u64(m.counters.predictions_made);
    out.u64(m.counters.predictions_true);
    out.u64(m.counters.prev_occurrence_within_horizon);
    out.u64(m.counters.prev_occurrence_within_window);
    out.u64(m.counters.updated_by_piggyback);
    out.u64(m.resource_state.size());
    for (const auto& [key, state] : m.resource_state) {
      out.u64(key);
      out.i64(state.last_access);
      out.i64(state.last_mention);
      out.i64(state.interval_open);
      out.u8(state.fulfilled ? 1 : 0);
    }
    out.u64(m.last_piggy.size());
    for (const auto& [key, when] : m.last_piggy) {
      out.u64(key);
      out.i64(when);
    }
    out.u64(m.rpv.size());
    for (const auto& [key, entries] : m.rpv) {
      out.u64(key);
      out.u64(entries.size());
      for (const auto& entry : entries) {
        out.u32(entry.volume);
        out.i64(entry.when.value);
      }
    }
    writer.add_section("eval_metrics", out.take());
  }
  return writer.finish();
}

std::optional<EvalSnapshot> parse_eval_snapshot(std::string_view file,
                                                std::string& error) {
  const auto reader = SnapshotReader::parse(file, error);
  if (!reader.has_value()) return std::nullopt;
  const auto* meta_section = reader->find("eval_meta");
  const auto* volumes_section = reader->find("eval_volumes");
  const auto* metrics_section = reader->find("eval_metrics");
  if (meta_section == nullptr || volumes_section == nullptr ||
      metrics_section == nullptr) {
    error = "missing eval snapshot section";
    return std::nullopt;
  }

  EvalSnapshot snapshot;
  {
    ByteReader in(meta_section->payload);
    snapshot.config.scheme = std::string(in.str());
    snapshot.config.prediction_window = in.i64();
    snapshot.config.cache_horizon = in.i64();
    snapshot.config.filter_max_elements = in.u32();
    snapshot.config.filter_min_access_count = in.u32();
    const auto use_rpv = in.u8();
    snapshot.config.rpv_timeout = in.i64();
    snapshot.config.rpv_max_entries = in.u64();
    snapshot.config.min_piggyback_interval = in.i64();
    const auto level = in.i64();
    snapshot.config.max_volume_elements = in.u64();
    snapshot.config.max_candidates = in.u64();
    snapshot.config.large_size_threshold = in.u64();
    snapshot.next_request = in.u64();
    snapshot.total_requests = in.u64();
    snapshot.fingerprint = in.u64();
    if (!in.ok() || !in.at_end()) {
      error = "malformed eval_meta section";
      return std::nullopt;
    }
    if (use_rpv > 1 || level < 0 || level > 64) {
      error = "eval_meta field out of range";
      return std::nullopt;
    }
    snapshot.config.use_rpv = use_rpv == 1;
    snapshot.config.directory_level = static_cast<int>(level);
  }
  if (snapshot.config.scheme != "directory" &&
      snapshot.config.scheme != "probability") {
    error = "unknown eval snapshot scheme";
    return std::nullopt;
  }
  if (snapshot.next_request > snapshot.total_requests) {
    error = "next_request beyond trace end";
    return std::nullopt;
  }
  const bool directory = snapshot.config.scheme == "directory";

  {
    ByteReader in(volumes_section->payload);
    if (!deserialize_directory_volume_images(in, snapshot.volumes, error)) {
      return std::nullopt;
    }
    if (!in.at_end()) {
      error = "trailing bytes in eval_volumes section";
      return std::nullopt;
    }
    if (!directory && !snapshot.volumes.empty()) {
      error = "probability snapshot carries directory volumes";
      return std::nullopt;
    }
    for (std::size_t i = 0; i < snapshot.volumes.size(); ++i) {
      const auto& image = snapshot.volumes[i];
      if (image.saved_id != static_cast<core::VolumeId>(i)) {
        error = "non-canonical volume numbering";
        return std::nullopt;
      }
      if (i > 0) {
        const auto& prev = snapshot.volumes[i - 1];
        if (std::tie(prev.server, prev.prefix) >=
            std::tie(image.server, image.prefix)) {
          error = "volumes not in canonical (server, prefix) order";
          return std::nullopt;
        }
      }
      util::FlatMap<util::InternId, std::uint8_t> seen;
      std::size_t elements = 0;
      for (const auto& part : image.parts) {
        for (const auto& element : part) {
          ++elements;
          if (!seen.try_emplace(element.resource).second) {
            error = "duplicate resource in directory volume";
            return std::nullopt;
          }
        }
      }
      if (snapshot.config.max_volume_elements != 0 &&
          elements > snapshot.config.max_volume_elements) {
        error = "directory volume exceeds its element bound";
        return std::nullopt;
      }
    }
  }

  {
    ByteReader in(metrics_section->payload);
    auto& m = snapshot.metrics;
    m.counters.requests = in.u64();
    m.counters.predicted_requests = in.u64();
    m.counters.piggyback_messages = in.u64();
    m.counters.piggyback_elements = in.u64();
    m.counters.predictions_made = in.u64();
    m.counters.predictions_true = in.u64();
    m.counters.prev_occurrence_within_horizon = in.u64();
    m.counters.prev_occurrence_within_window = in.u64();
    m.counters.updated_by_piggyback = in.u64();

    const auto state_count = in.u64();
    if (!in.fits(state_count, 33)) {
      error = "metric state count overruns input";
      return std::nullopt;
    }
    m.resource_state.reserve(state_count);
    for (std::uint64_t i = 0; i < state_count; ++i) {
      const auto key = in.u64();
      sim::detail::ResourceState state;
      state.last_access = in.i64();
      state.last_mention = in.i64();
      state.interval_open = in.i64();
      const auto fulfilled = in.u8();
      if (fulfilled > 1) {
        error = "metric state bool out of range";
        return std::nullopt;
      }
      state.fulfilled = fulfilled == 1;
      if (!m.resource_state.empty() && key <= m.resource_state.back().first) {
        error = "metric state keys not strictly ascending";
        return std::nullopt;
      }
      m.resource_state.emplace_back(key, state);
    }

    const auto piggy_count = in.u64();
    if (!in.fits(piggy_count, 16)) {
      error = "frequency state count overruns input";
      return std::nullopt;
    }
    m.last_piggy.reserve(piggy_count);
    for (std::uint64_t i = 0; i < piggy_count; ++i) {
      const auto key = in.u64();
      const auto when = in.i64();
      if (!m.last_piggy.empty() && key <= m.last_piggy.back().first) {
        error = "frequency state keys not strictly ascending";
        return std::nullopt;
      }
      m.last_piggy.emplace_back(key, when);
    }

    const auto rpv_count = in.u64();
    if (!in.fits(rpv_count, 16)) {
      error = "rpv state count overruns input";
      return std::nullopt;
    }
    m.rpv.reserve(rpv_count);
    for (std::uint64_t i = 0; i < rpv_count; ++i) {
      const auto key = in.u64();
      if (!m.rpv.empty() && key <= m.rpv.back().first) {
        error = "rpv state keys not strictly ascending";
        return std::nullopt;
      }
      std::vector<core::RpvEntry> entries;
      if (!deserialize_rpv_entries(in, entries, error)) return std::nullopt;
      if (directory) {
        for (const auto& entry : entries) {
          if (entry.volume >= snapshot.volumes.size()) {
            error = "rpv entry references unknown volume";
            return std::nullopt;
          }
        }
      }
      m.rpv.emplace_back(key, std::move(entries));
    }
    if (!in.ok() || !in.at_end()) {
      error = "malformed eval_metrics section";
      return std::nullopt;
    }
  }
  return snapshot;
}

bool save_eval_snapshot(const std::string& path, const EvalSnapshot& snapshot,
                        std::string& error) {
  return write_file_bytes(path, serialize_eval_snapshot(snapshot), error);
}

std::optional<EvalSnapshot> load_eval_snapshot(const std::string& path,
                                               std::string& error) {
  const auto bytes = read_file_bytes(path, error);
  if (!bytes.has_value()) return std::nullopt;
  return parse_eval_snapshot(*bytes, error);
}

EvalRestore::EvalRestore(const EvalSnapshot& snapshot)
    : snapshot_(&snapshot),
      directory_(snapshot.config.scheme == "directory"),
      run_id_of_(snapshot.volumes.size(), core::kNoVolume) {}

void EvalRestore::warm_provider(core::VolumeProvider& provider,
                                std::size_t shard, std::size_t shards) {
  if (!directory_) return;
  PW_EXPECT(shards > 0 && shard < shards);
  PW_EXPECT(!translated_.has_value());
  if (provider_shards_expected_ == 0) provider_shards_expected_ = shards;
  PW_EXPECT(provider_shards_expected_ == shards);
  ++provider_shards_seen_;

  auto* target = dynamic_cast<volume::DirectoryVolumes*>(&provider);
  PW_ENSURE(target != nullptr);
  std::vector<const DirectoryVolumeImage*> picked;
  std::vector<std::size_t> canonical;
  for (std::size_t i = 0; i < snapshot_->volumes.size(); ++i) {
    const auto& image = snapshot_->volumes[i];
    // Must agree with shard_directory_volumes::shard_of so each restored
    // volume lands in the shard that will serve its requests.
    const auto owner =
        util::hash_combine(image.server, util::fnv1a(image.prefix)) % shards;
    if (owner != shard) continue;
    picked.push_back(&image);
    canonical.push_back(i);
  }
  std::vector<core::VolumeId> assigned;
  std::string error;
  const bool imported =
      StateAccess::import_directory_volumes(*target, picked, assigned, error);
  PW_ENSURE(imported);  // the snapshot was structurally validated at parse
  PW_ENSURE(assigned.size() == canonical.size());
  for (std::size_t j = 0; j < canonical.size(); ++j) {
    run_id_of_[canonical[j]] = assigned[j];
  }
}

void EvalRestore::seed_accumulator(sim::detail::MetricAccumulator& accumulator,
                                   std::size_t shard, std::size_t shards) {
  PW_EXPECT(shards > 0 && shard < shards);
  if (directory_ && !translated_.has_value()) {
    // All provider shards are warm (run_range's hooks contract), so the
    // canonical -> run id map is complete.
    PW_EXPECT(provider_shards_expected_ != 0 &&
              provider_shards_seen_ == provider_shards_expected_);
    translated_ = snapshot_->metrics;
    for (auto& kv : translated_->rpv) {
      for (auto& entry : kv.second) {
        PW_ENSURE(entry.volume < run_id_of_.size());
        entry.volume = run_id_of_[entry.volume];
      }
    }
  }
  const auto& image = directory_ ? *translated_ : snapshot_->metrics;
  if (shards == 1) {
    accumulator.import_state(image, nullptr, /*take_counters=*/true);
    return;
  }
  accumulator.import_state(
      image,
      [shard, shards](util::InternId source) {
        // Must agree with the parallel evaluator's source_shard function.
        return static_cast<std::size_t>(util::mix64(source) % shards) == shard;
      },
      /*take_counters=*/shard == 0);
}

sim::EvalResumeHooks EvalRestore::hooks() {
  sim::EvalResumeHooks hooks;
  hooks.warm_provider = [this](core::VolumeProvider& provider,
                               std::size_t shard, std::size_t shards) {
    warm_provider(provider, shard, shards);
  };
  hooks.seed_accumulator = [this](sim::detail::MetricAccumulator& accumulator,
                                  std::size_t shard, std::size_t shards) {
    seed_accumulator(accumulator, shard, shards);
  };
  return hooks;
}

}  // namespace piggyweb::persist

// Versioned binary container codec — the common envelope every durable
// artifact serializes into: state snapshots ("PIGGYSNP") and columnar
// binary traces ("PIGGYTRC", src/trace/binary.h) share the layout and
// differ only in their 8-byte magic and the section vocabulary.
//
// A container file:
//
//   magic    8 bytes  e.g. "PIGGYSNP"
//   version  u32      1
//   count    u32      number of sections
//   section* count times:
//     name     u16 length + bytes (unique within the file)
//     length   u64 payload bytes
//     checksum u64 FNV-1a over the payload
//     payload  `length` bytes
//   footer   u64      FNV-1a over everything before the footer
//
// All integers are little-endian fixed-width; doubles travel as the IEEE
// bit pattern, so round trips are bit-exact (NaN payloads included). The
// reader is fully bounds-checked and rejects — never crashes on — any
// corruption the fuzz suite throws at it: truncation, bit flips, duplicate
// or oversized sections, trailing garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace piggyweb::persist {

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::string_view kSnapshotMagic = "PIGGYSNP";

// Little-endian primitive encoder appending to an owned byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { append(v, 2); }
  void u32(std::uint32_t v) { append(v, 4); }
  void u64(std::uint64_t v) { append(v, 8); }
  void i64(std::int64_t v) { append(static_cast<std::uint64_t>(v), 8); }
  void f64(double v);

  // u32 length prefix + raw bytes (embedded NULs allowed).
  void str(std::string_view s);

  const std::string& bytes() const { return bytes_; }
  std::string take() { return std::move(bytes_); }

 private:
  void append(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string bytes_;
};

// Bounds-checked little-endian decoder over a borrowed byte range. Any
// out-of-range read trips the sticky failure flag and returns zero values;
// callers check ok() once at the end instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(take(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() { return take(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(take(8)); }
  double f64();

  // Counterpart of ByteWriter::str. Returns a view into the underlying
  // buffer (valid while the buffer lives); empty on failure.
  std::string_view str();

  // Fails (sticky) unless exactly `n` elements can still plausibly fit —
  // a cheap guard against allocating huge vectors from corrupt counts.
  bool fits(std::uint64_t n, std::size_t element_bytes);

  // Advance past `n` bytes without decoding them.
  void skip(std::uint64_t n);

  void fail() { ok_ = false; }

 private:
  std::uint64_t take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Assembles a container file from named section payloads.
class SnapshotWriter {
 public:
  // Adding a duplicate name is a programming error (checked).
  void add_section(std::string_view name, std::string payload);

  bool has_section(std::string_view name) const;
  std::size_t section_count() const { return sections_.size(); }

  // The complete file image (header, sections, footer checksum). `magic`
  // must be exactly 8 bytes; defaults produce a snapshot container.
  std::string finish(std::string_view magic = kSnapshotMagic,
                     std::uint32_t version = kSnapshotVersion) const;

 private:
  struct Section {
    std::string name;
    std::string payload;
  };
  std::vector<Section> sections_;
};

struct SnapshotSection {
  std::string name;
  std::string_view payload;  // into the parsed buffer
};

// Parsed view of a container file. Borrows the file bytes: the buffer
// passed to parse() must outlive the reader and its section views.
class SnapshotReader {
 public:
  // Validates magic, version, structure, per-section checksums, and the
  // whole-file footer. On failure returns nullopt and describes the first
  // problem in `error`. Defaults accept a snapshot container; pass a
  // different magic/version pair for other container families.
  static std::optional<SnapshotReader> parse(
      std::string_view file, std::string& error,
      std::string_view magic = kSnapshotMagic,
      std::uint32_t version = kSnapshotVersion);

  const SnapshotSection* find(std::string_view name) const;
  const std::vector<SnapshotSection>& sections() const { return sections_; }

 private:
  std::vector<SnapshotSection> sections_;
};

// Whole-file checksum as recorded in run manifests: FNV-1a over the file
// bytes, rendered as "0x%016x" by checksum_hex.
std::uint64_t snapshot_checksum(std::string_view bytes);
std::string checksum_hex(std::uint64_t checksum);

// File helpers. Binary-mode whole-file write/read; on failure return
// false / nullopt with a message in `error`.
bool write_file_bytes(const std::string& path, std::string_view bytes,
                      std::string& error);
std::optional<std::string> read_file_bytes(const std::string& path,
                                           std::string& error);

}  // namespace piggyweb::persist

// Checkpoint/restore for trace evaluation runs (piggyweb_evaluate).
//
// A run interrupted after request `next_request` saves an EvalSnapshot:
// the per-source metric/protocol state (sim::detail::EvalStateImage), the
// directory-volume contents, a trace fingerprint, and an echo of the
// configuration knobs that shape behaviour. A warm-started run restores
// the snapshot and replays [next_request, N) — producing results
// bit-identical to the uninterrupted run at any thread count.
//
// Two numbering facts make this work:
//
//   * Volume ids are *opaque*: RPV suppression compares them only for
//     equality, and nothing else observes them. The snapshot renumbers
//     volumes into a canonical order — sorted by (server, prefix) — and
//     rewrites the ids inside saved RPV state to canonical indices, so the
//     snapshot bytes do not depend on the saving run's thread count. The
//     restore assigns fresh run ids (per its own shard layout) and
//     translates canonical indices forward.
//
//   * Per-source state keys carry the source id in their high 32 bits, so
//     one flat image re-shards at any source-shard count; the restoring
//     evaluator's shard function decides ownership.
//
// Probability volumes are stateless lookups into a set rebuilt
// deterministically at load, with set-derived dense ids — no volume
// contents to save and no translation needed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "persist/tables.h"
#include "sim/eval_core.h"
#include "sim/parallel_eval.h"
#include "trace/record.h"
#include "volume/directory.h"

namespace piggyweb::persist {

// Fingerprint of a time-sorted trace: trace::trace_content_fingerprint,
// the fold over the canonical "PIGGYTRC" column encoding (requests plus
// string tables). A resume refuses to run against a trace with a
// different fingerprint — intern ids must line up with the saved run —
// and the value is identical whether the trace was parsed from CLF or
// mapped from a binary container of the same content.
std::uint64_t trace_fingerprint(const trace::Trace& trace);

// Behaviour-shaping knobs echoed into the snapshot; a resume whose flags
// disagree is rejected instead of silently diverging. Directory fields are
// zero for the probability scheme.
struct EvalConfigEcho {
  std::string scheme;  // provider scheme_name(): "directory"/"probability"
  util::Seconds prediction_window = 0;
  util::Seconds cache_horizon = 0;
  std::uint32_t filter_max_elements = 0;
  std::uint32_t filter_min_access_count = 0;
  bool use_rpv = false;
  util::Seconds rpv_timeout = 0;
  std::uint64_t rpv_max_entries = 0;
  util::Seconds min_piggyback_interval = 0;
  int directory_level = 0;
  std::uint64_t max_volume_elements = 0;
  std::uint64_t max_candidates = 0;
  std::uint64_t large_size_threshold = 0;

  bool operator==(const EvalConfigEcho&) const = default;
};

EvalConfigEcho make_eval_config_echo(
    std::string_view scheme, const sim::EvalConfig& eval,
    const volume::DirectoryVolumeConfig* directory);

// A captured mid-run evaluation state, canonical across thread counts:
// saving the same run at --threads=1 and --threads=4 produces identical
// bytes.
struct EvalSnapshot {
  EvalConfigEcho config;
  std::uint64_t next_request = 0;   // first unprocessed request index
  std::uint64_t total_requests = 0;
  std::uint64_t fingerprint = 0;
  // Metric state, sorted by key; directory RPV entries hold canonical
  // volume indices into `volumes`.
  sim::detail::EvalStateImage metrics;
  // Canonical (server, prefix)-sorted volume images; volumes[i].saved_id
  // == i.
  std::vector<DirectoryVolumeImage> volumes;
};

// Collects per-shard provider/accumulator state into a canonical
// snapshot. `providers` holds the run's DirectoryVolumes shards (empty
// for the probability scheme); `accumulators` the per-source-shard metric
// state (disjoint sources). Serial runs pass one of each.
EvalSnapshot capture_eval_state(
    std::span<const volume::DirectoryVolumes* const> providers,
    std::span<const sim::detail::MetricAccumulator* const> accumulators,
    EvalConfigEcho config, std::uint64_t next_request,
    std::uint64_t total_requests, std::uint64_t fingerprint);

// Snapshot container round trip. parse_ validates structure exhaustively
// (section checksums, sorted keys, id ranges) and never crashes on
// corrupt input.
std::string serialize_eval_snapshot(const EvalSnapshot& snapshot);
std::optional<EvalSnapshot> parse_eval_snapshot(std::string_view file,
                                                std::string& error);
bool save_eval_snapshot(const std::string& path, const EvalSnapshot& snapshot,
                        std::string& error);
std::optional<EvalSnapshot> load_eval_snapshot(const std::string& path,
                                               std::string& error);

// Replays a snapshot into a restarting run. Use via hooks() with
// ParallelEvaluator::run_range, or call warm_provider/seed_accumulator
// directly with shard 0 of 1 around PredictionEvaluator::run_range. The
// snapshot must outlive the restore and the run it seeds.
class EvalRestore {
 public:
  explicit EvalRestore(const EvalSnapshot& snapshot);

  // Installs the snapshot volumes owned by provider shard `shard` of
  // `shards` (no-op for the probability scheme). Every provider shard
  // must be warmed before the first seed_accumulator call — the hooks
  // contract of ParallelEvaluator::run_range guarantees this.
  void warm_provider(core::VolumeProvider& provider, std::size_t shard,
                     std::size_t shards);

  // Seeds one source shard's accumulator; shard 0 takes the counters.
  void seed_accumulator(sim::detail::MetricAccumulator& accumulator,
                        std::size_t shard, std::size_t shards);

  // Hooks bound to this object (capture left unset).
  sim::EvalResumeHooks hooks();

  std::size_t next_request() const {
    return static_cast<std::size_t>(snapshot_->next_request);
  }

 private:
  const EvalSnapshot* snapshot_;
  bool directory_ = false;
  std::size_t provider_shards_seen_ = 0;
  std::size_t provider_shards_expected_ = 0;
  // canonical volume index -> this run's volume id.
  std::vector<core::VolumeId> run_id_of_;
  // Snapshot metrics with RPV ids translated to run ids (built lazily at
  // the first seed_accumulator call, after all providers are warm).
  std::optional<sim::detail::EvalStateImage> translated_;
};

}  // namespace piggyweb::persist

#include "persist/tables.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "persist/state_access.h"
#include "proxy/cache.h"
#include "util/expect.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"

namespace piggyweb::persist {

// Primitive vectors ---------------------------------------------------------

void serialize_u64_vector(std::span<const std::uint64_t> values,
                          ByteWriter& out) {
  out.u64(values.size());
  for (const auto v : values) out.u64(v);
}

bool deserialize_u64_vector(ByteReader& in, std::vector<std::uint64_t>& values,
                            std::string& error) {
  const auto count = in.u64();
  if (!in.fits(count, 8)) {
    error = "u64 vector count overruns input";
    return false;
  }
  values.clear();
  values.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) values.push_back(in.u64());
  if (!in.ok()) {
    error = "truncated u64 vector";
    return false;
  }
  return true;
}

// util::InternTable ---------------------------------------------------------

void serialize_intern_table(const util::InternTable& table, ByteWriter& out) {
  out.u64(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    out.str(table.str(static_cast<util::InternId>(i)));
  }
}

bool deserialize_intern_table(ByteReader& in, util::InternTable& table,
                              std::string& error) {
  PW_EXPECT(table.empty());
  const auto count = in.u64();
  if (!in.fits(count, 4)) {
    error = "intern table count overruns input";
    return false;
  }
  table.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto s = in.str();
    if (!in.ok()) {
      error = "truncated intern table";
      return false;
    }
    if (table.intern(s) != static_cast<util::InternId>(i)) {
      error = "duplicate string in intern table";
      return false;
    }
  }
  return true;
}

// core::RpvList -------------------------------------------------------------

void serialize_rpv_list(const core::RpvList& list, ByteWriter& out) {
  const auto entries = list.entries();
  out.u64(entries.size());
  for (const auto& entry : entries) {
    out.u32(entry.volume);
    out.i64(entry.when.value);
  }
}

bool deserialize_rpv_entries(ByteReader& in,
                             std::vector<core::RpvEntry>& entries,
                             std::string& error) {
  const auto count = in.u64();
  if (!in.fits(count, 12)) {
    error = "rpv entry count overruns input";
    return false;
  }
  entries.clear();
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    core::RpvEntry entry;
    entry.volume = in.u32();
    entry.when = util::TimePoint{in.i64()};
    entries.push_back(entry);
  }
  if (!in.ok()) {
    error = "truncated rpv entries";
    return false;
  }
  return true;
}

// volume::ShardedPairCounterTable -------------------------------------------

void serialize_sharded_pair_counts(const volume::ShardedPairCounterTable& table,
                                   ByteWriter& out) {
  auto pairs = table.pair_entries();
  std::sort(pairs.begin(), pairs.end());
  out.u64(pairs.size());
  for (const auto& [key, count] : pairs) {
    out.u64(key);
    out.u64(count);
  }
  serialize_u64_vector(table.occurrence_vector(), out);
}

bool deserialize_sharded_pair_counts(ByteReader& in,
                                     volume::ShardedPairCounterTable& table,
                                     std::string& error) {
  const auto count = in.u64();
  if (!in.fits(count, 16)) {
    error = "pair counter count overruns input";
    return false;
  }
  std::uint64_t previous_key = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto key = in.u64();
    const auto value = in.u64();
    if (!in.ok()) {
      error = "truncated pair counters";
      return false;
    }
    if (i > 0 && key <= previous_key) {
      error = "pair counter keys not strictly ascending";
      return false;
    }
    previous_key = key;
    table.add_pair_key(key, value);
  }
  std::vector<std::uint64_t> occurrences;
  if (!deserialize_u64_vector(in, occurrences, error)) return false;
  if (occurrences.size() > 0xffffffffull) {
    error = "occurrence vector exceeds the resource id space";
    return false;
  }
  for (std::size_t r = 0; r < occurrences.size(); ++r) {
    if (occurrences[r] == 0) continue;
    table.add_occurrence(static_cast<util::InternId>(r), occurrences[r]);
  }
  return true;
}

// volume::ProbabilityVolumeSet ----------------------------------------------

void serialize_probability_volume_set(const volume::ProbabilityVolumeSet& set,
                                      ByteWriter& out) {
  struct Row {
    core::VolumeId id;
    util::InternId resource;
    const std::vector<volume::VolumeEntry>* entries;
  };
  std::vector<Row> rows;
  rows.reserve(set.volume_count());
  for (const auto& [resource, entries] : set.volumes()) {
    rows.push_back({set.volume_id(resource), resource, &entries});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.id < b.id; });
  out.u64(rows.size());
  for (const auto& row : rows) {
    out.u32(row.resource);
    out.u64(row.entries->size());
    for (const auto& entry : *row.entries) {
      out.u32(entry.resource);
      out.f64(entry.probability);
      out.f64(entry.effectiveness);
    }
  }
}

bool deserialize_probability_volume_set(ByteReader& in,
                                        volume::ProbabilityVolumeSet& set,
                                        std::string& error) {
  if (set.volume_count() != 0) {
    error = "probability volume set not empty";
    return false;
  }
  const auto count = in.u64();
  if (!in.fits(count, 12)) {
    error = "probability volume count overruns input";
    return false;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto resource = in.u32();
    const auto entry_count = in.u64();
    if (!in.fits(entry_count, 20)) {
      error = "probability volume entry count overruns input";
      return false;
    }
    std::vector<volume::VolumeEntry> entries;
    entries.reserve(entry_count);
    for (std::uint64_t j = 0; j < entry_count; ++j) {
      const volume::VolumeEntry entry{in.u32(), in.f64(), in.f64()};
      entries.push_back(entry);
    }
    if (!in.ok()) {
      error = "truncated probability volumes";
      return false;
    }
    if (entries.empty()) {
      error = "empty probability volume";
      return false;
    }
    set.add_volume(resource, std::move(entries));
    if (set.volume_id(resource) != static_cast<core::VolumeId>(i)) {
      error = "duplicate resource in probability volumes";
      return false;
    }
  }
  return true;
}

// volume::DirectoryVolumes images -------------------------------------------

void serialize_directory_volume_images(
    std::span<const DirectoryVolumeImage> images, ByteWriter& out) {
  out.u64(images.size());
  for (const auto& image : images) {
    out.u32(image.server);
    out.str(image.prefix);
    out.u32(image.saved_id);
    for (const auto& part : image.parts) {
      out.u64(part.size());
      for (const auto& element : part) {
        out.u32(element.resource);
        out.i64(element.last_access.value);
      }
    }
  }
}

bool deserialize_directory_volume_images(
    ByteReader& in, std::vector<DirectoryVolumeImage>& images,
    std::string& error) {
  const auto count = in.u64();
  if (!in.fits(count, 16)) {
    error = "directory volume count overruns input";
    return false;
  }
  images.clear();
  images.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DirectoryVolumeImage image;
    image.server = in.u32();
    image.prefix = std::string(in.str());
    image.saved_id = in.u32();
    for (auto& part : image.parts) {
      const auto element_count = in.u64();
      if (!in.fits(element_count, 12)) {
        error = "directory element count overruns input";
        return false;
      }
      part.reserve(element_count);
      for (std::uint64_t j = 0; j < element_count; ++j) {
        DirectoryElementImage element;
        element.resource = in.u32();
        element.last_access = util::TimePoint{in.i64()};
        part.push_back(element);
      }
    }
    if (!in.ok()) {
      error = "truncated directory volumes";
      return false;
    }
    images.push_back(std::move(image));
  }
  return true;
}

// StateAccess: volume::PairCounts -------------------------------------------

void StateAccess::serialize_pair_counts(const volume::PairCounts& counts,
                                        ByteWriter& out) {
  serialize_u64_vector(counts.c_r_, out);
  serialize_flat_map(counts.pairs_, out,
                     [](ByteWriter& w, const volume::PairCount& pair) {
                       w.u64(pair.count);
                       w.u64(pair.cr_at_creation);
                     });
}

bool StateAccess::deserialize_pair_counts(ByteReader& in,
                                          volume::PairCounts& counts,
                                          std::string& error) {
  if (!deserialize_u64_vector(in, counts.c_r_, error)) return false;
  return deserialize_flat_map(
      in, counts.pairs_,
      [](ByteReader& r, volume::PairCount& pair, std::string&) {
        pair.count = r.u64();
        pair.cr_at_creation = r.u64();
        return true;
      },
      error);
}

// StateAccess: volume::DirectoryVolumes -------------------------------------

std::vector<DirectoryVolumeImage> StateAccess::export_directory_volumes(
    const volume::DirectoryVolumes& provider) {
  using volume::DirectoryVolumes;
  static_assert(DirectoryVolumes::kPartitions == kDirectoryPartitions);
  std::vector<DirectoryVolumeImage> images(provider.volumes_.size());
  for (const auto& [key, local] : provider.ids_) {
    auto& image = images[local];
    image.server = static_cast<util::InternId>(key >> 32);
    image.prefix = std::string(
        provider.prefixes_.str(static_cast<util::InternId>(key & 0xffffffffu)));
    image.saved_id =
        provider.config_.id_offset + provider.config_.id_stride * local;
    const auto& volume = provider.volumes_[local];
    for (std::size_t p = 0; p < kDirectoryPartitions; ++p) {
      image.parts[p].reserve(volume.parts[p].size());
      for (const auto& element : volume.parts[p]) {
        image.parts[p].push_back({element.resource, element.last_access});
      }
    }
  }
  return images;
}

bool StateAccess::import_directory_volumes(
    volume::DirectoryVolumes& provider,
    std::span<const DirectoryVolumeImage* const> images,
    std::vector<core::VolumeId>& assigned_ids, std::string& error) {
  using volume::DirectoryVolumes;
  PW_EXPECT(provider.volumes_.empty());
  assigned_ids.reserve(assigned_ids.size() + images.size());
  provider.volumes_.reserve(images.size());
  for (const auto* image_ptr : images) {
    PW_EXPECT(image_ptr != nullptr);
    const auto& image = *image_ptr;
    const auto prefix = provider.prefixes_.intern(image.prefix);
    const auto key = DirectoryVolumes::volume_key(image.server, prefix);
    const auto local = static_cast<core::VolumeId>(provider.volumes_.size());
    if (!provider.ids_.try_emplace(key, local).second) {
      error = "duplicate (server, prefix) directory volume";
      return false;
    }
    provider.volumes_.emplace_back();
    auto& volume = provider.volumes_.back();
    for (std::size_t p = 0; p < kDirectoryPartitions; ++p) {
      for (const auto& element : image.parts[p]) {
        volume.parts[p].push_back({element.resource, element.last_access});
        const auto node = std::prev(volume.parts[p].end());
        if (!volume.index.emplace(element.resource, std::make_pair(p, node))
                 .second) {
          error = "duplicate resource in directory volume";
          return false;
        }
      }
    }
    assigned_ids.push_back(provider.config_.id_offset +
                           provider.config_.id_stride * local);
  }
  return true;
}

// StateAccess: proxy::ProxyCache --------------------------------------------

void StateAccess::serialize_proxy_cache(const proxy::ProxyCache& cache,
                                        ByteWriter& out) {
  out.u64(cache.config_.capacity_bytes);
  out.i64(cache.config_.freshness_interval);
  out.u8(static_cast<std::uint8_t>(cache.config_.policy));
  out.u64(cache.used_);
  out.f64(cache.gd_inflation_);

  // Entries in LRU order (most recent first). Iterator positions are not
  // serialized; the restore rebuilds them from the queue orders below.
  out.u64(cache.lru_.size());
  util::FlatMap<std::uint64_t, std::uint64_t> index_of;
  index_of.reserve(cache.lru_.size());
  std::uint64_t index = 0;
  for (const auto packed : cache.lru_) {
    const auto& entry = cache.entries_.at(packed);
    out.u32(entry.key.server);
    out.u32(entry.key.path);
    out.u64(entry.size);
    out.i64(entry.last_modified);
    out.i64(entry.expires.value);
    out.i64(entry.last_access.value);
    out.f64(entry.gd_h);
    out.f64(entry.hint);
    index_of.try_emplace(packed, index++);
  }

  // The replacement queues as entry-index sequences in iteration order.
  // multimap::emplace inserts at the upper bound of an equal-key range, so
  // re-inserting in this order reproduces the relative order of ties —
  // which pick_victim() depends on.
  const auto write_queue = [&](const auto& queue) {
    out.u64(queue.size());
    for (const auto& kv : queue) out.u64(index_of.at(kv.second));
  };
  write_queue(cache.gd_queue_);
  write_queue(cache.size_queue_);
  write_queue(cache.expiry_queue_);

  serialize_flat_map(cache.freshness_overrides_, out,
                     [](ByteWriter& w, util::Seconds s) { w.i64(s); });

  out.u64(cache.stats_.lookups);
  out.u64(cache.stats_.fresh_hits);
  out.u64(cache.stats_.stale_hits);
  out.u64(cache.stats_.misses);
  out.u64(cache.stats_.insertions);
  out.u64(cache.stats_.evictions);
  out.u64(cache.stats_.piggyback_refreshes);
  out.u64(cache.stats_.piggyback_invalidations);
}

bool StateAccess::deserialize_proxy_cache(ByteReader& in,
                                          proxy::ProxyCache& cache,
                                          std::string& error) {
  using Entry = proxy::ProxyCache::Entry;
  const auto capacity = in.u64();
  const auto freshness = in.i64();
  const auto policy = in.u8();
  if (!in.ok()) {
    error = "truncated cache header";
    return false;
  }
  if (capacity != cache.config_.capacity_bytes ||
      freshness != cache.config_.freshness_interval ||
      policy != static_cast<std::uint8_t>(cache.config_.policy)) {
    error = "cache config mismatch";
    return false;
  }
  const auto used = in.u64();
  const auto inflation = in.f64();
  const auto entry_count = in.u64();
  if (!in.fits(entry_count, 56)) {
    error = "cache entry count overruns input";
    return false;
  }

  // Decode everything before mutating the cache: entries in LRU order...
  std::vector<Entry> entries;
  entries.reserve(entry_count);
  util::FlatMap<std::uint64_t, std::uint8_t> seen_keys;
  seen_keys.reserve(entry_count);
  std::uint64_t total_size = 0;
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    Entry entry{};
    entry.key.server = in.u32();
    entry.key.path = in.u32();
    entry.size = in.u64();
    entry.last_modified = in.i64();
    entry.expires = util::TimePoint{in.i64()};
    entry.last_access = util::TimePoint{in.i64()};
    entry.gd_h = in.f64();
    entry.hint = in.f64();
    if (!in.ok()) {
      error = "truncated cache entries";
      return false;
    }
    if (!seen_keys.try_emplace(entry.key.packed()).second) {
      error = "duplicate cache entry";
      return false;
    }
    total_size += entry.size;
    entries.push_back(entry);
  }
  if (total_size != used) {
    error = "cache used-bytes mismatch";
    return false;
  }

  // ...then the three queue orders (each a permutation of entry indices)...
  const auto read_queue = [&](std::vector<std::uint64_t>& order) {
    const auto count = in.u64();
    if (!in.ok() || count != entries.size()) return false;
    std::vector<std::uint8_t> seen(entries.size(), 0);
    order.clear();
    order.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto idx = in.u64();
      if (!in.ok() || idx >= entries.size() || seen[idx] != 0) return false;
      seen[idx] = 1;
      order.push_back(idx);
    }
    return true;
  };
  std::vector<std::uint64_t> gd_order;
  std::vector<std::uint64_t> size_order;
  std::vector<std::uint64_t> expiry_order;
  if (!read_queue(gd_order) || !read_queue(size_order) ||
      !read_queue(expiry_order)) {
    error = "invalid cache queue order";
    return false;
  }

  // ...then overrides and stats.
  util::FlatMap<std::uint64_t, util::Seconds> overrides;
  if (!deserialize_flat_map(
          in, overrides,
          [](ByteReader& r, util::Seconds& s, std::string&) {
            s = r.i64();
            return true;
          },
          error)) {
    return false;
  }
  proxy::CacheStats stats;
  stats.lookups = in.u64();
  stats.fresh_hits = in.u64();
  stats.stale_hits = in.u64();
  stats.misses = in.u64();
  stats.insertions = in.u64();
  stats.evictions = in.u64();
  stats.piggyback_refreshes = in.u64();
  stats.piggyback_invalidations = in.u64();
  if (!in.ok()) {
    error = "truncated cache stats";
    return false;
  }

  // Install: clear, rebuild the LRU list and entry map, then re-insert the
  // queues in recorded order and patch the iterator positions.
  cache.entries_.clear();
  cache.lru_.clear();
  cache.gd_queue_.clear();
  cache.size_queue_.clear();
  cache.expiry_queue_.clear();
  cache.freshness_overrides_ = std::move(overrides);
  cache.used_ = used;
  cache.gd_inflation_ = inflation;
  cache.stats_ = stats;

  cache.entries_.reserve(entries.size());
  std::vector<std::uint64_t> packed_of;
  packed_of.reserve(entries.size());
  for (const auto& entry : entries) {
    const auto packed = entry.key.packed();
    packed_of.push_back(packed);
    cache.lru_.push_back(packed);
    auto [it, inserted] = cache.entries_.try_emplace(packed, entry);
    PW_ENSURE(inserted);  // duplicates were rejected above
    it->second.lru_pos = std::prev(cache.lru_.end());
  }
  // entries_ is fully populated (reserved above, so no rehash happens
  // after this point) — references handed out by at() stay valid.
  for (const auto idx : gd_order) {
    auto& entry = cache.entries_.at(packed_of[idx]);
    entry.gd_pos = cache.gd_queue_.emplace(entry.gd_h, packed_of[idx]);
  }
  for (const auto idx : size_order) {
    auto& entry = cache.entries_.at(packed_of[idx]);
    entry.size_pos = cache.size_queue_.emplace(entry.size, packed_of[idx]);
  }
  for (const auto idx : expiry_order) {
    auto& entry = cache.entries_.at(packed_of[idx]);
    entry.expiry_pos =
        cache.expiry_queue_.emplace(entry.expires.value, packed_of[idx]);
  }
  return true;
}

// StateAccess: core::RpvTable -----------------------------------------------

void StateAccess::serialize_rpv_table(const core::RpvTable& table,
                                      ByteWriter& out) {
  out.i64(table.config_.timeout);
  out.u64(table.config_.max_entries);
  out.u64(table.max_servers_);
  serialize_flat_map(table.lists_, out,
                     [](ByteWriter& w, const core::RpvList& list) {
                       serialize_rpv_list(list, w);
                     });
  out.u64(table.use_order_.size());
  for (const auto server : table.use_order_) out.u32(server);
}

bool StateAccess::deserialize_rpv_table(ByteReader& in, core::RpvTable& table,
                                        std::string& error) {
  const auto timeout = in.i64();
  const auto max_entries = in.u64();
  const auto max_servers = in.u64();
  if (!in.ok()) {
    error = "truncated rpv table header";
    return false;
  }
  if (timeout != table.config_.timeout ||
      max_entries != table.config_.max_entries ||
      max_servers != table.max_servers_) {
    error = "rpv table config mismatch";
    return false;
  }
  table.lists_.clear();
  table.use_order_.clear();
  const auto count = in.u64();
  if (!in.fits(count, 16)) {
    error = "rpv table count overruns input";
    return false;
  }
  table.lists_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto raw = in.u64();
    if (!in.ok()) {
      error = "truncated rpv table";
      return false;
    }
    if (raw > 0xffffffffull) {
      error = "rpv server id out of range";
      return false;
    }
    const auto [it, inserted] =
        table.lists_.try_emplace(static_cast<util::InternId>(raw),
                                 table.config_);
    if (!inserted) {
      error = "duplicate rpv server";
      return false;
    }
    std::vector<core::RpvEntry> entries;
    if (!deserialize_rpv_entries(in, entries, error)) return false;
    it->second.restore_entries(entries);
  }
  const auto order_count = in.u64();
  if (!in.ok() || order_count != table.lists_.size()) {
    error = "rpv use order size mismatch";
    return false;
  }
  util::FlatMap<util::InternId, std::uint8_t> seen;
  seen.reserve(order_count);
  for (std::uint64_t i = 0; i < order_count; ++i) {
    const auto server = in.u32();
    if (!in.ok()) {
      error = "truncated rpv use order";
      return false;
    }
    if (!table.lists_.contains(server)) {
      error = "rpv use order references unknown server";
      return false;
    }
    if (!seen.try_emplace(server).second) {
      error = "duplicate server in rpv use order";
      return false;
    }
    table.use_order_.push_back(server);
  }
  return true;
}

}  // namespace piggyweb::persist

#include "persist/engine_state.h"

#include "persist/codec.h"
#include "persist/state_access.h"
#include "sim/engine.h"
#include "sim/node.h"

namespace piggyweb::persist {

std::span<const std::unique_ptr<sim::ProxyNode>> StateAccess::nodes(
    const sim::SimulationEngine& engine) {
  return engine.nodes_;
}

std::string serialize_engine_state(const sim::SimulationEngine& engine) {
  const auto nodes = StateAccess::nodes(engine);
  SnapshotWriter writer;
  ByteWriter out;
  out.u64(nodes.size());
  for (const auto& node : nodes) {
    StateAccess::serialize_proxy_cache(node->cache, out);
    StateAccess::serialize_rpv_table(node->filter_policy.rpv(), out);
  }
  writer.add_section("engine_nodes", out.take());
  return writer.finish();
}

bool restore_engine_state(sim::SimulationEngine& engine, std::string_view file,
                          std::string& error) {
  const auto reader = SnapshotReader::parse(file, error);
  if (!reader.has_value()) return false;
  const auto* section = reader->find("engine_nodes");
  if (section == nullptr) {
    error = "missing engine_nodes section";
    return false;
  }
  const auto nodes = StateAccess::nodes(engine);
  ByteReader in(section->payload);
  const auto count = in.u64();
  if (!in.ok() || count != nodes.size()) {
    error = "engine node count mismatch";
    return false;
  }
  for (const auto& node : nodes) {
    if (!StateAccess::deserialize_proxy_cache(in, node->cache, error)) {
      return false;
    }
    if (!StateAccess::deserialize_rpv_table(in, node->filter_policy.rpv(),
                                            error)) {
      return false;
    }
  }
  if (!in.at_end()) {
    error = "trailing bytes in engine_nodes section";
    return false;
  }
  return true;
}

}  // namespace piggyweb::persist

// Serializers for piggyweb's durable tables — each a (serialize,
// deserialize) pair over the codec's ByteWriter/ByteReader emitting a
// canonical byte stream: map entries sorted by key, list contents in their
// semantic order (LRU front to back, FIFO oldest first). Canonical bytes
// make "restore then re-serialize" a bit-exact identity, which the
// round-trip property suites rely on.
//
// Tables whose state is reachable through public APIs are handled by the
// free functions here; tables that need private access (PairCounts,
// DirectoryVolumes, ProxyCache, RpvTable, the engine's node array) go
// through persist::StateAccess (state_access.h).
//
// Every deserializer is defensive: counts are bounds-checked against the
// remaining input before any allocation, structural invariants (duplicate
// keys, dangling indices, size mismatches) are rejected with an error
// string, and no input can trip a contract failure or undefined behaviour.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/rpv.h"
#include "persist/codec.h"
#include "util/flat_map.h"
#include "util/intern.h"
#include "util/time.h"
#include "volume/probability.h"
#include "volume/sharded_pair_counter.h"

namespace piggyweb::persist {

// Primitive vectors ---------------------------------------------------------

void serialize_u64_vector(std::span<const std::uint64_t> values,
                          ByteWriter& out);
bool deserialize_u64_vector(ByteReader& in, std::vector<std::uint64_t>& values,
                            std::string& error);

// util::InternTable ---------------------------------------------------------
//
// Strings in id order; reloading into an empty table reproduces the exact
// id assignment (the table hands out dense ids in insertion order).

void serialize_intern_table(const util::InternTable& table, ByteWriter& out);
bool deserialize_intern_table(ByteReader& in, util::InternTable& table,
                              std::string& error);

// util::FlatMap -------------------------------------------------------------
//
// Iteration order is unspecified, so the canonical encoding sorts entries
// by key. `write_value(out, value)` / `read_value(in, value, error)`
// encode the mapped type; read_value returns false (with `error` set) to
// reject a malformed value.

template <typename K, typename V, typename WriteValue>
void serialize_flat_map(const util::FlatMap<K, V>& map, ByteWriter& out,
                        WriteValue&& write_value) {
  std::vector<const typename util::FlatMap<K, V>::value_type*> entries;
  entries.reserve(map.size());
  for (const auto& kv : map) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  out.u64(entries.size());
  for (const auto* kv : entries) {
    out.u64(static_cast<std::uint64_t>(kv->first));
    write_value(out, kv->second);
  }
}

template <typename K, typename V, typename ReadValue>
bool deserialize_flat_map(ByteReader& in, util::FlatMap<K, V>& map,
                          ReadValue&& read_value, std::string& error) {
  const auto count = in.u64();
  if (!in.fits(count, 8)) {
    error = "flat map count overruns input";
    return false;
  }
  map.clear();
  map.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto raw = in.u64();
    const auto key = static_cast<K>(raw);
    if (static_cast<std::uint64_t>(key) != raw) {
      error = "flat map key out of range";
      return false;
    }
    const auto [it, inserted] = map.try_emplace(key);
    if (!inserted) {
      error = "duplicate flat map key";
      return false;
    }
    if (!read_value(in, it->second, error)) return false;
  }
  if (!in.ok()) {
    error = "truncated flat map";
    return false;
  }
  return true;
}

// core::RpvList -------------------------------------------------------------
//
// FIFO contents oldest first, no expiry applied. The read side returns raw
// entries; the caller installs them into a list constructed with the
// run's RpvConfig via RpvList::restore_entries.

void serialize_rpv_list(const core::RpvList& list, ByteWriter& out);
bool deserialize_rpv_entries(ByteReader& in,
                             std::vector<core::RpvEntry>& entries,
                             std::string& error);

// volume::ShardedPairCounterTable -------------------------------------------
//
// The merged (stripe-independent) counter state: pair counters sorted by
// key, then the dense c(r) occurrence vector. Deserialization adds into
// `table`, which must be freshly constructed; the stripe count is a
// performance detail and does not need to match the saved run.

void serialize_sharded_pair_counts(const volume::ShardedPairCounterTable& table,
                                   ByteWriter& out);
bool deserialize_sharded_pair_counts(ByteReader& in,
                                     volume::ShardedPairCounterTable& table,
                                     std::string& error);

// volume::ProbabilityVolumeSet ----------------------------------------------
//
// Volumes in volume-id order, so reloading into an empty set reassigns the
// identical dense ids.

void serialize_probability_volume_set(const volume::ProbabilityVolumeSet& set,
                                      ByteWriter& out);
bool deserialize_probability_volume_set(ByteReader& in,
                                        volume::ProbabilityVolumeSet& set,
                                        std::string& error);

// volume::DirectoryVolumes ---------------------------------------------------
//
// Structural image of one directory volume: its identity (server id +
// prefix string — prefix intern ids are instance-local and do not
// persist), the volume id the saved run had assigned, and the six
// partition lists in MRU-first order. Volume ids are opaque (RPV
// suppression compares them only for equality), so a restore may renumber;
// EvalRestore (eval_state.h) translates saved ids in RPV state.

inline constexpr std::size_t kDirectoryPartitions = 6;

struct DirectoryElementImage {
  util::InternId resource = util::kInvalidIntern;
  util::TimePoint last_access{};

  bool operator==(const DirectoryElementImage&) const = default;
};

struct DirectoryVolumeImage {
  util::InternId server = util::kInvalidIntern;
  std::string prefix;
  core::VolumeId saved_id = core::kNoVolume;
  std::array<std::vector<DirectoryElementImage>, kDirectoryPartitions> parts;

  bool operator==(const DirectoryVolumeImage&) const = default;
};

void serialize_directory_volume_images(
    std::span<const DirectoryVolumeImage> images, ByteWriter& out);
bool deserialize_directory_volume_images(
    ByteReader& in, std::vector<DirectoryVolumeImage>& images,
    std::string& error);

}  // namespace piggyweb::persist

#include "core/rpv.h"

#include <algorithm>

namespace piggyweb::core {

void RpvList::expire(util::TimePoint now) {
  while (!entries_.empty() &&
         now - entries_.front().when > config_.timeout) {
    entries_.pop_front();
  }
}

void RpvList::note(VolumeId volume, util::TimePoint now) {
  expire(now);
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [volume](const Entry& e) { return e.volume == volume; });
  if (it != entries_.end()) entries_.erase(it);
  entries_.push_back({volume, now});
  while (entries_.size() > config_.max_entries) entries_.pop_front();
}

std::vector<VolumeId> RpvList::live(util::TimePoint now) {
  expire(now);
  std::vector<VolumeId> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.volume);
  return out;
}

std::vector<RpvEntry> RpvList::entries() const {
  return {entries_.begin(), entries_.end()};
}

void RpvList::restore_entries(std::span<const RpvEntry> entries) {
  entries_.assign(entries.begin(), entries.end());
}

bool RpvList::contains(VolumeId volume, util::TimePoint now) {
  expire(now);
  return std::any_of(entries_.begin(), entries_.end(),
                     [volume](const Entry& e) { return e.volume == volume; });
}

void RpvTable::note(util::InternId server, VolumeId volume,
                    util::TimePoint now) {
  auto [it, inserted] = lists_.try_emplace(server, config_);
  it->second.note(volume, now);
  if (inserted) use_order_.push_back(server);
  evict_if_needed(server);
}

std::vector<VolumeId> RpvTable::live(util::InternId server,
                                     util::TimePoint now) {
  const auto it = lists_.find(server);
  if (it == lists_.end()) return {};
  return it->second.live(now);
}

void RpvTable::evict_if_needed(util::InternId just_used) {
  while (lists_.size() > max_servers_ && !use_order_.empty()) {
    const auto victim = use_order_.front();
    use_order_.pop_front();
    if (victim == just_used) {
      use_order_.push_back(victim);  // re-queue the active server
      continue;
    }
    lists_.erase(victim);
  }
}

}  // namespace piggyweb::core

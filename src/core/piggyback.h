// Core protocol value types: volumes, piggyback elements/messages, and the
// volume-provider interface that both volume-construction families
// (directory-based, probability-based — src/volume/) implement.
//
// A piggyback element carries the identifier, size, and Last-Modified time
// of a resource from the same volume as the requested resource (§2.1). A
// piggyback message is a volume id plus a sequence of elements.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/record.h"
#include "util/intern.h"
#include "util/time.h"

namespace piggyweb::core {

// Dense per-server volume identifier. The wire format (§2.3) allocates two
// bytes (up to 32767 volumes per server); internally we keep 32 bits and
// let the HTTP layer enforce the wire bound.
using VolumeId = std::uint32_t;
inline constexpr VolumeId kNoVolume = 0xffffffffu;
inline constexpr VolumeId kMaxWireVolumeId = 32767;

struct PiggybackElement {
  util::InternId resource = util::kInvalidIntern;
  std::uint64_t size = 0;
  std::int64_t last_modified = -1;
  // Implication probability p(s|r) when the volume scheme computes one
  // (0 = absent). Rides the wire as an optional fourth element field and
  // feeds server-assisted cache replacement (§4, [24]).
  double probability = 0;
};

struct PiggybackMessage {
  VolumeId volume = kNoVolume;
  std::vector<PiggybackElement> elements;

  bool empty() const { return elements.empty(); }
};

// What the server (or volume center) knows about an incoming request when
// it consults the volume machinery.
struct VolumeRequest {
  util::InternId server = util::kInvalidIntern;
  util::InternId source = util::kInvalidIntern;  // requesting proxy
  util::InternId path = util::kInvalidIntern;    // requested resource
  util::TimePoint time;
  std::uint64_t size = 0;                        // response body size
  trace::ContentType type = trace::ContentType::kOther;
};

// A provider's raw candidate list for one request, before the proxy filter
// trims it. `probs` parallels `resources` for probability-based volumes
// (empty for directory-based ones); candidates are ordered best-first
// (recency for directory volumes, descending implication probability for
// probability volumes).
struct VolumePrediction {
  VolumeId volume = kNoVolume;
  std::vector<util::InternId> resources;
  std::vector<double> probs;

  bool empty() const { return resources.empty(); }
};

// Interface implemented by volume-construction schemes. on_request() both
// observes the access (directory volumes maintain FIFO/move-to-front state
// online) and returns the candidate piggyback contents.
class VolumeProvider {
 public:
  virtual ~VolumeProvider() = default;

  virtual VolumePrediction on_request(const VolumeRequest& request) = 0;

  // Batched form of on_request: fills predictions[i] for requests[i],
  // visiting requests strictly in span order so stateful providers evolve
  // exactly as a per-request loop would. `predictions` is resized to match
  // and its existing elements (and their vector capacity) are reused —
  // callers that keep the output vector across batches amortize the
  // per-prediction allocations away. The default implementation delegates
  // to on_request; stateful providers override it to skip the per-call
  // return-by-value copies.
  virtual void on_request_batch(std::span<const VolumeRequest> requests,
                                std::vector<VolumePrediction>& predictions);

  // Number of volumes currently defined (for stats / wire-id checks).
  virtual std::size_t volume_count() const = 0;

  // Human-readable scheme name for reports.
  virtual const char* scheme_name() const = 0;
};

}  // namespace piggyweb::core

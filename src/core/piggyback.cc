#include "core/piggyback.h"

namespace piggyweb::core {

void VolumeProvider::on_request_batch(
    std::span<const VolumeRequest> requests,
    std::vector<VolumePrediction>& predictions) {
  predictions.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    predictions[i] = on_request(requests[i]);
  }
}

}  // namespace piggyweb::core

#include "core/wire_size.h"

namespace piggyweb::core {

std::uint64_t piggyback_bytes(const PiggybackMessage& message,
                              const util::InternTable& paths) {
  if (message.empty()) return 0;
  std::uint64_t bytes = kVolumeIdBytes;
  for (const auto& element : message.elements) {
    bytes += paths.str(element.resource).size() + kLastModifiedBytes +
             kSizeBytes;
    if (element.probability > 0) bytes += kProbabilityBytes;
  }
  return bytes;
}

std::uint64_t packets_for(std::uint64_t payload_bytes) {
  constexpr std::uint64_t kPayloadPerPacket = kMtuBytes - kTcpIpHeaderBytes;
  if (payload_bytes == 0) return 1;  // a bare (e.g. 304) response packet
  return (payload_bytes + kPayloadPerPacket - 1) / kPayloadPerPacket;
}

WireCost piggyback_wire_cost(std::uint64_t response_bytes,
                             const PiggybackMessage& message,
                             const util::InternTable& paths) {
  WireCost cost;
  cost.bytes = piggyback_bytes(message, paths);
  const auto base = packets_for(response_bytes);
  const auto with_piggy = packets_for(response_bytes + cost.bytes);
  cost.extra_packets = with_piggy - base;
  return cost;
}

}  // namespace piggyweb::core

// Proxy-to-server feedback (§5 future work: "ways for the proxy to
// piggyback information to the server about accesses that are satisfied
// at the cache").
//
// The server never sees cache hits, so it cannot tell which piggybacked
// volumes actually helped. The proxy closes the loop: it remembers which
// volume each piggybacked resource belonged to, counts cache hits against
// those volumes, and piggybacks the tallies onto its next request to that
// server (`Piggy-hits` header). The server aggregates the tallies per
// volume — a usefulness signal for tuning volume construction — still
// with no per-proxy state.
#pragma once

#include <cstdint>
#include <vector>

#include "core/piggyback.h"
#include "util/flat_map.h"

namespace piggyweb::core {

struct VolumeHitCount {
  VolumeId volume = kNoVolume;
  std::uint32_t hits = 0;
};

// Proxy side: per-server tallies of cache hits attributable to volumes.
class HitFeedback {
 public:
  // Bound memory: at most this many (resource -> volume) attributions are
  // remembered per server, FIFO.
  explicit HitFeedback(std::size_t max_attributions_per_server = 4096)
      : max_attributions_(max_attributions_per_server) {}

  // A piggyback arrived: remember which volume mentioned each resource.
  void note_piggyback(util::InternId server, const PiggybackMessage& message);

  // A client request was satisfied from the cache; if the resource was
  // piggybacked earlier, credit its volume.
  void note_cache_hit(util::InternId server, util::InternId resource);

  // Pending tallies for `server`, clearing them (they ride the next
  // request). Sorted by volume id for deterministic wire output.
  std::vector<VolumeHitCount> drain(util::InternId server);

  std::size_t pending_servers() const { return pending_.size(); }

 private:
  struct ServerState {
    util::FlatMap<util::InternId, VolumeId> volume_of;  // attribution
    std::vector<util::InternId> attribution_order;      // FIFO bound
    util::FlatMap<VolumeId, std::uint32_t> tallies;
  };
  std::size_t max_attributions_;
  util::FlatMap<util::InternId, ServerState> pending_;
};

// Server side: aggregate usefulness per volume across all proxies.
class FeedbackCollector {
 public:
  void ingest(const std::vector<VolumeHitCount>& counts);

  std::uint64_t hits_for(VolumeId volume) const;
  std::uint64_t total_hits() const { return total_; }

  // Volumes sorted by descending usefulness (ties by ascending id).
  std::vector<VolumeHitCount> ranked() const;

 private:
  util::FlatMap<VolumeId, std::uint64_t> hits_;
  std::uint64_t total_ = 0;
};

}  // namespace piggyweb::core

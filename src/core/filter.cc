#include "core/filter.h"

#include <algorithm>

namespace piggyweb::core {

void apply_filter_into(const VolumePrediction& prediction,
                       const VolumeRequest& request, const ProxyFilter& filter,
                       const MetaOracle& meta, PiggybackMessage& out) {
  out.volume = kNoVolume;
  out.elements.clear();
  if (!filter.enabled || prediction.volume == kNoVolume ||
      prediction.resources.empty() || filter.max_elements == 0) {
    return;
  }
  if (std::find(filter.rpv.begin(), filter.rpv.end(), prediction.volume) !=
      filter.rpv.end()) {
    return;
  }
  out.volume = prediction.volume;
  out.elements.reserve(
      std::min<std::size_t>(prediction.resources.size(),
                            filter.max_elements));
  const bool has_probs =
      prediction.probs.size() == prediction.resources.size();
  for (std::size_t i = 0; i < prediction.resources.size(); ++i) {
    if (out.elements.size() >= filter.max_elements) break;
    const auto res = prediction.resources[i];
    if (res == request.path) continue;  // never echo the requested resource
    if (filter.probability_threshold && has_probs &&
        prediction.probs[i] < *filter.probability_threshold) {
      continue;
    }
    const auto info = meta.lookup(request.server, res);
    if (filter.max_size && info.size > *filter.max_size) continue;
    if (!filter.allows_type(info.type)) continue;
    if (info.access_count < filter.min_access_count) continue;
    out.elements.push_back({res, info.size, info.last_modified,
                            has_probs ? prediction.probs[i] : 0.0});
  }
  if (out.elements.empty()) out.volume = kNoVolume;
}

PiggybackMessage apply_filter(const VolumePrediction& prediction,
                              const VolumeRequest& request,
                              const ProxyFilter& filter,
                              const MetaOracle& meta) {
  PiggybackMessage message;
  apply_filter_into(prediction, request, filter, meta, message);
  return message;
}

}  // namespace piggyweb::core

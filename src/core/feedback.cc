#include "core/feedback.h"

#include <algorithm>

namespace piggyweb::core {

void HitFeedback::note_piggyback(util::InternId server,
                                 const PiggybackMessage& message) {
  if (message.empty()) return;
  auto& state = pending_[server];
  for (const auto& element : message.elements) {
    auto [it, inserted] =
        state.volume_of.try_emplace(element.resource, message.volume);
    if (!inserted) {
      it->second = message.volume;  // newest attribution wins
      continue;
    }
    state.attribution_order.push_back(element.resource);
    while (state.attribution_order.size() > max_attributions_) {
      state.volume_of.erase(state.attribution_order.front());
      state.attribution_order.erase(state.attribution_order.begin());
    }
  }
}

void HitFeedback::note_cache_hit(util::InternId server,
                                 util::InternId resource) {
  const auto state_it = pending_.find(server);
  if (state_it == pending_.end()) return;
  auto& state = state_it->second;
  const auto it = state.volume_of.find(resource);
  if (it == state.volume_of.end()) return;
  ++state.tallies[it->second];
}

std::vector<VolumeHitCount> HitFeedback::drain(util::InternId server) {
  const auto state_it = pending_.find(server);
  if (state_it == pending_.end()) return {};
  auto& tallies = state_it->second.tallies;
  std::vector<VolumeHitCount> out;
  out.reserve(tallies.size());
  for (const auto& [volume, hits] : tallies) {
    out.push_back({volume, hits});
  }
  tallies.clear();
  std::sort(out.begin(), out.end(),
            [](const VolumeHitCount& a, const VolumeHitCount& b) {
              return a.volume < b.volume;
            });
  return out;
}

void FeedbackCollector::ingest(const std::vector<VolumeHitCount>& counts) {
  for (const auto& count : counts) {
    hits_[count.volume] += count.hits;
    total_ += count.hits;
  }
}

std::uint64_t FeedbackCollector::hits_for(VolumeId volume) const {
  const auto it = hits_.find(volume);
  return it == hits_.end() ? 0 : it->second;
}

std::vector<VolumeHitCount> FeedbackCollector::ranked() const {
  std::vector<VolumeHitCount> out;
  out.reserve(hits_.size());
  for (const auto& [volume, hits] : hits_) {
    out.push_back({volume, static_cast<std::uint32_t>(
                               std::min<std::uint64_t>(hits, 0xffffffffu))});
  }
  std::sort(out.begin(), out.end(),
            [](const VolumeHitCount& a, const VolumeHitCount& b) {
              if (a.hits != b.hits) return a.hits > b.hits;
              return a.volume < b.volume;
            });
  return out;
}

}  // namespace piggyweb::core

// Proxy-side frequency control (§2.2): deciding per request whether to set
// the piggyback enable bit at all, independent of RPV contents. "The proxy
// can randomly set an enable/disable bit, or employ simple frequency
// control techniques, such as disabling piggybacks from servers which have
// sent piggybacks within the last minute."
#pragma once

#include <cstdint>

#include "util/flat_map.h"
#include "util/intern.h"
#include "util/rng.h"
#include "util/time.h"

namespace piggyweb::core {

class FrequencyPolicy {
 public:
  virtual ~FrequencyPolicy() = default;

  // Should this request to `server` at `now` enable piggybacking?
  virtual bool should_enable(util::InternId server, util::TimePoint now) = 0;

  // The proxy observed a (non-empty) piggyback from `server` at `now`.
  virtual void on_piggyback(util::InternId server, util::TimePoint now) = 0;

  virtual const char* name() const = 0;
};

// Always ask for piggybacks (the baseline and the RPV experiments' mode).
class AlwaysEnable final : public FrequencyPolicy {
 public:
  bool should_enable(util::InternId, util::TimePoint) override {
    return true;
  }
  void on_piggyback(util::InternId, util::TimePoint) override {}
  const char* name() const override { return "always"; }
};

// Randomly set the enable bit with probability p — the stateless option
// suited to servers with very many volumes (probability-based volumes).
class RandomEnable final : public FrequencyPolicy {
 public:
  RandomEnable(double probability, std::uint64_t seed)
      : probability_(probability), rng_(seed) {}

  bool should_enable(util::InternId, util::TimePoint) override {
    return rng_.chance(probability_);
  }
  void on_piggyback(util::InternId, util::TimePoint) override {}
  const char* name() const override { return "random"; }

 private:
  double probability_;
  util::Rng rng_;
};

// Disable piggybacks from servers that piggybacked within the last
// `min_interval` seconds. Small transient per-server state at the proxy.
class MinIntervalEnable final : public FrequencyPolicy {
 public:
  explicit MinIntervalEnable(util::Seconds min_interval)
      : min_interval_(min_interval) {}

  bool should_enable(util::InternId server, util::TimePoint now) override {
    const auto it = last_.find(server);
    return it == last_.end() || now - it->second >= min_interval_;
  }
  void on_piggyback(util::InternId server, util::TimePoint now) override {
    last_[server] = now;
  }
  const char* name() const override { return "min-interval"; }

 private:
  util::Seconds min_interval_;
  util::FlatMap<util::InternId, util::TimePoint> last_;
};

}  // namespace piggyweb::core

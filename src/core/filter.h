// Proxy filters (§2.2): the request-side knob that controls the frequency
// and contents of server piggyback messages without per-proxy server state.
//
// A filter travels in the `Piggy-filter` request header (grammar in
// src/http/piggy_headers.*). Applying a filter to a provider's candidate
// list is a pure function implemented here so the simulated server, the
// transparent volume center, and the HTTP demo all share it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/piggyback.h"

namespace piggyweb::core {

struct ProxyFilter {
  // Piggybacking disabled entirely for this request (frequency control may
  // randomly or periodically clear the enable bit, §2.2).
  bool enabled = true;

  // Maximum number of piggyback elements ("maxpiggy=10").
  std::uint32_t max_elements = 0xffffffffu;

  // Recently piggybacked volumes: the server must not piggyback volumes in
  // this list ("rpv=\"3,4\"").
  std::vector<VolumeId> rpv;

  // Probability threshold: elements must co-occur with the requested
  // resource with probability >= this ("pt=0.2"). Ignored by providers
  // that don't compute probabilities.
  std::optional<double> probability_threshold;

  // Content limits: omit resources larger than max_size bytes and content
  // types the proxy doesn't cache (e.g. wireless proxies omit images).
  std::optional<std::uint64_t> max_size;
  bool allow_html = true;
  bool allow_image = true;
  bool allow_other = true;

  // Minimum access count: omit resources accessed fewer than this many
  // times (the "access filter" of §3.2.2's evaluation).
  std::uint32_t min_access_count = 0;

  bool allows_type(trace::ContentType t) const {
    switch (t) {
      case trace::ContentType::kHtml:
        return allow_html;
      case trace::ContentType::kImage:
        return allow_image;
      case trace::ContentType::kOther:
        return allow_other;
    }
    return true;
  }
};

// Metadata oracle the filter consults per candidate resource. The real
// server knows these from its file system and access counters; in trace
// evaluation they come from observed log state.
struct ResourceMeta {
  std::uint64_t size = 0;
  std::int64_t last_modified = -1;
  trace::ContentType type = trace::ContentType::kOther;
  std::uint64_t access_count = 0;
};

class MetaOracle {
 public:
  virtual ~MetaOracle() = default;
  virtual ResourceMeta lookup(util::InternId server,
                              util::InternId resource) const = 0;
};

// Apply `filter` to a provider's prediction for `request`, producing the
// piggyback message the server would actually append (possibly empty):
//   * suppressed entirely if !filter.enabled or the volume is in the RPV,
//   * the requested resource itself is never echoed back,
//   * probability / size / type / access-count limits applied per element,
//   * truncated to max_elements (candidates arrive best-first).
PiggybackMessage apply_filter(const VolumePrediction& prediction,
                              const VolumeRequest& request,
                              const ProxyFilter& filter,
                              const MetaOracle& meta);

// Allocation-reusing form: clears and refills `out` (its element vector's
// capacity survives), so a caller looping over millions of requests keeps
// one message buffer instead of constructing one per request. apply_filter
// is a thin wrapper over this.
void apply_filter_into(const VolumePrediction& prediction,
                       const VolumeRequest& request, const ProxyFilter& filter,
                       const MetaOracle& meta, PiggybackMessage& out);

}  // namespace piggyweb::core

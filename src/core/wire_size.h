// Wire-overhead accounting (§2.3).
//
// The paper argues piggyback messages are cheap: a 2-byte volume id plus
// ~66 bytes per element (≈50-byte URL + 8-byte Last-Modified + 8-byte
// size), so a typical message (~6 elements, 398 bytes) usually fits in the
// same packet as the response, while every avoided future TCP connection
// saves at least two packets. These helpers compute that arithmetic on
// actual messages so bench/overhead_bytes can regenerate the numbers.
#pragma once

#include <cstdint>

#include "core/piggyback.h"
#include "util/intern.h"

namespace piggyweb::core {

inline constexpr std::uint64_t kVolumeIdBytes = 2;
inline constexpr std::uint64_t kLastModifiedBytes = 8;
inline constexpr std::uint64_t kSizeBytes = 8;
inline constexpr std::uint64_t kProbabilityBytes = 4;  // optional field
inline constexpr std::uint64_t kMtuBytes = 1500;
inline constexpr std::uint64_t kTcpIpHeaderBytes = 40;
// A TCP connection costs at least two extra packets (SYN, SYN-ACK) beyond
// the data exchange; the paper counts "at least two packets" saved per
// connection obviated.
inline constexpr std::uint64_t kPacketsPerAvoidedConnection = 2;

struct WireCost {
  std::uint64_t bytes = 0;          // piggyback payload bytes
  std::uint64_t extra_packets = 0;  // packets beyond the bare response
};

// Payload bytes of a piggyback message: volume id + per-element URL length
// (server-relative path) + timestamp + size fields.
std::uint64_t piggyback_bytes(const PiggybackMessage& message,
                              const util::InternTable& paths);

// Packets a response body occupies on its own, and with the piggyback
// appended; `extra_packets` is the difference (0 when the piggyback fits in
// the final partially-filled packet).
std::uint64_t packets_for(std::uint64_t payload_bytes);
WireCost piggyback_wire_cost(std::uint64_t response_bytes,
                             const PiggybackMessage& message,
                             const util::InternTable& paths);

}  // namespace piggyweb::core

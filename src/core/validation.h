// Piggyback cache validation (PCV) — the proxy-to-server companion of
// the volume mechanism, after Krishnamurthy & Wills (the paper's [10],
// cited for "validating a list of cached resources at the proxy").
//
// The proxy batches cached entries that are about to expire onto its next
// request to their server (`Piggy-validate` request header); the server
// answers, in the same response, which of them are still current and
// which changed (`P-validate`). One round trip revalidates a batch that
// would otherwise cost one If-Modified-Since exchange each. This library
// implements PCV both as a §5-style extension and as the coherency
// *baseline* the volume approach is compared against
// (bench/coherency_baselines).
#pragma once

#include <cstdint>
#include <vector>

#include "util/intern.h"

namespace piggyweb::core {

// One cached copy the proxy asks the server to validate.
struct ValidationItem {
  util::InternId resource = util::kInvalidIntern;
  std::int64_t last_modified = -1;  // version the proxy holds
};

// The server's verdicts. Fresh resources are listed by id; stale ones
// carry the server's current Last-Modified so the proxy can decide
// whether to refetch.
struct ValidationReply {
  struct Stale {
    util::InternId resource = util::kInvalidIntern;
    std::int64_t last_modified = -1;  // current version at the server
  };
  std::vector<util::InternId> fresh;
  std::vector<Stale> stale;

  bool empty() const { return fresh.empty() && stale.empty(); }
};

}  // namespace piggyweb::core

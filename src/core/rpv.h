// Recently-Piggybacked-Volume (RPV) lists (§2.2).
//
// The proxy keeps, per server, a short FIFO of (volume id, last piggyback
// time). On each request it sends the still-live volume ids as the `rpv`
// filter field, letting the server suppress redundant piggybacks without
// maintaining any per-proxy state. The list is bounded both by a timeout
// (never longer than the freshness interval Δ, or the server could never
// refresh the volume) and by a maximum length.
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "core/piggyback.h"
#include "util/flat_map.h"
#include "util/time.h"

namespace piggyweb::persist {
struct StateAccess;
}

namespace piggyweb::core {

struct RpvConfig {
  util::Seconds timeout = 60;      // entry lifetime; must be <= Δ
  std::size_t max_entries = 16;    // per-server FIFO bound
};

// One FIFO slot: which volume was piggybacked, and when.
struct RpvEntry {
  VolumeId volume = kNoVolume;
  util::TimePoint when{};

  bool operator==(const RpvEntry&) const = default;
};

// FIFO of recently piggybacked volumes for one server.
class RpvList {
 public:
  explicit RpvList(const RpvConfig& config) : config_(config) {}

  // Record that a piggyback for `volume` arrived at `now`. An existing
  // entry is refreshed (moved to the back of the FIFO).
  void note(VolumeId volume, util::TimePoint now);

  // Live volume ids at `now` (after expiring stale entries), oldest first.
  std::vector<VolumeId> live(util::TimePoint now);

  // True if `volume` has been piggybacked within the timeout.
  bool contains(VolumeId volume, util::TimePoint now);

  std::size_t size() const { return entries_.size(); }

  // Persistence support: the FIFO contents oldest-first, with no expiry
  // applied — a later run restores exactly what was saved and expires
  // entries itself. restore_entries replaces the current contents.
  std::vector<RpvEntry> entries() const;
  void restore_entries(std::span<const RpvEntry> entries);

 private:
  void expire(util::TimePoint now);

  using Entry = RpvEntry;
  RpvConfig config_;
  std::deque<Entry> entries_;
};

// Per-server RPV lists, hash-keyed by server id ("maintained efficiently
// as FIFO lists in a hash table keyed on the server IP address", §2.2).
// Bounded to the most recently active servers.
class RpvTable {
 public:
  explicit RpvTable(const RpvConfig& config, std::size_t max_servers = 256)
      : config_(config), max_servers_(max_servers) {}

  void note(util::InternId server, VolumeId volume, util::TimePoint now);
  std::vector<VolumeId> live(util::InternId server, util::TimePoint now);

  std::size_t tracked_servers() const { return lists_.size(); }

 private:
  friend struct piggyweb::persist::StateAccess;

  void evict_if_needed(util::InternId just_used);

  RpvConfig config_;
  std::size_t max_servers_;
  util::FlatMap<util::InternId, RpvList> lists_;
  std::deque<util::InternId> use_order_;  // rough LRU of servers
};

}  // namespace piggyweb::core

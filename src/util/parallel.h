// Blocking fork-join helpers over a ThreadPool.
//
// Both helpers are *barriers*: they return only after every invocation of
// `fn` has finished, so callers may hand workers mutable references to
// disjoint shard state without further synchronisation. The first
// exception thrown by any invocation is rethrown on the calling thread
// after the barrier. Do not call these from inside a pool task — with
// every worker blocked on the barrier the nested tasks could never run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "util/expect.h"
#include "util/thread_pool.h"

namespace piggyweb::util {

namespace detail {

// Completion latch + first-exception capture shared by one fork-join.
struct JoinState {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t pending PW_GUARDED_BY(mutex) = 0;
  std::exception_ptr error PW_GUARDED_BY(mutex);

  void finish(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mutex);
    if (e && !error) error = e;
    if (--pending == 0) done.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [this] { return pending == 0; });
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace detail

// Runs fn(shard) for every shard in [0, shards) across the pool's workers
// and blocks until all complete. Shard indices are a partition contract,
// not a schedule: any shard may run on any worker, concurrently with any
// other shard.
template <typename Fn>
void parallel_shards(ThreadPool& pool, std::size_t shards, const Fn& fn) {
  if (shards == 0) return;
  if (shards == 1 || pool.thread_count() == 1) {
    for (std::size_t s = 0; s < shards; ++s) fn(s);
    return;
  }
  detail::JoinState join;
  join.pending = shards;
  // All shard tasks enqueue under one pool-mutex acquisition; workers
  // wake once and drain. Posting one at a time made the pool queue the
  // hottest lock on the chunked replay path (two forks per chunk).
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    tasks.emplace_back([&join, &fn, s] {
      std::exception_ptr error;
      try {
        fn(s);
      } catch (...) {
        error = std::current_exception();
      }
      join.finish(error);
    });
  }
  pool.post_batch(tasks);
  join.wait();
}

// Runs fn(begin, end) over a static partition of [0, n) into one
// contiguous range per worker. Static ranges keep per-worker output
// independent of scheduling, which the deterministic merges rely on.
template <typename Fn>
void parallel_ranges(ThreadPool& pool, std::size_t n, const Fn& fn) {
  const auto workers = pool.thread_count();
  if (n == 0) return;
  const auto shards = workers < n ? workers : n;
  const auto chunk = (n + shards - 1) / shards;
  parallel_shards(pool, shards, [&fn, n, chunk](std::size_t s) {
    const auto begin = s * chunk;
    const auto end = begin + chunk < n ? begin + chunk : n;
    if (begin < end) fn(begin, end);
  });
}

}  // namespace piggyweb::util

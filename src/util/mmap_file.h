// Read-only memory-mapped file region. The binary trace reader serves
// request batches straight from the mapping, so a multi-gigabyte trace
// replays without ever copying the file into heap memory.
//
// This is the project's single home for mmap/OS mapping calls: the
// staticcheck det-banned-call rule rejects mmap/munmap/madvise anywhere
// else, so every mapping goes through this RAII wrapper (see
// analysis/rules.cc os_calls_allowed).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace piggyweb::util {

class MmapFile {
 public:
  // Maps `path` read-only. Returns nullopt (with a message in `error`)
  // when the file cannot be opened, stat'ed, or mapped. Empty files map
  // successfully to an empty region.
  static std::optional<MmapFile> open(const std::string& path,
                                      std::string& error);

  MmapFile() = default;
  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  // The mapped bytes; views remain valid while this object lives.
  std::string_view bytes() const {
    return {static_cast<const char*>(data_), size_};
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Advise the kernel the region will be read sequentially (best-effort;
  // replay touches columns front to back).
  void advise_sequential();

 private:
  void* data_ = nullptr;  // nullptr for empty or unmapped regions
  std::size_t size_ = 0;
};

}  // namespace piggyweb::util

#include "util/arena.h"

#include <algorithm>
#include <cstring>

namespace piggyweb::util {

std::string_view StringArena::store(std::string_view s) {
  if (s.empty()) return {};
  if (s.size() > head_capacity_ - head_used_) {
    const std::size_t chunk = std::max(kMinChunkBytes, s.size());
    chunks_.push_back(std::make_unique<char[]>(chunk));
    head_used_ = 0;
    head_capacity_ = chunk;
    allocated_ += chunk;
  }
  char* dst = chunks_.back().get() + head_used_;
  std::memcpy(dst, s.data(), s.size());
  head_used_ += s.size();
  stored_ += s.size();
  return {dst, s.size()};
}

}  // namespace piggyweb::util

// Simulation time. All logs and simulators use integral seconds since an
// arbitrary epoch (the 1998 logs have 1-second resolution). A thin strong
// typedef prevents mixing timestamps with durations or byte counts.
#pragma once

#include <compare>
#include <cstdint>

namespace piggyweb::util {

using Seconds = std::int64_t;  // durations

struct TimePoint {
  Seconds value = 0;

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Seconds d) const { return {value + d}; }
  constexpr TimePoint operator-(Seconds d) const { return {value - d}; }
  constexpr Seconds operator-(TimePoint other) const {
    return value - other.value;
  }
};

inline constexpr Seconds kSecond = 1;
inline constexpr Seconds kMinute = 60;
inline constexpr Seconds kHour = 3600;
inline constexpr Seconds kDay = 86400;

}  // namespace piggyweb::util

// Fixed-size worker pool with a shared FIFO work queue — the execution
// substrate for the parallel sharded evaluation engine (sim/parallel_eval)
// and the parallel pair-counter builder (volume/sharded_pair_counter).
//
// Design constraints, in order:
//   * determinism lives in the *callers*: the pool makes no ordering
//     promises beyond running every posted task exactly once, so anything
//     built on it must partition state by shard and merge commutatively;
//   * blocking barriers are explicit (util/parallel.h), not implicit —
//     posting is fire-and-forget;
//   * programming errors (posting after shutdown) abort via contracts, and
//     exceptions escaping a task abort too: tasks run on detached stacks
//     where nobody could catch them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace piggyweb::util {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t threads);

  // Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Enqueues a task; it runs on some worker, at some point, once.
  void post(std::function<void()> task);

  // Best-effort hardware concurrency, never 0.
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace piggyweb::util

// Fixed-size worker pool with a shared FIFO work queue — the execution
// substrate for the parallel sharded evaluation engine (sim/parallel_eval)
// and the parallel pair-counter builder (volume/sharded_pair_counter).
//
// Design constraints, in order:
//   * determinism lives in the *callers*: the pool makes no ordering
//     promises beyond running every posted task exactly once, so anything
//     built on it must partition state by shard and merge commutatively;
//   * blocking barriers are explicit (util/parallel.h), not implicit —
//     posting is fire-and-forget;
//   * programming errors (posting after shutdown) abort via contracts, and
//     exceptions escaping a task abort too: tasks run on detached stacks
//     where nobody could catch them.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "util/expect.h"

namespace piggyweb::util {

// Observation hook for pool instrumentation (obs::ThreadPoolMetrics is
// the production implementation). Methods are called concurrently from
// posting threads and workers, so implementations must be thread-safe.
// The hook lives in util so the pool does not depend on the obs layer.
// All timing is measured only while an observer is attached; the
// unobserved pool never reads the clock.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;
  // After a task was enqueued; `queue_depth` is the depth including it.
  virtual void on_post(std::size_t queue_depth) = 0;
  // After a task ran for `run_seconds` of wall time.
  virtual void on_task_complete(double run_seconds) = 0;
  // After a task was dequeued: `queue_seconds` is its enqueue→dequeue
  // wait, `handoff` is true when the dequeuing worker had been blocked
  // on the condition variable (a producer→consumer wakeup, as opposed
  // to a busy worker draining the backlog). Default no-ops keep
  // pre-existing observers source-compatible.
  virtual void on_dequeue(double /*queue_seconds*/, bool /*handoff*/) {}
  // After a worker woke from an idle (empty-queue) wait that lasted
  // `idle_seconds`. Shutdown waits are not reported.
  virtual void on_worker_idle(double /*idle_seconds*/) {}
};

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1). A null observer (the
  // default) costs one branch per post/task; timing is only measured
  // when an observer is attached.
  explicit ThreadPool(std::size_t threads,
                      ThreadPoolObserver* observer = nullptr);

  // Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Enqueues a task; it runs on some worker, at some point, once.
  void post(std::function<void()> task);

  // Enqueues every task in `tasks` (each is moved from) under a single
  // mutex acquisition, then wakes workers once. A fork-join posting S
  // shard tasks pays one lock + one notify_all instead of S of each —
  // the dominant source of pool-queue contention on the chunked replay
  // path, where every chunk forks twice.
  void post_batch(std::span<std::function<void()>> tasks);

  // Instantaneous backlog (tasks enqueued but not yet dequeued). A
  // point-in-time read for progress reporting, stale by the time the
  // caller looks at it.
  std::size_t queue_depth() const;

  // Best-effort hardware concurrency, never 0.
  static std::size_t hardware_threads();

 private:
  struct Task {
    std::function<void()> fn;
    // Set only when an observer is attached (post() reads the clock
    // once per task in that case, never otherwise).
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Task> queue_ PW_GUARDED_BY(mutex_);
  bool stopping_ PW_GUARDED_BY(mutex_) = false;
  ThreadPoolObserver* const observer_;  // fixed at construction
  std::vector<std::thread> workers_;
};

}  // namespace piggyweb::util

#include "util/strings.h"

#include <charconv>
#include <cstdint>

namespace piggyweb::util {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) out.push_back(ascii_lower(c));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

std::string_view trim(std::string_view s, std::string_view chars) {
  const auto first = s.find_first_not_of(chars);
  if (first == std::string_view::npos) return {};
  const auto last = s.find_last_not_of(chars);
  return s.substr(first, last - first + 1);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_trimmed(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  for (const auto piece : split(s, delim)) {
    const auto trimmed = trim(piece);
    if (!trimmed.empty()) out.push_back(trimmed);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_i64(std::string_view s, std::int64_t& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::string normalize_path(std::string_view path) {
  std::string out;
  normalize_path_into(path, out);
  return out;
}

void normalize_path_into(std::string_view path, std::string& out) {
  out.clear();
  // Strip scheme+host if a full URL slipped into the log.
  if (starts_with(path, "http://") || starts_with(path, "https://")) {
    const auto rest = path.substr(path.find("//") + 2);
    const auto slash = rest.find('/');
    path = (slash == std::string_view::npos) ? std::string_view{"/"}
                                             : rest.substr(slash);
  }
  // Drop fragment and (the paper deletes query URLs upstream, but be safe).
  if (const auto frag = path.find('#'); frag != std::string_view::npos) {
    path = path.substr(0, frag);
  }
  if (path.empty()) {
    out.push_back('/');
    return;
  }
  out.reserve(path.size() + 1);
  if (path.front() != '/') out.push_back('/');
  out.append(path);
  // "http://www.foo.com/" and "http://www.foo.com" are the same resource.
  while (out.size() > 1 && out.back() == '/') out.pop_back();
}

std::string_view directory_prefix(std::string_view path, int level) {
  if (level <= 0 || path.empty() || path.front() != '/') return "/";
  // Find the position after `level` directory components, counting only
  // components that are followed by a further '/' (i.e. real directories;
  // the final component is the resource name).
  std::size_t pos = 0;  // index of the '/' that opens the current component
  int depth = 0;
  while (depth < level) {
    const auto next = path.find('/', pos + 1);
    if (next == std::string_view::npos) {
      // No more directories; the prefix is everything before the filename.
      return depth == 0 ? std::string_view{"/"} : path.substr(0, pos);
    }
    pos = next;
    ++depth;
  }
  return path.substr(0, pos);
}

int directory_depth(std::string_view path) {
  if (path.empty() || path.front() != '/') return 0;
  int depth = 0;
  std::size_t pos = 0;
  while (true) {
    const auto next = path.find('/', pos + 1);
    if (next == std::string_view::npos) return depth;
    pos = next;
    ++depth;
  }
}

std::string_view path_extension(std::string_view path) {
  const auto slash = path.find_last_of('/');
  const auto base =
      (slash == std::string_view::npos) ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot == std::string_view::npos || dot + 1 == base.size()) return {};
  return base.substr(dot + 1);
}

}  // namespace piggyweb::util

#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "util/expect.h"

namespace piggyweb::util {

ThreadPool::ThreadPool(std::size_t threads, ThreadPoolObserver* observer)
    : observer_(observer) {
  const auto count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  PW_EXPECT(task != nullptr);
  Task entry{std::move(task), {}};
  if (observer_ != nullptr) {
    entry.enqueued = std::chrono::steady_clock::now();
  }
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PW_EXPECT(!stopping_);
    queue_.push_back(std::move(entry));
    depth = queue_.size();
  }
  wake_.notify_one();
  if (observer_ != nullptr) observer_->on_post(depth);
}

void ThreadPool::post_batch(std::span<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::chrono::steady_clock::time_point enqueued;
  if (observer_ != nullptr) {
    enqueued = std::chrono::steady_clock::now();
  }
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PW_EXPECT(!stopping_);
    for (auto& task : tasks) {
      PW_EXPECT(task != nullptr);
      queue_.push_back(Task{std::move(task), enqueued});
    }
    depth = queue_.size();
  }
  if (tasks.size() == 1) {
    wake_.notify_one();
  } else {
    wake_.notify_all();
  }
  if (observer_ != nullptr) {
    // Report the post-batch depth for every task: the batch became
    // visible to workers atomically, so intermediate depths never
    // existed outside the lock.
    for (std::size_t i = 0; i < tasks.size(); ++i) observer_->on_post(depth);
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::hardware_threads() {
  const auto n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    bool waited = false;
    double idle_seconds = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (observer_ != nullptr && queue_.empty() && !stopping_) {
        // The worker is about to block: time the idle interval. The
        // wakeup that ends it is a handoff — the task it dequeues was
        // handed to a sleeping worker rather than drained by a busy one.
        const auto idle_start = std::chrono::steady_clock::now();
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        idle_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - idle_start)
                           .count();
        waited = true;
      } else {
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      }
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (observer_ != nullptr) {
      const auto dequeued = std::chrono::steady_clock::now();
      if (waited) observer_->on_worker_idle(idle_seconds);
      observer_->on_dequeue(
          std::chrono::duration<double>(dequeued - task.enqueued).count(),
          waited);
      const auto start = std::chrono::steady_clock::now();
      task.fn();
      observer_->on_task_complete(std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() - start)
                                      .count());
    } else {
      task.fn();
    }
  }
}

}  // namespace piggyweb::util

#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "util/expect.h"

namespace piggyweb::util {

ThreadPool::ThreadPool(std::size_t threads, ThreadPoolObserver* observer)
    : observer_(observer) {
  const auto count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  PW_EXPECT(task != nullptr);
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PW_EXPECT(!stopping_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  wake_.notify_one();
  if (observer_ != nullptr) observer_->on_post(depth);
}

std::size_t ThreadPool::hardware_threads() {
  const auto n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (observer_ != nullptr) {
      const auto start = std::chrono::steady_clock::now();
      task();
      observer_->on_task_complete(std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() - start)
                                      .count());
    } else {
      task();
    }
  }
}

}  // namespace piggyweb::util

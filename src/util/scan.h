// Wide byte scanning for the hot text-ingestion paths (CLF field and line
// splitting). find_byte() locates the next occurrence of a delimiter byte
// examining 16 bytes per step with SSE2 where the target supports it, or 8
// bytes per step with a SWAR register trick otherwise; find_byte_scalar()
// is the obviously-correct one-byte-at-a-time reference the randomized
// differential tests and the microbench compare against.
//
// Dispatch policy: the wide path is chosen once, at compile time, behind
// the single PIGGYWEB_SCAN_SSE2 point below — no runtime CPU detection, so
// replay stays deterministic and the binary has exactly one scanner.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>

#if defined(__SSE2__)
#include <emmintrin.h>
#define PIGGYWEB_SCAN_SSE2 1
#else
#define PIGGYWEB_SCAN_SSE2 0
#endif

namespace piggyweb::util {

// Reference scalar scan: index of the first `needle` at or after `from`,
// or npos. Semantics match std::string_view::find(char, from).
inline std::size_t find_byte_scalar(std::string_view haystack, char needle,
                                    std::size_t from = 0) {
  for (std::size_t i = from; i < haystack.size(); ++i) {
    if (haystack[i] == needle) return i;
  }
  return std::string_view::npos;
}

namespace detail {

// SWAR "has zero byte" trick (Lamport): a byte of `x` is zero iff the
// corresponding byte of the result has its high bit set.
inline constexpr std::uint64_t kSwarLow = 0x0101010101010101ULL;
inline constexpr std::uint64_t kSwarHigh = 0x8080808080808080ULL;

inline std::uint64_t swar_match_mask(std::uint64_t word, std::uint64_t pattern) {
  const std::uint64_t x = word ^ pattern;
  return (x - kSwarLow) & ~x & kSwarHigh;
}

inline constexpr std::uint64_t swap_u64(std::uint64_t x) {
  x = ((x & 0x00ff00ff00ff00ffULL) << 8) | ((x >> 8) & 0x00ff00ff00ff00ffULL);
  x = ((x & 0x0000ffff0000ffffULL) << 16) |
      ((x >> 16) & 0x0000ffff0000ffffULL);
  return (x << 32) | (x >> 32);
}

}  // namespace detail

// Index of the first `needle` at or after `from`, or npos. The wide scan
// reads only bytes inside [from, size): the head runs to an alignment-free
// full-word boundary and the tail falls back to the scalar loop, so mapped
// buffers are never over-read.
inline std::size_t find_byte(std::string_view haystack, char needle,
                             std::size_t from = 0) {
  const char* data = haystack.data();
  const std::size_t size = haystack.size();
  std::size_t i = from;
#if PIGGYWEB_SCAN_SSE2
  const __m128i pattern = _mm_set1_epi8(needle);
  while (i + 16 <= size) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, pattern));
    if (mask != 0) {
      return i + static_cast<std::size_t>(
                     std::countr_zero(static_cast<unsigned>(mask)));
    }
    i += 16;
  }
#else
  const std::uint64_t pattern =
      detail::kSwarLow * static_cast<std::uint8_t>(needle);
  while (i + 8 <= size) {
    std::uint64_t word;
    std::memcpy(&word, data + i, sizeof(word));
    if constexpr (std::endian::native == std::endian::big) {
      word = detail::swap_u64(word);
    }
    const std::uint64_t hits = detail::swar_match_mask(word, pattern);
    if (hits != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(hits)) / 8;
    }
    i += 8;
  }
#endif
  return find_byte_scalar(haystack, needle, i);
}

}  // namespace piggyweb::util

#include "util/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace piggyweb::util {

std::optional<MmapFile> MmapFile::open(const std::string& path,
                                       std::string& error) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    error = path + ": " + std::strerror(errno);
    return std::nullopt;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    error = path + ": fstat: " + std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  MmapFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ != 0) {
    void* data = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      error = path + ": mmap: " + std::strerror(errno);
      ::close(fd);
      return std::nullopt;
    }
    file.data_ = data;
  }
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
  return file;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

void MmapFile::advise_sequential() {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_SEQUENTIAL);
}

}  // namespace piggyweb::util

// Append-only string arena: stores byte strings contiguously in large
// chunks and hands out string_views with stable addresses for the arena's
// lifetime. Backs InternTable so every interned URL is stored exactly
// once (the map keys string_views into the arena instead of owning a
// second std::string copy).
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace piggyweb::util {

class StringArena {
 public:
  StringArena() = default;
  StringArena(StringArena&&) noexcept = default;
  StringArena& operator=(StringArena&&) noexcept = default;
  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;

  // Copies `s` into the arena and returns a view of the stored bytes.
  // The view stays valid for the arena's lifetime (chunks are never
  // reallocated or freed).
  std::string_view store(std::string_view s);

  // Bytes of string payload stored.
  std::size_t stored_bytes() const { return stored_; }
  // Bytes of chunk capacity allocated (>= stored_bytes; the difference is
  // tail slack in each chunk).
  std::size_t allocated_bytes() const { return allocated_; }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  static constexpr std::size_t kMinChunkBytes = 64 * 1024;

  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t head_used_ = 0;      // bytes used in the newest chunk
  std::size_t head_capacity_ = 0;  // capacity of the newest chunk
  std::size_t stored_ = 0;
  std::size_t allocated_ = 0;
};

}  // namespace piggyweb::util

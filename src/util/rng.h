// Deterministic pseudo-random number generation and the samplers the
// synthetic workload generator needs (Zipf, lognormal, Pareto, exponential).
//
// Everything is seeded explicitly; the library never touches wall-clock
// time or global random state, so every experiment is reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/expect.h"

namespace piggyweb::util {

// splitmix64: used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9052fe2cf2b9a6e1ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound) {
    PW_EXPECT(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    PW_EXPECT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  bool chance(double p) { return uniform() < p; }

  double exponential(double mean) {
    PW_EXPECT(mean > 0);
    // 1 - uniform() is in (0, 1]; log of it is finite.
    return -mean * std::log(1.0 - uniform());
  }

  // Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0, v = 0, s = 0;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  // Lognormal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

  // Poisson-distributed count. Knuth multiplication for small means,
  // normal approximation for large ones.
  std::uint64_t poisson(double mean) {
    PW_EXPECT(mean >= 0);
    if (mean == 0) return 0;
    if (mean < 30.0) {
      const double limit = std::exp(-mean);
      std::uint64_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform();
      } while (p > limit);
      return k - 1;
    }
    const double x = mean + std::sqrt(mean) * normal();
    return x <= 0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }

  // Bounded Pareto on [lo, hi] with shape alpha.
  double pareto(double alpha, double lo, double hi) {
    PW_EXPECT(alpha > 0 && lo > 0 && hi > lo);
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    const double u = uniform();
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0;
  bool have_spare_ = false;
};

// Zipf(s) sampler over ranks {0, ..., n-1}: P(rank k) proportional to
// 1/(k+1)^s. Built once (O(n)), sampled in O(log n) by binary search over
// the CDF. Web resource popularity is classically Zipf with s near 0.7-1.0.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);

  std::size_t operator()(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  double skew() const { return skew_; }

  // Probability mass of a given rank.
  double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double skew_ = 0;
};

// Weighted discrete sampler (alias-free CDF version; O(log n) per draw).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  std::size_t operator()(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace piggyweb::util

// Civil-date <-> Unix-day conversions (Howard Hinnant's algorithms),
// shared by the CLF log dates and the RFC 1123 HTTP dates.
#pragma once

#include <cstdint>

namespace piggyweb::util {

// Days since 1970-01-01 for a civil date. Months are 1-based.
std::int64_t days_from_civil(std::int64_t y, int m, int d);

// Inverse of days_from_civil.
void civil_from_days(std::int64_t z, std::int64_t& y, int& m, int& d);

// Day of week for a Unix day count: 0 = Sunday ... 6 = Saturday.
int weekday_from_days(std::int64_t z);

}  // namespace piggyweb::util

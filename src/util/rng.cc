#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace piggyweb::util {

ZipfSampler::ZipfSampler(std::size_t n, double skew) : skew_(skew) {
  PW_EXPECT(n > 0);
  PW_EXPECT(skew >= 0);
  cdf_.resize(n);
  double total = 0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  PW_EXPECT(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  PW_EXPECT(!weights.empty());
  cdf_.resize(weights.size());
  double total = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    PW_EXPECT(weights[i] >= 0);
    total += weights[i];
    cdf_[i] = total;
  }
  PW_EXPECT(total > 0);
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t DiscreteSampler::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace piggyweb::util

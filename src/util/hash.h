// Hashing helpers: FNV-1a over bytes/strings, 64-bit mixing, and a
// hash-combine for composite keys (used heavily by the pair-counter tables).
#pragma once

#include <cstdint>
#include <string_view>

namespace piggyweb::util {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

// Finalizer from murmur3; good avalanche for integer keys.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// Hash for a pair of 32-bit ids packed into one word (pair counters key on
// (r, s) resource-id pairs).
constexpr std::uint64_t hash_id_pair(std::uint32_t a, std::uint32_t b) {
  return mix64((static_cast<std::uint64_t>(a) << 32) | b);
}

}  // namespace piggyweb::util

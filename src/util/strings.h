// Small string utilities shared by the HTTP grammar code and the trace
// parsers. All functions operate on string_view and never allocate unless
// they return std::string.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace piggyweb::util {

// ASCII-only case tools (HTTP header names are ASCII by spec).
constexpr char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string to_lower(std::string_view s);

// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

// Strip leading/trailing characters from `chars` (default: HTTP whitespace).
std::string_view trim(std::string_view s, std::string_view chars = " \t\r\n");

// Split on a single delimiter character. Empty fields are preserved:
// split("a,,b", ',') -> {"a", "", "b"}. split("", ',') -> {""}.
std::vector<std::string_view> split(std::string_view s, char delim);

// Split on a delimiter, trimming each piece and dropping empties —
// the shape needed for header-value lists like `rpv="3,4"`.
std::vector<std::string_view> split_trimmed(std::string_view s, char delim);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Parse a non-negative decimal integer; returns false on any non-digit or
// overflow. (std::from_chars exists but this keeps call sites terse.)
bool parse_u64(std::string_view s, std::uint64_t& out);
bool parse_i64(std::string_view s, std::int64_t& out);
bool parse_double(std::string_view s, double& out);

// URL path helpers ---------------------------------------------------------

// Normalize a resource path the way the paper's log cleanup does (§A):
// collapse "http://host" prefixes away, treat "" and "/" as the same,
// drop a trailing slash except for the root, and strip fragments.
std::string normalize_path(std::string_view path);

// As normalize_path, but writes into `out` (cleared first) so bulk parsers
// can reuse one buffer across millions of lines instead of allocating a
// fresh string per path.
void normalize_path_into(std::string_view path, std::string& out);

// Directory prefix of a URL path at a given level. Level 0 is the server
// root "/" (site-wide); level k keeps the first k directory components.
// A path with fewer than k directories maps to its own directory.
//   directory_prefix("/a/b/c.html", 0) == "/"
//   directory_prefix("/a/b/c.html", 1) == "/a"
//   directory_prefix("/a/b/c.html", 2) == "/a/b"
//   directory_prefix("/a/b/c.html", 9) == "/a/b"
std::string_view directory_prefix(std::string_view path, int level);

// Number of directory components in a path ("/a/b/c.html" has 2).
int directory_depth(std::string_view path);

// Extension without the dot ("/x/y.html" -> "html", none -> ""). Case is
// preserved; compare with iequals().
std::string_view path_extension(std::string_view path);

}  // namespace piggyweb::util

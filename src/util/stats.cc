#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/expect.h"

namespace piggyweb::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Quantiles::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Quantiles::quantile(double q) {
  PW_EXPECT(q >= 0.0 && q <= 1.0);
  PW_EXPECT(!samples_.empty());
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double Quantiles::cdf(double x) {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  PW_EXPECT(hi > lo);
  PW_EXPECT(buckets > 0);
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // rounding guard
  ++counts_[idx];
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  PW_EXPECT(i < counts_.size());
  return counts_[i];
}

double Histogram::bucket_low(std::size_t i) const {
  PW_EXPECT(i < counts_.size());
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::bucket_high(std::size_t i) const {
  PW_EXPECT(i < counts_.size());
  return lo_ + static_cast<double>(i + 1) * width_;
}

double Histogram::cumulative_fraction(std::size_t i) const {
  PW_EXPECT(i < counts_.size());
  if (total_ == 0) return 0.0;
  std::uint64_t below = underflow_;
  for (std::size_t b = 0; b <= i; ++b) below += counts_[b];
  return static_cast<double>(below) / static_cast<double>(total_);
}

void Histogram::merge(const Histogram& other) {
  PW_EXPECT(lo_ == other.lo_ && hi_ == other.hi_ &&
            counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

void FrequencyTable::add(std::uint32_t id, std::uint64_t delta) {
  if (id >= counts_.size()) counts_.resize(id + 1, 0);
  counts_[id] += delta;
  total_ += delta;
}

std::uint64_t FrequencyTable::count(std::uint32_t id) const {
  return id < counts_.size() ? counts_[id] : 0;
}

std::size_t FrequencyTable::distinct() const {
  std::size_t d = 0;
  for (const auto c : counts_) d += (c > 0);
  return d;
}

std::vector<std::uint32_t> FrequencyTable::by_rank() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(counts_.size());
  for (std::uint32_t id = 0; id < counts_.size(); ++id) {
    if (counts_[id] > 0) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(), [this](std::uint32_t a, std::uint32_t b) {
    if (counts_[a] != counts_[b]) return counts_[a] > counts_[b];
    return a < b;
  });
  return ids;
}

double FrequencyTable::coverage_share(double fraction) const {
  PW_EXPECT(fraction >= 0.0 && fraction <= 1.0);
  const auto ranked = by_rank();
  if (ranked.empty() || total_ == 0) return 0.0;
  const auto target = static_cast<double>(total_) * fraction;
  double covered = 0;
  std::size_t used = 0;
  for (const auto id : ranked) {
    if (covered >= target) break;
    covered += static_cast<double>(counts_[id]);
    ++used;
  }
  return static_cast<double>(used) / static_cast<double>(ranked.size());
}

std::string percent(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace piggyweb::util

// String interning: maps strings (URLs, directory prefixes, client names)
// to dense 32-bit ids and back. Dense ids keep the hot per-resource tables
// (counters, last-access maps) flat and cache-friendly, which matters when
// a Sun-scale log touches tens of thousands of resources millions of times.
//
// Storage: every string is stored exactly once, in a StringArena; the
// id-by-string index is a flat open-addressing probe table over ids (an
// empty slot is kInvalidIntern), so a lookup is one hash, a linear probe
// over a contiguous id array, and a hash-guarded string compare — no
// per-string map node and no second copy of the key.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "util/arena.h"

namespace piggyweb::util {

using InternId = std::uint32_t;
inline constexpr InternId kInvalidIntern = 0xffffffffu;

class InternTable {
 public:
  InternTable() = default;
  InternTable(InternTable&&) noexcept = default;
  InternTable& operator=(InternTable&&) noexcept = default;
  // Copies re-store the strings into a fresh arena (ids, hashes, and the
  // probe layout carry over unchanged).
  InternTable(const InternTable& other);
  InternTable& operator=(const InternTable& other);

  // Returns the id for `s`, interning it if new.
  InternId intern(std::string_view s);

  // Returns the id if `s` is already interned.
  std::optional<InternId> find(std::string_view s) const;

  // The interned string for an id. Id must be valid.
  std::string_view str(InternId id) const;

  std::size_t size() const { return views_.size(); }
  bool empty() const { return views_.empty(); }

  // Pre-size the probe table and id arrays for `expected` strings.
  void reserve(std::size_t expected);

  // Bytes of string payload held (each string stored once).
  std::size_t arena_bytes() const { return arena_.stored_bytes(); }

 private:
  // Probe slot for `s` with hash `h`: the slot holding its id if interned,
  // else the empty slot an insert would use. Requires slots_ non-empty.
  std::size_t probe(std::string_view s, std::uint64_t h) const;
  void rebuild_slots(std::size_t new_size);
  void grow();

  std::vector<std::string_view> views_;   // id -> string (into arena_)
  std::vector<std::uint64_t> hashes_;     // id -> fnv1a(string)
  std::vector<InternId> slots_;           // open addressing; empty = kInvalidIntern
  StringArena arena_;
};

}  // namespace piggyweb::util

// String interning: maps strings (URLs, directory prefixes, client names)
// to dense 32-bit ids and back. Dense ids keep the hot per-resource tables
// (counters, last-access maps) flat and cache-friendly, which matters when
// a Sun-scale log touches tens of thousands of resources millions of times.
//
// Storage: every string is stored exactly once, in a StringArena; the
// id-by-string index is a flat open-addressing probe table over ids (an
// empty slot is kInvalidIntern), so a lookup is one hash, a linear probe
// over a contiguous id array, and a hash-guarded string compare — no
// per-string map node and no second copy of the key.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "util/arena.h"

namespace piggyweb::util {

using InternId = std::uint32_t;
inline constexpr InternId kInvalidIntern = 0xffffffffu;

class InternTable;

// Non-owning, read-only id -> string table. This is the lookup surface the
// replay pipeline hands around: it is satisfied equally by a live
// InternTable and by string views decoded straight out of an mmap'd
// PIGGYTRC string section, so consumers (path classification, directory
// prefixes, report labels) need not care whether the trace was
// materialized. Lifetime: the view borrows the backing storage (arena or
// mapped file); it must not outlive it.
class StringTableView {
 public:
  StringTableView() = default;
  explicit StringTableView(std::span<const std::string_view> views)
      : views_(views) {}
  // Implicit: every `bind(trace.paths())` call site keeps compiling.
  StringTableView(const InternTable& table);  // NOLINT(google-explicit-constructor)

  std::string_view str(InternId id) const { return views_[id]; }
  std::size_t size() const { return views_.size(); }
  bool empty() const { return views_.empty(); }
  std::span<const std::string_view> views() const { return views_; }

 private:
  std::span<const std::string_view> views_;
};

class InternTable {
 public:
  InternTable() = default;
  InternTable(InternTable&&) noexcept = default;
  InternTable& operator=(InternTable&&) noexcept = default;
  // Copies re-store the strings into a fresh arena (ids, hashes, and the
  // probe layout carry over unchanged).
  InternTable(const InternTable& other);
  InternTable& operator=(const InternTable& other);

  // Returns the id for `s`, interning it if new.
  InternId intern(std::string_view s);

  // Returns the id if `s` is already interned.
  std::optional<InternId> find(std::string_view s) const;

  // The interned string for an id. Id must be valid.
  std::string_view str(InternId id) const;

  std::size_t size() const { return views_.size(); }
  bool empty() const { return views_.empty(); }

  // Stable id -> string views (into the arena). Valid until the table is
  // destroyed or moved-from; interning more strings does not invalidate
  // already-handed-out string_views (the arena never relocates payload),
  // but it may reallocate this span, so re-fetch after inserts.
  std::span<const std::string_view> views() const { return views_; }

  // Pre-size the probe table and id arrays for `expected` strings.
  void reserve(std::size_t expected);

  // Bytes of string payload held (each string stored once).
  std::size_t arena_bytes() const { return arena_.stored_bytes(); }

 private:
  // Probe slot for `s` with hash `h`: the slot holding its id if interned,
  // else the empty slot an insert would use. Requires slots_ non-empty.
  std::size_t probe(std::string_view s, std::uint64_t h) const;
  void rebuild_slots(std::size_t new_size);
  void grow();

  std::vector<std::string_view> views_;   // id -> string (into arena_)
  std::vector<std::uint64_t> hashes_;     // id -> fnv1a(string)
  std::vector<InternId> slots_;           // open addressing; empty = kInvalidIntern
  StringArena arena_;
};

}  // namespace piggyweb::util

// String interning: maps strings (URLs, directory prefixes, client names)
// to dense 32-bit ids and back. Dense ids keep the hot per-resource tables
// (counters, last-access maps) flat and cache-friendly, which matters when
// a Sun-scale log touches tens of thousands of resources millions of times.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace piggyweb::util {

using InternId = std::uint32_t;
inline constexpr InternId kInvalidIntern = 0xffffffffu;

class InternTable {
 public:
  InternTable() = default;

  // Returns the id for `s`, interning it if new.
  InternId intern(std::string_view s);

  // Returns the id if `s` is already interned.
  std::optional<InternId> find(std::string_view s) const;

  // The interned string for an id. Id must be valid.
  std::string_view str(InternId id) const;

  std::size_t size() const { return strings_.size(); }
  bool empty() const { return strings_.empty(); }

 private:
  struct TransparentHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct TransparentEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::vector<std::string> strings_;
  std::unordered_map<std::string, InternId, TransparentHash, TransparentEq>
      ids_;
};

}  // namespace piggyweb::util

// Streaming statistics used throughout the evaluation harness: running
// moments (Welford), fixed-bucket and log-scale histograms, and exact
// quantiles over collected samples (the figure benches report medians and
// full CDFs, e.g. Figure 1(b)'s interarrival distribution).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace piggyweb::util {

// Welford's online algorithm: numerically stable mean/variance.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Sample collector with exact quantiles. Suitable for up to a few million
// samples (the scaled logs); quantile() sorts lazily and caches.
class Quantiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // q in [0, 1]; linear interpolation between order statistics.
  double quantile(double q);
  double median() { return quantile(0.5); }

  // Fraction of samples <= x (empirical CDF).
  double cdf(double x);

  void reserve(std::size_t n) { samples_.reserve(n); }

 private:
  void ensure_sorted();
  std::vector<double> samples_;
  bool sorted_ = true;
};

// Histogram over [lo, hi) with uniform buckets plus underflow/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t bucket_count(std::size_t i) const;
  std::size_t buckets() const { return counts_.size(); }
  double bucket_low(std::size_t i) const;
  double bucket_high(std::size_t i) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  // Cumulative fraction of samples strictly below the upper edge of
  // bucket i (underflow included).
  double cumulative_fraction(std::size_t i) const;

  // Merge another histogram with the identical [lo, hi)/bucket layout
  // (parallel reduction; counts add exactly).
  void merge(const Histogram& other);

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

// A counter keyed by small dense ids; convenience for frequency tables.
class FrequencyTable {
 public:
  void add(std::uint32_t id, std::uint64_t delta = 1);
  std::uint64_t count(std::uint32_t id) const;
  std::uint64_t total() const { return total_; }
  std::size_t distinct() const;

  // Ids sorted by descending count (ties by ascending id, deterministic).
  std::vector<std::uint32_t> by_rank() const;

  // Smallest fraction of distinct ids covering `fraction` of all counts
  // (e.g. "top 1% of servers account for 59% of resources").
  double coverage_share(double fraction) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Format helper: fixed-precision percentage ("12.3%").
std::string percent(double fraction, int decimals = 1);

}  // namespace piggyweb::util

#include "util/date.h"

namespace piggyweb::util {

std::int64_t days_from_civil(std::int64_t y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);
  const auto doy = static_cast<unsigned>(
      (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, std::int64_t& y, int& m, int& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp) + (mp < 10 ? 3 : -9);
  y += (m <= 2);
}

int weekday_from_days(std::int64_t z) {
  return static_cast<int>(z >= -4 ? (z + 4) % 7 : (z + 5) % 7 + 6);
}

}  // namespace piggyweb::util

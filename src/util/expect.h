// Lightweight contract checking, in the spirit of the Core Guidelines'
// Expects()/Ensures(). Violations indicate programming errors, not runtime
// conditions, so they abort with a message rather than throwing.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace piggyweb::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "piggyweb: %s failed: %s (%s:%d)\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace piggyweb::util

// Precondition on function arguments / object state.
#define PW_EXPECT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                          \
          : ::piggyweb::util::contract_failure("precondition", #cond,    \
                                               __FILE__, __LINE__))

// Postcondition / internal invariant.
#define PW_ENSURE(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                          \
          : ::piggyweb::util::contract_failure("invariant", #cond,       \
                                               __FILE__, __LINE__))

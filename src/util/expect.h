// Lightweight contract checking, in the spirit of the Core Guidelines'
// Expects()/Ensures(). Violations indicate programming errors, not runtime
// conditions, so they abort with a message rather than throwing.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace piggyweb::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "piggyweb: %s failed: %s (%s:%d)\n", kind, expr, file,
               line);
  std::abort();
}

[[noreturn]] inline void bounds_failure(const char* index_expr,
                                        const char* bound_expr,
                                        unsigned long long index,
                                        unsigned long long bound,
                                        const char* file, int line) {
  std::fprintf(stderr,
               "piggyweb: bounds check failed: %s = %llu, %s = %llu (%s:%d)\n",
               index_expr, index, bound_expr, bound, file, line);
  std::abort();
}

// Out-of-line check so PW_EXPECT_BOUNDS evaluates its arguments once.
inline void expect_bounds(unsigned long long index, unsigned long long bound,
                          const char* index_expr, const char* bound_expr,
                          const char* file, int line) {
  if (index >= bound) {
    bounds_failure(index_expr, bound_expr, index, bound, file, line);
  }
}

}  // namespace piggyweb::util

// Precondition on function arguments / object state.
#define PW_EXPECT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                          \
          : ::piggyweb::util::contract_failure("precondition", #cond,    \
                                               __FILE__, __LINE__))

// Postcondition / internal invariant.
#define PW_ENSURE(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                          \
          : ::piggyweb::util::contract_failure("invariant", #cond,       \
                                               __FILE__, __LINE__))

// Index-in-bounds precondition: aborts unless 0 <= i < n, printing both
// values. A negative signed index wraps to a huge unsigned value and
// fails the check.
#define PW_EXPECT_BOUNDS(i, n)                                            \
  ::piggyweb::util::expect_bounds(static_cast<unsigned long long>(i),     \
                                  static_cast<unsigned long long>(n),     \
                                  #i, #n, __FILE__, __LINE__)

// Marks code that must be unreachable (exhaustive switches, contradicted
// invariants). Always aborts; never compiles out.
#define PW_UNREACHABLE()                                                  \
  ::piggyweb::util::contract_failure("unreachable", "PW_UNREACHABLE()",   \
                                     __FILE__, __LINE__)

// --- concurrency annotations (checked by staticcheck, not the compiler) --
//
// These expand to nothing: they are machine-readable documentation that
// the in-tree analyzer (lock-guarded-state, atomic-plain-mix; DESIGN.md
// §14) enforces. Unlike clang's -Wthread-safety attributes they need no
// compiler support and apply to the raw source, so they work under every
// toolchain the project builds with.

// On a data member: every access must happen while `mutex` is held (a
// lock_guard/scoped_lock/unique_lock/shared_lock of it in an enclosing
// scope, a PW_RETURNS_LOCK guard, or an enclosing PW_REQUIRES function).
// Constructors and destructors are exempt (no concurrent access can
// exist yet / anymore).
#define PW_GUARDED_BY(mutex)

// On a function declaration or definition: callers must hold `mutex`
// for the duration of the call. The analyzer treats the mutex as held
// throughout the function body.
#define PW_REQUIRES(mutex)

// On a function returning a std::unique_lock: the returned guard holds
// `mutex` (parameter names may appear in the expression). Binding the
// result (`auto lock = lock_stripe(stripe);`) counts as holding the
// substituted mutex until the guard's scope ends.
#define PW_RETURNS_LOCK(mutex)

#include "util/intern.h"

#include "util/expect.h"

namespace piggyweb::util {

InternId InternTable::intern(std::string_view s) {
  if (const auto it = ids_.find(s); it != ids_.end()) return it->second;
  PW_EXPECT(strings_.size() < kInvalidIntern);
  const auto id = static_cast<InternId>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

std::optional<InternId> InternTable::find(std::string_view s) const {
  const auto it = ids_.find(s);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::string_view InternTable::str(InternId id) const {
  PW_EXPECT(id < strings_.size());
  return strings_[id];
}

}  // namespace piggyweb::util

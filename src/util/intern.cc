#include "util/intern.h"

#include "util/expect.h"
#include "util/hash.h"

namespace piggyweb::util {

namespace {
constexpr std::size_t kMinSlots = 16;
}  // namespace

StringTableView::StringTableView(const InternTable& table)
    : views_(table.views()) {}

InternTable::InternTable(const InternTable& other)
    : hashes_(other.hashes_), slots_(other.slots_) {
  views_.reserve(other.views_.size());
  for (const auto view : other.views_) views_.push_back(arena_.store(view));
}

InternTable& InternTable::operator=(const InternTable& other) {
  if (this == &other) return *this;
  InternTable copy(other);
  *this = std::move(copy);
  return *this;
}

std::size_t InternTable::probe(std::string_view s, std::uint64_t h) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = static_cast<std::size_t>(mix64(h)) & mask;
  while (true) {
    const auto id = slots_[idx];
    if (id == kInvalidIntern) return idx;
    if (hashes_[id] == h && views_[id] == s) return idx;
    idx = (idx + 1) & mask;
  }
}

void InternTable::rebuild_slots(std::size_t new_size) {
  slots_.assign(new_size, kInvalidIntern);
  const std::size_t mask = new_size - 1;
  for (InternId id = 0; id < views_.size(); ++id) {
    std::size_t idx = static_cast<std::size_t>(mix64(hashes_[id])) & mask;
    while (slots_[idx] != kInvalidIntern) idx = (idx + 1) & mask;
    slots_[idx] = id;
  }
}

void InternTable::grow() {
  rebuild_slots(slots_.empty() ? kMinSlots : slots_.size() * 2);
}

void InternTable::reserve(std::size_t expected) {
  views_.reserve(expected);
  hashes_.reserve(expected);
  std::size_t needed = kMinSlots;
  while (needed * 3 < expected * 4) needed <<= 1;
  if (needed > slots_.size()) rebuild_slots(needed);
}

InternId InternTable::intern(std::string_view s) {
  if (slots_.empty()) grow();
  const auto h = fnv1a(s);
  auto idx = probe(s, h);
  if (slots_[idx] != kInvalidIntern) return slots_[idx];

  PW_EXPECT(views_.size() < kInvalidIntern);
  if ((views_.size() + 1) * 4 > slots_.size() * 3) {
    grow();
    idx = probe(s, h);
  }
  const auto id = static_cast<InternId>(views_.size());
  views_.push_back(arena_.store(s));
  hashes_.push_back(h);
  slots_[idx] = id;
  return id;
}

std::optional<InternId> InternTable::find(std::string_view s) const {
  if (slots_.empty()) return std::nullopt;
  const auto idx = probe(s, fnv1a(s));
  if (slots_[idx] == kInvalidIntern) return std::nullopt;
  return slots_[idx];
}

std::string_view InternTable::str(InternId id) const {
  PW_EXPECT(id < views_.size());
  return views_[id];
}

}  // namespace piggyweb::util

// Open-addressing hash map for unsigned-integer keys — the hot-path
// replacement for node-based std::unordered_map in the pair counters,
// per-source eval state, proxy cache, and RPV tables.
//
// Design:
//   * power-of-two capacity, linear probing, max load factor 3/4;
//   * slots are a single contiguous array of std::pair<K, V> plus a byte
//     of occupancy metadata per slot — a lookup touches one or two cache
//     lines instead of chasing a bucket node pointer;
//   * deletion is tombstone-free backward-shift: the hole left by an
//     erase is filled by sliding later probe-chain members back, so probe
//     chains never accumulate dead slots and lookups stay O(chain);
//   * keys are hashed through util::mix64, which avalanches dense ids
//     (intern ids, packed id pairs) across the table.
//
// Semantics match std::unordered_map where the call sites use it:
// find/end, operator[], try_emplace/emplace/insert, erase by key or
// iterator, contains/count/at, clear (capacity kept), reserve, and
// forward iteration with structured bindings. Iteration order is
// unspecified and differs from std::unordered_map; every consumer in this
// codebase is order-independent (sums, point lookups, or sorts-after).
// Any insert or erase may move elements (rehash / backward shift), so
// references and iterators are invalidated by mutation, full stop —
// unlike std::unordered_map, which keeps references stable. Call sites
// must not hold a reference across a mutating call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <new>
#include <tuple>
#include <type_traits>
#include <utility>

#include "util/expect.h"
#include "util/hash.h"

namespace piggyweb::util {

template <typename K, typename V>
class FlatMap {
  static_assert(std::is_unsigned_v<K>,
                "FlatMap keys are unsigned integers (intern ids or packed "
                "id pairs); use InternTable for string keys");

 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = std::pair<K, V>;
  using size_type = std::size_t;

  template <bool Const>
  class Iter {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = FlatMap::value_type;
    using difference_type = std::ptrdiff_t;
    using reference = std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;

    reference operator*() const { return owner_->slots_[idx_]; }
    pointer operator->() const { return &owner_->slots_[idx_]; }

    Iter& operator++() {
      ++idx_;
      skip_empty();
      return *this;
    }
    Iter operator++(int) {
      Iter copy = *this;
      ++*this;
      return copy;
    }

    friend bool operator==(const Iter& a, const Iter& b) {
      return a.idx_ == b.idx_;
    }

    // iterator -> const_iterator
    template <bool C = Const, typename = std::enable_if_t<!C>>
    operator Iter<true>() const {
      return Iter<true>(owner_, idx_);
    }

   private:
    friend class FlatMap;
    friend class Iter<!Const>;
    using Owner = std::conditional_t<Const, const FlatMap, FlatMap>;

    Iter(Owner* owner, std::size_t idx) : owner_(owner), idx_(idx) {}

    void skip_empty() {
      while (idx_ < owner_->capacity_ && !owner_->full_[idx_]) ++idx_;
    }

    Owner* owner_ = nullptr;
    std::size_t idx_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;
  explicit FlatMap(std::size_t expected_size) { reserve(expected_size); }

  FlatMap(const FlatMap& other) { assign_from(other); }
  FlatMap& operator=(const FlatMap& other) {
    if (this != &other) {
      destroy_all();
      release();
      assign_from(other);
    }
    return *this;
  }

  FlatMap(FlatMap&& other) noexcept { swap(other); }
  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      destroy_all();
      release();
      swap(other);
    }
    return *this;
  }

  ~FlatMap() {
    destroy_all();
    release();
  }

  void swap(FlatMap& other) noexcept {
    std::swap(capacity_, other.capacity_);
    std::swap(size_, other.size_);
    std::swap(slots_, other.slots_);
    std::swap(full_, other.full_);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bucket_count() const { return capacity_; }

  iterator begin() {
    iterator it(this, 0);
    it.skip_empty();
    return it;
  }
  const_iterator begin() const {
    const_iterator it(this, 0);
    it.skip_empty();
    return it;
  }
  iterator end() { return iterator(this, capacity_); }
  const_iterator end() const { return const_iterator(this, capacity_); }
  const_iterator cbegin() const { return begin(); }
  const_iterator cend() const { return end(); }

  iterator find(K key) { return iterator(this, find_index(key)); }
  const_iterator find(K key) const {
    return const_iterator(this, find_index(key));
  }

  bool contains(K key) const { return find_index(key) != capacity_; }
  std::size_t count(K key) const { return contains(key) ? 1 : 0; }

  V& at(K key) {
    const auto idx = find_index(key);
    PW_EXPECT(idx != capacity_);
    return slots_[idx].second;
  }
  const V& at(K key) const {
    const auto idx = find_index(key);
    PW_EXPECT(idx != capacity_);
    return slots_[idx].second;
  }

  V& operator[](K key) { return try_emplace(key).first->second; }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(K key, Args&&... args) {
    grow_if_needed();
    auto idx = probe(key);
    if (full_[idx]) return {iterator(this, idx), false};
    ::new (static_cast<void*>(slots_ + idx))
        value_type(std::piecewise_construct, std::forward_as_tuple(key),
                   std::forward_as_tuple(std::forward<Args>(args)...));
    full_[idx] = 1;
    ++size_;
    return {iterator(this, idx), true};
  }

  template <typename U>
  std::pair<iterator, bool> emplace(K key, U&& value) {
    return try_emplace(key, std::forward<U>(value));
  }

  std::pair<iterator, bool> insert(const value_type& kv) {
    return try_emplace(kv.first, kv.second);
  }
  std::pair<iterator, bool> insert(value_type&& kv) {
    return try_emplace(kv.first, std::move(kv.second));
  }

  // Erase by key; returns the number of elements removed (0 or 1).
  std::size_t erase(K key) {
    const auto idx = find_index(key);
    if (idx == capacity_) return 0;
    erase_at(idx);
    return 1;
  }

  // Erase by iterator. Backward-shift deletion moves later probe-chain
  // members, so the iterator (and all others) is invalidated.
  void erase(const_iterator pos) {
    PW_EXPECT(pos.owner_ == this && pos.idx_ < capacity_ &&
              full_[pos.idx_]);
    erase_at(pos.idx_);
  }

  // Destroys all elements but keeps the allocation, so a clear/refill
  // cycle (per-source scratch tables) does not reallocate.
  void clear() {
    destroy_all();
    size_ = 0;
  }

  // Equality is content equality: same key set, equal mapped values.
  // Capacity, probe layout, and insertion/erase history do not matter, so
  // a map rebuilt from a serialized snapshot compares equal to the
  // original regardless of the churn that produced either side.
  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    if (a.size_ != b.size_) return false;
    for (const auto& [key, value] : a) {
      const auto it = b.find(key);
      if (it == b.end() || !(it->second == value)) return false;
    }
    return true;
  }

  // Ensure capacity for `expected_size` elements without further rehash.
  void reserve(std::size_t expected_size) {
    std::size_t needed = kMinCapacity;
    // smallest power of two with expected_size <= 3/4 * needed
    while (needed * 3 < expected_size * 4) needed <<= 1;
    if (needed > capacity_) rehash(needed);
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t home(K key) const {
    return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(key))) &
           (capacity_ - 1);
  }

  // Index of `key`, or capacity_ when absent.
  std::size_t find_index(K key) const {
    if (capacity_ == 0) return 0;  // == capacity_: empty map, end()
    std::size_t idx = home(key);
    const std::size_t mask = capacity_ - 1;
    while (full_[idx]) {
      if (slots_[idx].first == key) return idx;
      idx = (idx + 1) & mask;
    }
    return capacity_;
  }

  // First slot for `key`: its own if present, else the empty slot an
  // insert would use. Requires capacity_ > 0.
  std::size_t probe(K key) const {
    std::size_t idx = home(key);
    const std::size_t mask = capacity_ - 1;
    while (full_[idx] && slots_[idx].first != key) idx = (idx + 1) & mask;
    return idx;
  }

  void grow_if_needed() {
    if (capacity_ == 0) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > capacity_ * 3) {
      rehash(capacity_ * 2);
    }
  }

  void rehash(std::size_t new_capacity) {
    PW_EXPECT((new_capacity & (new_capacity - 1)) == 0);
    value_type* old_slots = slots_;
    std::uint8_t* old_full = full_;
    const std::size_t old_capacity = capacity_;

    slots_ = static_cast<value_type*>(::operator new(
        new_capacity * sizeof(value_type), std::align_val_t{alignof(value_type)}));
    full_ = static_cast<std::uint8_t*>(::operator new(new_capacity));
    std::fill_n(full_, new_capacity, std::uint8_t{0});
    capacity_ = new_capacity;

    for (std::size_t i = 0; i < old_capacity; ++i) {
      if (!old_full[i]) continue;
      const auto idx = probe(old_slots[i].first);
      ::new (static_cast<void*>(slots_ + idx))
          value_type(std::move(old_slots[i]));
      full_[idx] = 1;
      old_slots[i].~value_type();
    }
    if (old_slots != nullptr) {
      ::operator delete(old_slots, std::align_val_t{alignof(value_type)});
      ::operator delete(old_full);
    }
  }

  void erase_at(std::size_t idx) {
    const std::size_t mask = capacity_ - 1;
    slots_[idx].~value_type();
    full_[idx] = 0;
    --size_;
    // Backward shift: walk the probe chain after the hole; any member
    // whose probe distance reaches back to the hole slides into it
    // (keeping every remaining element reachable from its home slot
    // without tombstones). Stops at the first empty slot.
    std::size_t hole = idx;
    std::size_t i = idx;
    while (true) {
      i = (i + 1) & mask;
      if (!full_[i]) break;
      const std::size_t ideal = home(slots_[i].first);
      if (((i - ideal) & mask) >= ((i - hole) & mask)) {
        ::new (static_cast<void*>(slots_ + hole))
            value_type(std::move(slots_[i]));
        slots_[i].~value_type();
        full_[hole] = 1;
        full_[i] = 0;
        hole = i;
      }
    }
  }

  void destroy_all() {
    if constexpr (!std::is_trivially_destructible_v<value_type>) {
      for (std::size_t i = 0; i < capacity_; ++i) {
        if (full_[i]) slots_[i].~value_type();
      }
    }
    if (full_ != nullptr) std::fill_n(full_, capacity_, std::uint8_t{0});
  }

  void release() {
    if (slots_ != nullptr) {
      ::operator delete(slots_, std::align_val_t{alignof(value_type)});
      ::operator delete(full_);
    }
    slots_ = nullptr;
    full_ = nullptr;
    capacity_ = 0;
    size_ = 0;
  }

  void assign_from(const FlatMap& other) {
    if (other.size_ == 0) return;
    reserve(other.size_);
    for (std::size_t i = 0; i < other.capacity_; ++i) {
      if (!other.full_[i]) continue;
      const auto idx = probe(other.slots_[i].first);
      ::new (static_cast<void*>(slots_ + idx)) value_type(other.slots_[i]);
      full_[idx] = 1;
      ++size_;
    }
  }

  std::size_t capacity_ = 0;  // always 0 or a power of two
  std::size_t size_ = 0;
  value_type* slots_ = nullptr;
  std::uint8_t* full_ = nullptr;  // 1 = slot occupied
};

}  // namespace piggyweb::util

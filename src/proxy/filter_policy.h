// Proxy-side filter construction: combines static preferences (maxpiggy,
// size/type limits, probability threshold) with dynamic frequency control
// (enable-bit policies of §2.2) and the per-server RPV list into the
// ProxyFilter that rides each request.
#pragma once

#include <memory>

#include "core/filter.h"
#include "core/frequency.h"
#include "core/rpv.h"

namespace piggyweb::proxy {

struct FilterPolicyConfig {
  core::ProxyFilter base;        // static preferences
  core::RpvConfig rpv;           // per-server RPV list bounds
  bool use_rpv = true;           // include the RPV list in filters
};

class FilterPolicy {
 public:
  FilterPolicy(const FilterPolicyConfig& config,
               std::unique_ptr<core::FrequencyPolicy> frequency)
      : config_(config),
        rpv_(config.rpv),
        frequency_(std::move(frequency)) {}

  // Filter for a request to `server` at `now`.
  core::ProxyFilter filter_for(util::InternId server, util::TimePoint now);

  // The response carried a piggyback for `volume`: remember it so future
  // filters suppress that volume, and inform the frequency policy.
  void on_piggyback(util::InternId server, core::VolumeId volume,
                    util::TimePoint now);

  core::RpvTable& rpv() { return rpv_; }
  const core::RpvTable& rpv() const { return rpv_; }

 private:
  FilterPolicyConfig config_;
  core::RpvTable rpv_;
  std::unique_ptr<core::FrequencyPolicy> frequency_;
};

}  // namespace piggyweb::proxy

#include "proxy/prefetch.h"

namespace piggyweb::proxy {

std::vector<core::PiggybackElement> Prefetcher::plan(
    util::InternId server, const core::PiggybackMessage& message,
    util::TimePoint now) {
  expire(now);
  std::vector<core::PiggybackElement> chosen;
  std::uint64_t spent = 0;
  for (const auto& element : message.elements) {
    if (element.size > config_.max_resource_bytes) continue;
    if (spent + element.size > config_.budget_bytes_per_piggyback) continue;
    // Resources modified moments ago may change again before a client
    // asks; let them settle (§4).
    if (element.last_modified >= 0 &&
        now.value - element.last_modified <
            config_.skip_if_modified_within) {
      continue;
    }
    const CacheKey key{server, element.resource};
    if (cache_->contains(key)) continue;        // coherency path handles it
    if (outstanding_.contains(key.packed())) continue;
    chosen.push_back(element);
    spent += element.size;
  }
  return chosen;
}

void Prefetcher::complete(util::InternId server,
                          const core::PiggybackElement& element,
                          util::TimePoint now) {
  const CacheKey key{server, element.resource};
  cache_->insert(key, element.size, element.last_modified, now);
  outstanding_[key.packed()] = {now, element.size};
  by_time_.emplace_back(now, key.packed());
  ++stats_.issued;
  stats_.bytes_fetched += element.size;
}

void Prefetcher::on_client_request(const CacheKey& key, util::TimePoint now) {
  expire(now);
  const auto it = outstanding_.find(key.packed());
  if (it == outstanding_.end()) return;
  ++stats_.useful;
  stats_.useful_bytes += it->second.bytes;
  outstanding_.erase(it);
}

void Prefetcher::expire(util::TimePoint now) {
  while (!by_time_.empty() &&
         now - by_time_.front().first > config_.useful_window) {
    const auto packed = by_time_.front().second;
    const auto when = by_time_.front().first;
    by_time_.pop_front();
    const auto it = outstanding_.find(packed);
    // The entry may have been credited useful (erased) or re-prefetched
    // later (newer timestamp); only a matching stale entry is futile.
    if (it != outstanding_.end() && it->second.when == when) {
      ++stats_.futile;
      stats_.futile_bytes += it->second.bytes;
      outstanding_.erase(it);
    }
  }
}

}  // namespace piggyweb::proxy

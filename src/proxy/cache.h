// Proxy cache with pluggable replacement and TTL-based coherency.
//
// Entries carry the Last-Modified time (version at the server) and an
// expiration time (when revalidation is required), exactly the per-entry
// state §2.1 assumes. Replacement supports the policies the paper's
// discussion touches:
//   * LRU — the conventional baseline,
//   * SIZE — evict largest first [6],
//   * GD-Size — GreedyDual-Size, cost/size aware [5],
//   * LRU-Piggyback — LRU where a piggyback refresh counts as a touch, so
//     resources the server predicts stay cached (§4, cache replacement),
//   * GD-Size-Hint — GreedyDual-Size credited with piggybacked implication
//     probabilities (server-assisted replacement, §4 / [24]).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>

#include "util/flat_map.h"
#include "util/intern.h"
#include "util/time.h"

namespace piggyweb::persist {
struct StateAccess;
}

namespace piggyweb::proxy {

struct CacheKey {
  util::InternId server = util::kInvalidIntern;
  util::InternId path = util::kInvalidIntern;

  bool operator==(const CacheKey&) const = default;

  std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(server) << 32) | path;
  }
};

enum class ReplacementPolicy : std::uint8_t {
  kLru,
  kSize,
  kGdSize,
  kLruPiggyback,
  // GreedyDual-Size with server-assisted hints (§4, [24]): entries the
  // server predicts will be re-accessed (piggybacked implication
  // probabilities) earn extra credit and survive eviction longer.
  kGdSizeHint,
};

const char* policy_name(ReplacementPolicy policy);

enum class LookupOutcome : std::uint8_t {
  kMiss,       // not cached: full GET required
  kFreshHit,   // cached and within its freshness interval: serve directly
  kStaleHit,   // cached but expired: If-Modified-Since GET required
};

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t fresh_hits = 0;
  std::uint64_t stale_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t piggyback_refreshes = 0;
  std::uint64_t piggyback_invalidations = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(fresh_hits + stale_hits) /
                              static_cast<double>(lookups);
  }
  double fresh_hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(fresh_hits) /
                              static_cast<double>(lookups);
  }
};

struct CacheConfig {
  std::uint64_t capacity_bytes = 64ULL * 1024 * 1024;
  util::Seconds freshness_interval = 2 * util::kHour;  // Δ
  ReplacementPolicy policy = ReplacementPolicy::kLru;
};

class ProxyCache {
 public:
  explicit ProxyCache(const CacheConfig& config);

  // Client request path ------------------------------------------------------

  LookupOutcome lookup(const CacheKey& key, util::TimePoint now);

  // Store (or overwrite) an entry after a 200 response. Objects larger
  // than the whole cache are not cached.
  void insert(const CacheKey& key, std::uint64_t size,
              std::int64_t last_modified, util::TimePoint now);

  // A 304 validated the entry: extend its expiration by Δ.
  void revalidate(const CacheKey& key, util::TimePoint now);

  // Piggyback processing path (§2.1, "proxy receives a server response") --

  // The piggyback listed this resource with `last_modified`. If our copy
  // matches, its expiration is refreshed (a free validation); if the
  // server's version is newer, the stale copy is deleted. Returns what
  // happened so prefetchers can react.
  enum class PiggybackEffect : std::uint8_t {
    kNotCached,
    kRefreshed,
    kInvalidated,
  };
  PiggybackEffect apply_piggyback(const CacheKey& key,
                                  std::int64_t last_modified,
                                  util::TimePoint now);

  // Inspection ----------------------------------------------------------------

  bool contains(const CacheKey& key) const;
  std::optional<std::int64_t> cached_last_modified(const CacheKey& key) const;
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t capacity_bytes() const { return config_.capacity_bytes; }
  std::size_t entry_count() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }
  util::Seconds freshness_interval() const {
    return config_.freshness_interval;
  }

  // Per-resource freshness override (adaptive TTL application).
  void set_freshness_override(const CacheKey& key, util::Seconds delta);

  // Server-assisted replacement hint in [0, 1] — typically the
  // piggybacked implication probability. Only the kGdSizeHint policy
  // consults it; setting it re-credits the entry at the current
  // inflation level. No-op for uncached keys.
  void set_hint(const CacheKey& key, double hint);

  // Entries for `server` whose expiration falls at or before
  // `now + horizon` (already-stale entries included) — the candidates a
  // piggyback-cache-validation (PCV) proxy batches onto its next request
  // to that server. Ordered soonest-expiring first, capped at `limit`.
  struct ExpiringEntry {
    CacheKey key;
    std::int64_t last_modified;
    util::TimePoint expires;
  };
  std::vector<ExpiringEntry> expiring_soon(util::InternId server,
                                           util::TimePoint now,
                                           util::Seconds horizon,
                                           std::size_t limit) const;

 private:
  friend struct piggyweb::persist::StateAccess;

  struct Entry {
    CacheKey key;
    std::uint64_t size = 0;
    std::int64_t last_modified = -1;
    util::TimePoint expires{};
    util::TimePoint last_access{};
    double gd_h = 0;   // GreedyDual-Size H value
    double hint = 0;   // server-assisted replacement hint
    std::list<std::uint64_t>::iterator lru_pos;
    std::multimap<double, std::uint64_t>::iterator gd_pos;
    std::multimap<std::uint64_t, std::uint64_t>::iterator size_pos;
    std::multimap<util::Seconds, std::uint64_t>::iterator expiry_pos;
  };

  util::Seconds freshness_for(const CacheKey& key) const;
  double gd_credit(const Entry& entry) const;
  void touch(Entry& entry, util::TimePoint now);
  void set_expiry(Entry& entry, util::TimePoint expires);
  void erase_entry(std::uint64_t packed);
  void evict_until_fits(std::uint64_t incoming);
  std::uint64_t pick_victim() const;

  CacheConfig config_;
  std::uint64_t used_ = 0;
  double gd_inflation_ = 0;  // GreedyDual-Size "L"
  util::FlatMap<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::multimap<double, std::uint64_t> gd_queue_;        // ascending H
  std::multimap<std::uint64_t, std::uint64_t> size_queue_;  // ascending size
  std::multimap<util::Seconds, std::uint64_t> expiry_queue_;  // ascending
  util::FlatMap<std::uint64_t, util::Seconds> freshness_overrides_;
  CacheStats stats_;
};

}  // namespace piggyweb::proxy

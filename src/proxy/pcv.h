// Proxy-side piggyback cache validation (PCV, after the paper's [10]).
//
// Before each request to a server, the agent batches up to `batch` cached
// entries from that server whose freshness expires within `horizon`
// seconds onto the request (`Piggy-validate`). The server's `P-validate`
// verdicts then revalidate fresh entries in bulk (no per-entry
// If-Modified-Since round trips) and evict stale ones before a client can
// be served outdated bytes.
#pragma once

#include <vector>

#include "core/validation.h"
#include "proxy/cache.h"

namespace piggyweb::proxy {

struct PcvConfig {
  std::size_t batch = 10;         // max items per request
  util::Seconds horizon = 600;    // validate entries expiring this soon
};

struct PcvStats {
  std::uint64_t batches_sent = 0;
  std::uint64_t items_sent = 0;
  std::uint64_t freshened = 0;    // bulk revalidations
  std::uint64_t invalidated = 0;  // stale copies evicted a priori
};

class PcvAgent {
 public:
  PcvAgent(const PcvConfig& config, ProxyCache& cache)
      : config_(config), cache_(&cache) {}

  // Items to piggyback on a request to `server` at `now` (may be empty).
  std::vector<core::ValidationItem> plan(util::InternId server,
                                         util::TimePoint now);

  // Apply the server's verdicts to the cache.
  void process(util::InternId server, const core::ValidationReply& reply,
               util::TimePoint now);

  const PcvStats& stats() const { return stats_; }

 private:
  PcvConfig config_;
  ProxyCache* cache_;
  PcvStats stats_;
};

}  // namespace piggyweb::proxy

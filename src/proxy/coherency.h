// Cache-coherency application (§4): use the Last-Modified times in a
// piggyback message to freshen valid cache entries (a free revalidation,
// avoiding a future If-Modified-Since round trip) and evict stale ones.
#pragma once

#include "core/piggyback.h"
#include "proxy/cache.h"

namespace piggyweb::proxy {

struct CoherencyStats {
  std::uint64_t piggybacks_processed = 0;
  std::uint64_t elements_processed = 0;
  std::uint64_t refreshed = 0;     // entries revalidated for free
  std::uint64_t invalidated = 0;   // stale entries dropped a priori
  std::uint64_t not_cached = 0;    // elements we had nothing for
};

class CoherencyAgent {
 public:
  explicit CoherencyAgent(ProxyCache& cache) : cache_(&cache) {}

  // Apply every element of a piggyback from `server` to the cache.
  void process(util::InternId server, const core::PiggybackMessage& message,
               util::TimePoint now);

  const CoherencyStats& stats() const { return stats_; }

 private:
  ProxyCache* cache_;
  CoherencyStats stats_;
};

}  // namespace piggyweb::proxy

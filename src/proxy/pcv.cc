#include "proxy/pcv.h"

namespace piggyweb::proxy {

std::vector<core::ValidationItem> PcvAgent::plan(util::InternId server,
                                                 util::TimePoint now) {
  const auto candidates =
      cache_->expiring_soon(server, now, config_.horizon, config_.batch);
  std::vector<core::ValidationItem> items;
  items.reserve(candidates.size());
  for (const auto& candidate : candidates) {
    items.push_back({candidate.key.path, candidate.last_modified});
  }
  if (!items.empty()) {
    ++stats_.batches_sent;
    stats_.items_sent += items.size();
  }
  return items;
}

void PcvAgent::process(util::InternId server,
                       const core::ValidationReply& reply,
                       util::TimePoint now) {
  for (const auto fresh : reply.fresh) {
    cache_->revalidate({server, fresh}, now);
    ++stats_.freshened;
  }
  for (const auto& stale : reply.stale) {
    // apply_piggyback sees the newer server version and evicts.
    if (cache_->apply_piggyback({server, stale.resource},
                                stale.last_modified, now) ==
        ProxyCache::PiggybackEffect::kInvalidated) {
      ++stats_.invalidated;
    }
  }
}

}  // namespace piggyweb::proxy

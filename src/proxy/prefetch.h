// Prefetching application (§4): fetch piggybacked resources before the
// client asks. Wrong predictions waste bandwidth and cache space, so the
// prefetcher enforces a size ceiling, skips resources modified very
// recently (they may change again before use), and bounds per-piggyback
// spend. Usefulness is tracked by watching whether a client request
// arrives within the prediction window.
#pragma once

#include <deque>
#include <vector>

#include "core/piggyback.h"
#include "proxy/cache.h"
#include "util/flat_map.h"

namespace piggyweb::proxy {

struct PrefetchConfig {
  std::uint64_t max_resource_bytes = 256 * 1024;
  std::uint64_t budget_bytes_per_piggyback = 1024 * 1024;
  util::Seconds skip_if_modified_within = 60;  // too hot to prefetch
  util::Seconds useful_window = 300;  // T: unused past this = futile
};

struct PrefetchStats {
  std::uint64_t issued = 0;
  std::uint64_t bytes_fetched = 0;
  std::uint64_t useful = 0;          // client asked within the window
  std::uint64_t futile = 0;          // window expired unused
  std::uint64_t useful_bytes = 0;
  std::uint64_t futile_bytes = 0;

  double futile_fraction() const {
    const auto settled = useful + futile;
    return settled == 0 ? 0.0
                        : static_cast<double>(futile) /
                              static_cast<double>(settled);
  }
};

class Prefetcher {
 public:
  Prefetcher(const PrefetchConfig& config, ProxyCache& cache)
      : config_(config), cache_(&cache) {}

  // Decide what to prefetch from a piggyback. Returns the chosen elements;
  // the caller performs the (simulated) fetches and calls complete().
  std::vector<core::PiggybackElement> plan(
      util::InternId server, const core::PiggybackMessage& message,
      util::TimePoint now);

  // A planned prefetch completed: insert into the cache and start the
  // usefulness clock.
  void complete(util::InternId server, const core::PiggybackElement& element,
                util::TimePoint now);

  // A client request arrived; if it hits an outstanding prefetch, credit
  // it as useful. Call for every client request (cheap no-op otherwise).
  void on_client_request(const CacheKey& key, util::TimePoint now);

  // Expire outstanding prefetches older than the useful window.
  void expire(util::TimePoint now);

  const PrefetchStats& stats() const { return stats_; }
  std::size_t outstanding() const { return outstanding_.size(); }

 private:
  struct Pending {
    util::TimePoint when{};
    std::uint64_t bytes = 0;
  };

  PrefetchConfig config_;
  ProxyCache* cache_;
  PrefetchStats stats_;
  util::FlatMap<std::uint64_t, Pending> outstanding_;  // CacheKey packed
  std::deque<std::pair<util::TimePoint, std::uint64_t>> by_time_;
};

}  // namespace piggyweb::proxy

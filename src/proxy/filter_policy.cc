#include "proxy/filter_policy.h"

namespace piggyweb::proxy {

core::ProxyFilter FilterPolicy::filter_for(util::InternId server,
                                           util::TimePoint now) {
  core::ProxyFilter filter = config_.base;
  if (frequency_ && !frequency_->should_enable(server, now)) {
    filter.enabled = false;
    return filter;
  }
  if (config_.use_rpv) {
    filter.rpv = rpv_.live(server, now);
  }
  return filter;
}

void FilterPolicy::on_piggyback(util::InternId server, core::VolumeId volume,
                                util::TimePoint now) {
  if (config_.use_rpv) rpv_.note(server, volume, now);
  if (frequency_) frequency_->on_piggyback(server, now);
}

}  // namespace piggyweb::proxy

#include "proxy/adaptive_ttl.h"

#include <algorithm>

namespace piggyweb::proxy {

void AdaptiveTtl::observe(const CacheKey& key, std::int64_t last_modified) {
  if (last_modified < 0) return;
  auto& state = state_[key.packed()];
  if (state.last_lm < 0) {
    state.last_lm = last_modified;
    return;
  }
  if (last_modified <= state.last_lm) return;  // same or older version
  const auto gap = static_cast<double>(last_modified - state.last_lm);
  state.ewma_gap = state.ewma_gap == 0
                       ? gap
                       : config_.ewma_alpha * gap +
                             (1.0 - config_.ewma_alpha) * state.ewma_gap;
  state.last_lm = last_modified;
}

util::Seconds AdaptiveTtl::freshness_for(const CacheKey& key,
                                         util::Seconds fallback) const {
  const auto it = state_.find(key.packed());
  if (it == state_.end() || it->second.ewma_gap == 0) return fallback;
  const auto delta = static_cast<util::Seconds>(config_.delta_factor *
                                                it->second.ewma_gap);
  return std::clamp(delta, config_.min_delta, config_.max_delta);
}

void AdaptiveTtl::apply_to(ProxyCache& cache, const CacheKey& key) const {
  const auto it = state_.find(key.packed());
  if (it == state_.end() || it->second.ewma_gap == 0) return;
  cache.set_freshness_override(key,
                               freshness_for(key, cache.freshness_interval()));
}

}  // namespace piggyweb::proxy

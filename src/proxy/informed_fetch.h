// Informed fetching (§4): the piggyback's size attributes let the proxy
// schedule its fetch queue before contacting servers — shortest-first on a
// congested path cuts mean waiting time (small text first, big downloads
// later). This module models a single bottleneck link and compares
// scheduling disciplines.
#pragma once

#include <cstdint>
#include <vector>


namespace piggyweb::proxy {

struct PendingFetch {
  std::uint64_t id = 0;
  std::uint64_t bytes = 0;
  double arrival = 0;  // seconds
};

enum class FetchDiscipline : std::uint8_t {
  kFifo,           // order of arrival (uninformed)
  kShortestFirst,  // by piggybacked size (informed)
};

const char* discipline_name(FetchDiscipline d);

struct FetchScheduleResult {
  double mean_wait = 0;       // queueing delay before transfer starts
  double mean_completion = 0; // arrival -> fully transferred
  double max_completion = 0;
  std::vector<double> completion_by_id;  // indexed by PendingFetch::id
};

// Simulate draining `fetches` over a link of `bandwidth_bytes_per_sec`,
// non-preemptively, choosing the next transfer by `discipline` among the
// requests that have arrived. Ids must be dense 0..n-1.
FetchScheduleResult schedule_fetches(std::vector<PendingFetch> fetches,
                                     double bandwidth_bytes_per_sec,
                                     FetchDiscipline discipline);

}  // namespace piggyweb::proxy

// Adaptive freshness interval (§4): estimate each resource's rate of
// change from the Last-Modified times observed in responses and
// piggybacks, and derive a per-resource freshness interval Δ — long for
// stable resources (fewer validations), short for volatile ones (less
// staleness risk).
#pragma once

#include "proxy/cache.h"
#include "util/flat_map.h"
#include "util/time.h"

namespace piggyweb::proxy {

struct AdaptiveTtlConfig {
  double delta_factor = 0.5;          // Δ = factor * estimated change gap
  util::Seconds min_delta = 60;
  util::Seconds max_delta = 24 * util::kHour;
  double ewma_alpha = 0.3;            // weight of the newest gap sample
};

class AdaptiveTtl {
 public:
  explicit AdaptiveTtl(const AdaptiveTtlConfig& config) : config_(config) {}

  // Observe a Last-Modified value for a resource (from any response or
  // piggyback element). Consecutive distinct values yield gap samples.
  void observe(const CacheKey& key, std::int64_t last_modified);

  // Recommended Δ; falls back to `fallback` until two distinct
  // modifications have been seen.
  util::Seconds freshness_for(const CacheKey& key,
                              util::Seconds fallback) const;

  // Push the recommendation into a cache as a per-resource override.
  void apply_to(ProxyCache& cache, const CacheKey& key) const;

  std::size_t tracked() const { return state_.size(); }

 private:
  struct State {
    std::int64_t last_lm = -1;
    double ewma_gap = 0;  // seconds; 0 = no estimate yet
  };
  AdaptiveTtlConfig config_;
  util::FlatMap<std::uint64_t, State> state_;
};

}  // namespace piggyweb::proxy

#include "proxy/informed_fetch.h"

#include <algorithm>

#include "util/expect.h"

namespace piggyweb::proxy {

const char* discipline_name(FetchDiscipline d) {
  switch (d) {
    case FetchDiscipline::kFifo:
      return "fifo";
    case FetchDiscipline::kShortestFirst:
      return "shortest-first";
  }
  return "?";
}

FetchScheduleResult schedule_fetches(std::vector<PendingFetch> fetches,
                                     double bandwidth_bytes_per_sec,
                                     FetchDiscipline discipline) {
  PW_EXPECT(bandwidth_bytes_per_sec > 0);
  FetchScheduleResult result;
  if (fetches.empty()) return result;
  result.completion_by_id.assign(fetches.size(), 0.0);

  // Event-free simulation: keep the not-yet-started set; at each step pick
  // the next job among those arrived by `clock` (or jump to the earliest
  // arrival if the link is idle).
  std::sort(fetches.begin(), fetches.end(),
            [](const PendingFetch& a, const PendingFetch& b) {
              return a.arrival < b.arrival;
            });
  std::vector<bool> done(fetches.size(), false);
  double clock = 0;
  double total_wait = 0, total_completion = 0;
  std::size_t completed = 0;
  while (completed < fetches.size()) {
    // Candidates: arrived, not done.
    std::size_t pick = fetches.size();
    double earliest_arrival = 0;
    bool any_pending = false;
    for (std::size_t i = 0; i < fetches.size(); ++i) {
      if (done[i]) continue;
      if (!any_pending || fetches[i].arrival < earliest_arrival) {
        earliest_arrival = fetches[i].arrival;
        any_pending = true;
      }
      if (fetches[i].arrival > clock) continue;
      if (pick == fetches.size()) {
        pick = i;
        continue;
      }
      const bool better =
          discipline == FetchDiscipline::kShortestFirst
              ? fetches[i].bytes < fetches[pick].bytes
              : fetches[i].arrival < fetches[pick].arrival;
      if (better) pick = i;
    }
    if (pick == fetches.size()) {
      // Link idle; jump to the next arrival.
      clock = earliest_arrival;
      continue;
    }
    const auto& job = fetches[pick];
    const double start = std::max(clock, job.arrival);
    const double duration =
        static_cast<double>(job.bytes) / bandwidth_bytes_per_sec;
    const double finish = start + duration;
    total_wait += start - job.arrival;
    total_completion += finish - job.arrival;
    PW_EXPECT(job.id < result.completion_by_id.size());
    result.completion_by_id[job.id] = finish - job.arrival;
    result.max_completion = std::max(result.max_completion,
                                     finish - job.arrival);
    clock = finish;
    done[pick] = true;
    ++completed;
  }
  result.mean_wait = total_wait / static_cast<double>(fetches.size());
  result.mean_completion =
      total_completion / static_cast<double>(fetches.size());
  return result;
}

}  // namespace piggyweb::proxy

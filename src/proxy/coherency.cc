#include "proxy/coherency.h"

namespace piggyweb::proxy {

void CoherencyAgent::process(util::InternId server,
                             const core::PiggybackMessage& message,
                             util::TimePoint now) {
  if (message.empty()) return;
  ++stats_.piggybacks_processed;
  for (const auto& element : message.elements) {
    ++stats_.elements_processed;
    const CacheKey key{server, element.resource};
    switch (cache_->apply_piggyback(key, element.last_modified, now)) {
      case ProxyCache::PiggybackEffect::kRefreshed:
        ++stats_.refreshed;
        // Server-assisted replacement (§4): the piggybacked implication
        // probability doubles as a re-access hint for the entry.
        if (element.probability > 0) {
          cache_->set_hint(key, element.probability);
        }
        break;
      case ProxyCache::PiggybackEffect::kInvalidated:
        ++stats_.invalidated;
        break;
      case ProxyCache::PiggybackEffect::kNotCached:
        ++stats_.not_cached;
        break;
    }
  }
}

}  // namespace piggyweb::proxy

#include "proxy/cache.h"

#include <algorithm>
#include <vector>

#include "util/expect.h"

namespace piggyweb::proxy {

const char* policy_name(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kSize:
      return "size";
    case ReplacementPolicy::kGdSize:
      return "gd-size";
    case ReplacementPolicy::kLruPiggyback:
      return "lru-piggyback";
    case ReplacementPolicy::kGdSizeHint:
      return "gd-size-hint";
  }
  return "?";
}

ProxyCache::ProxyCache(const CacheConfig& config) : config_(config) {
  PW_EXPECT(config.capacity_bytes > 0);
  PW_EXPECT(config.freshness_interval > 0);
}

util::Seconds ProxyCache::freshness_for(const CacheKey& key) const {
  const auto it = freshness_overrides_.find(key.packed());
  return it == freshness_overrides_.end() ? config_.freshness_interval
                                          : it->second;
}

void ProxyCache::set_freshness_override(const CacheKey& key,
                                        util::Seconds delta) {
  PW_EXPECT(delta > 0);
  freshness_overrides_[key.packed()] = delta;
}

double ProxyCache::gd_credit(const Entry& entry) const {
  // Uniform-cost GreedyDual-Size credit 1/size; with hints, a predicted
  // re-access is worth up to 10x the base credit.
  const auto size = static_cast<double>(std::max<std::uint64_t>(
      1, entry.size));
  if (config_.policy == ReplacementPolicy::kGdSizeHint) {
    return (1.0 + 9.0 * entry.hint) / size;
  }
  return 1.0 / size;
}

void ProxyCache::set_hint(const CacheKey& key, double hint) {
  PW_EXPECT(hint >= 0.0 && hint <= 1.0);
  const auto it = entries_.find(key.packed());
  if (it == entries_.end()) return;
  it->second.hint = hint;
  if (config_.policy != ReplacementPolicy::kGdSizeHint) return;
  gd_queue_.erase(it->second.gd_pos);
  it->second.gd_h = gd_inflation_ + gd_credit(it->second);
  it->second.gd_pos =
      gd_queue_.emplace(it->second.gd_h, key.packed());
}

void ProxyCache::set_expiry(Entry& entry, util::TimePoint expires) {
  entry.expires = expires;
  expiry_queue_.erase(entry.expiry_pos);
  entry.expiry_pos =
      expiry_queue_.emplace(expires.value, entry.key.packed());
}

void ProxyCache::touch(Entry& entry, util::TimePoint now) {
  entry.last_access = now;
  const auto packed = entry.key.packed();
  // LRU position: splice to front.
  lru_.erase(entry.lru_pos);
  lru_.push_front(packed);
  entry.lru_pos = lru_.begin();
  // GreedyDual-Size: restore full credit at the current inflation level.
  gd_queue_.erase(entry.gd_pos);
  entry.gd_h = gd_inflation_ + gd_credit(entry);
  entry.gd_pos = gd_queue_.emplace(entry.gd_h, packed);
}

LookupOutcome ProxyCache::lookup(const CacheKey& key, util::TimePoint now) {
  ++stats_.lookups;
  const auto it = entries_.find(key.packed());
  if (it == entries_.end()) {
    ++stats_.misses;
    return LookupOutcome::kMiss;
  }
  touch(it->second, now);
  if (now < it->second.expires) {
    ++stats_.fresh_hits;
    return LookupOutcome::kFreshHit;
  }
  ++stats_.stale_hits;
  return LookupOutcome::kStaleHit;
}

void ProxyCache::erase_entry(std::uint64_t packed) {
  const auto it = entries_.find(packed);
  PW_EXPECT(it != entries_.end());
  used_ -= it->second.size;
  lru_.erase(it->second.lru_pos);
  gd_queue_.erase(it->second.gd_pos);
  size_queue_.erase(it->second.size_pos);
  expiry_queue_.erase(it->second.expiry_pos);
  entries_.erase(it);
}

std::uint64_t ProxyCache::pick_victim() const {
  PW_EXPECT(!entries_.empty());
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kLruPiggyback:
      return lru_.back();
    case ReplacementPolicy::kSize:
      return size_queue_.rbegin()->second;  // largest first
    case ReplacementPolicy::kGdSize:
    case ReplacementPolicy::kGdSizeHint:
      return gd_queue_.begin()->second;  // smallest H first
  }
  return lru_.back();
}

void ProxyCache::evict_until_fits(std::uint64_t incoming) {
  while (!entries_.empty() &&
         used_ + incoming > config_.capacity_bytes) {
    const auto victim = pick_victim();
    if (config_.policy == ReplacementPolicy::kGdSize ||
        config_.policy == ReplacementPolicy::kGdSizeHint) {
      // GreedyDual-Size: inflation rises to the evicted entry's H.
      gd_inflation_ = gd_queue_.begin()->first;
    }
    erase_entry(victim);
    ++stats_.evictions;
  }
}

void ProxyCache::insert(const CacheKey& key, std::uint64_t size,
                        std::int64_t last_modified, util::TimePoint now) {
  if (size > config_.capacity_bytes) return;  // never cache the uncachable
  const auto packed = key.packed();
  if (const auto it = entries_.find(packed); it != entries_.end()) {
    erase_entry(packed);
  }
  evict_until_fits(size);

  Entry entry;
  entry.key = key;
  entry.size = size;
  entry.last_modified = last_modified;
  entry.expires = now + freshness_for(key);
  entry.last_access = now;
  lru_.push_front(packed);
  entry.lru_pos = lru_.begin();
  entry.gd_h = gd_inflation_ + gd_credit(entry);
  entry.gd_pos = gd_queue_.emplace(entry.gd_h, packed);
  entry.size_pos = size_queue_.emplace(size, packed);
  entry.expiry_pos = expiry_queue_.emplace(entry.expires.value, packed);
  used_ += size;
  entries_.emplace(packed, entry);
  ++stats_.insertions;
}

void ProxyCache::revalidate(const CacheKey& key, util::TimePoint now) {
  const auto it = entries_.find(key.packed());
  if (it == entries_.end()) return;
  set_expiry(it->second, now + freshness_for(key));
}

ProxyCache::PiggybackEffect ProxyCache::apply_piggyback(
    const CacheKey& key, std::int64_t last_modified, util::TimePoint now) {
  const auto it = entries_.find(key.packed());
  if (it == entries_.end()) return PiggybackEffect::kNotCached;
  if (it->second.last_modified >= last_modified) {
    // Our copy is current: a free revalidation.
    set_expiry(it->second, now + freshness_for(key));
    if (config_.policy == ReplacementPolicy::kLruPiggyback) {
      touch(it->second, now);
    }
    ++stats_.piggyback_refreshes;
    return PiggybackEffect::kRefreshed;
  }
  // The server has a newer version: drop the stale copy.
  erase_entry(key.packed());
  ++stats_.piggyback_invalidations;
  return PiggybackEffect::kInvalidated;
}

bool ProxyCache::contains(const CacheKey& key) const {
  return entries_.contains(key.packed());
}

std::vector<ProxyCache::ExpiringEntry> ProxyCache::expiring_soon(
    util::InternId server, util::TimePoint now, util::Seconds horizon,
    std::size_t limit) const {
  std::vector<ExpiringEntry> out;
  const auto deadline = (now + horizon).value;
  for (auto it = expiry_queue_.begin();
       it != expiry_queue_.end() && it->first <= deadline &&
       out.size() < limit;
       ++it) {
    const auto& entry = entries_.at(it->second);
    if (entry.key.server != server) continue;
    out.push_back({entry.key, entry.last_modified, entry.expires});
  }
  return out;
}

std::optional<std::int64_t> ProxyCache::cached_last_modified(
    const CacheKey& key) const {
  const auto it = entries_.find(key.packed());
  if (it == entries_.end()) return std::nullopt;
  return it->second.last_modified;
}

}  // namespace piggyweb::proxy

// Network cost accounting: TCP connections (new vs persistent reuse),
// packets, bytes, and a simple latency model. The paper's end-to-end
// argument is about exactly these quantities — piggybacks ride existing
// packets while avoided validations/prefetch misses save round trips and
// connections.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/intern.h"
#include "util/time.h"

namespace piggyweb::net {

struct NetworkConfig {
  double rtt_seconds = 0.1;                  // proxy <-> server round trip
  double bandwidth_bytes_per_sec = 256 * 1024;
  double server_think_seconds = 0.05;
  util::Seconds persistent_idle_timeout = 60;  // HTTP/1.1 keep-alive
  std::uint64_t mtu_bytes = 1500;
  std::uint64_t tcp_ip_header_bytes = 40;
};

struct TransferCost {
  double latency_seconds = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  bool opened_connection = false;
};

struct ConnectionStats {
  std::uint64_t opened = 0;
  std::uint64_t reused = 0;

  double reuse_fraction() const {
    const auto total = opened + reused;
    return total == 0 ? 0.0
                      : static_cast<double>(reused) /
                            static_cast<double>(total);
  }
};

// Tracks persistent connections between (source, server) pairs; a transfer
// within the idle timeout reuses the connection, otherwise a new one is
// opened (costing an extra round trip and handshake packets).
class ConnectionManager {
 public:
  explicit ConnectionManager(util::Seconds idle_timeout)
      : idle_timeout_(idle_timeout) {}

  // Returns true if an existing connection was reused; records the use.
  bool use(util::InternId source, util::InternId server, util::TimePoint now);

  const ConnectionStats& stats() const { return stats_; }

 private:
  static std::uint64_t key(util::InternId source, util::InternId server) {
    return (static_cast<std::uint64_t>(source) << 32) | server;
  }
  util::Seconds idle_timeout_;
  std::unordered_map<std::uint64_t, util::TimePoint> last_use_;
  ConnectionStats stats_;
};

// Pure cost arithmetic for a request/response exchange.
class CostModel {
 public:
  explicit CostModel(const NetworkConfig& config) : config_(config) {}

  // One HTTP exchange: `request_bytes` up, `response_bytes` down.
  // `reused_connection` skips the TCP handshake RTT and its packets.
  TransferCost exchange(std::uint64_t request_bytes,
                        std::uint64_t response_bytes,
                        bool reused_connection) const;

  std::uint64_t packets_for(std::uint64_t payload_bytes) const;

  const NetworkConfig& config() const { return config_; }

 private:
  NetworkConfig config_;
};

}  // namespace piggyweb::net

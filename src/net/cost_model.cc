#include "net/cost_model.h"

#include "util/expect.h"

namespace piggyweb::net {

bool ConnectionManager::use(util::InternId source, util::InternId server,
                            util::TimePoint now) {
  const auto k = key(source, server);
  const auto it = last_use_.find(k);
  const bool reused =
      it != last_use_.end() && now - it->second <= idle_timeout_;
  last_use_[k] = now;
  if (reused) {
    ++stats_.reused;
  } else {
    ++stats_.opened;
  }
  return reused;
}

std::uint64_t CostModel::packets_for(std::uint64_t payload_bytes) const {
  const auto per_packet = config_.mtu_bytes - config_.tcp_ip_header_bytes;
  PW_EXPECT(per_packet > 0);
  if (payload_bytes == 0) return 1;
  return (payload_bytes + per_packet - 1) / per_packet;
}

TransferCost CostModel::exchange(std::uint64_t request_bytes,
                                 std::uint64_t response_bytes,
                                 bool reused_connection) const {
  TransferCost cost;
  cost.opened_connection = !reused_connection;
  cost.bytes = request_bytes + response_bytes;
  cost.packets = packets_for(request_bytes) + packets_for(response_bytes);
  // Request + response is one round trip; a new connection prepends the
  // TCP handshake (one more round trip, two more packets — SYN, SYN-ACK).
  cost.latency_seconds =
      config_.rtt_seconds + config_.server_think_seconds +
      static_cast<double>(response_bytes) / config_.bandwidth_bytes_per_sec;
  if (!reused_connection) {
    cost.latency_seconds += config_.rtt_seconds;
    cost.packets += 2;
  }
  return cost;
}

}  // namespace piggyweb::net

#include "obs/manifest.h"

#include <cstdio>
#include <fstream>
#include <utility>

namespace piggyweb::obs {

Json build_run_manifest(const std::string& name,
                        const std::vector<std::string>& argv_echo,
                        double wall_seconds, double cpu_seconds,
                        const Registry& registry, const Json& extra) {
  auto manifest = Json::object();
  manifest.set("piggyweb_manifest", 1);
  manifest.set("name", name);
  auto argv = Json::array();
  for (const auto& arg : argv_echo) argv.push_back(arg);
  manifest.set("argv", std::move(argv));
  manifest.set("wall_seconds", wall_seconds);
  manifest.set("cpu_seconds", cpu_seconds);
  manifest.set("metrics", registry.snapshot());
  if (extra.is_object()) {
    for (const auto& [key, value] : extra.members()) {
      manifest.set(key, value);
    }
  }
  return manifest;
}

namespace {

void check_metric_array(const Json& metrics, const char* key,
                        std::vector<std::string>& problems) {
  const auto* array = metrics.find(key);
  if (array == nullptr || !array->is_array()) {
    problems.push_back(std::string("metrics.") + key +
                       " missing or not an array");
    return;
  }
  for (const auto& entry : array->items()) {
    if (!entry.is_object()) {
      problems.push_back(std::string("metrics.") + key +
                         " entry is not an object");
      continue;
    }
    const auto* name = entry.find("name");
    if (name == nullptr || !name->is_string()) {
      problems.push_back(std::string("metrics.") + key +
                         " entry lacks a string name");
    }
    const auto* deterministic = entry.find("deterministic");
    if (deterministic == nullptr || !deterministic->is_bool()) {
      problems.push_back(std::string("metrics.") + key +
                         " entry lacks a deterministic flag");
    }
  }
}

// "0x" followed by exactly sixteen lower-case hex digits — the form the
// persist layer's checksum_hex emits into manifests.
bool is_checksum_hex(const std::string& s) {
  if (s.size() != 18 || s[0] != '0' || s[1] != 'x') return false;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

// Optional section written by checkpointing runs: maps "saved"/"loaded"
// to { "path": ..., "fnv1a": "0x..." } entries.
void check_snapshots_section(const Json& manifest,
                             std::vector<std::string>& problems) {
  const auto* snapshots = manifest.find("snapshots");
  if (snapshots == nullptr) return;
  if (!snapshots->is_object()) {
    problems.push_back("snapshots section is not an object");
    return;
  }
  for (const auto& [role, entry] : snapshots->members()) {
    if (role != "saved" && role != "loaded") {
      problems.push_back("snapshots key '" + role + "' is not saved/loaded");
      continue;
    }
    if (!entry.is_object()) {
      problems.push_back("snapshots." + role + " is not an object");
      continue;
    }
    const auto* path = entry.find("path");
    if (path == nullptr || !path->is_string() || path->string().empty()) {
      problems.push_back("snapshots." + role + ".path missing or empty");
    }
    const auto* checksum = entry.find("fnv1a");
    if (checksum == nullptr || !checksum->is_string() ||
        !is_checksum_hex(checksum->string())) {
      problems.push_back("snapshots." + role +
                         ".fnv1a missing or not 0x-prefixed 16-digit hex");
    }
  }
}

// Optional buffer-health sections ("tracer", "flight_recorder"):
// objects of non-negative numbers.
void check_buffer_section(const Json& manifest, const char* key,
                          std::vector<std::string>& problems) {
  const auto* section = manifest.find(key);
  if (section == nullptr) return;
  if (!section->is_object()) {
    problems.push_back(std::string(key) + " section is not an object");
    return;
  }
  for (const auto& [field, value] : section->members()) {
    if (!value.is_number() || value.number() < 0) {
      problems.push_back(std::string(key) + "." + field +
                         " is not a non-negative number");
    }
  }
}

}  // namespace

bool validate_run_manifest(const Json& manifest,
                           std::vector<std::string>& problems) {
  const auto before = problems.size();
  if (!manifest.is_object()) {
    problems.push_back("manifest is not a JSON object");
    return false;
  }
  const auto* version = manifest.find("piggyweb_manifest");
  if (version == nullptr || !version->is_number() ||
      version->number() != 1.0) {
    problems.push_back("piggyweb_manifest version marker missing or != 1");
  }
  const auto* name = manifest.find("name");
  if (name == nullptr || !name->is_string() || name->string().empty()) {
    problems.push_back("name missing or empty");
  }
  const auto* argv = manifest.find("argv");
  if (argv == nullptr || !argv->is_array()) {
    problems.push_back("argv echo missing");
  }
  for (const char* key : {"wall_seconds", "cpu_seconds"}) {
    const auto* seconds = manifest.find(key);
    if (seconds == nullptr || !seconds->is_number() ||
        seconds->number() < 0) {
      problems.push_back(std::string(key) + " missing or negative");
    }
  }
  const auto* metrics = manifest.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    problems.push_back("metrics section missing");
  } else {
    check_metric_array(*metrics, "counters", problems);
    check_metric_array(*metrics, "gauges", problems);
    check_metric_array(*metrics, "histograms", problems);
  }
  check_snapshots_section(manifest, problems);
  check_buffer_section(manifest, "tracer", problems);
  check_buffer_section(manifest, "flight_recorder", problems);
  return problems.size() == before;
}

RunScope::RunScope(Options options) : options_(std::move(options)) {
  if (metrics_enabled()) set_global_metrics(&registry_);
  if (trace_enabled()) set_global_tracer(&tracer_);
  if (flight_recorder_enabled()) {
    set_global_flight_recorder(&flight_recorder_);
    install_crash_handler(options_.flight_recorder_path);
  }
}

RunScope::~RunScope() { finish(); }

void RunScope::note(std::string key, Json value) {
  extra_.set(std::move(key), std::move(value));
}

bool RunScope::finish() {
  if (finished_) return true;
  finished_ = true;
  if (global_metrics() == &registry_) set_global_metrics(nullptr);
  if (global_tracer() == &tracer_) set_global_tracer(nullptr);
  if (global_flight_recorder() == &flight_recorder_) {
    set_global_flight_recorder(nullptr);
    install_crash_handler("");  // disarm the crash dump
  }

  bool ok = true;
  if (trace_enabled()) {
    ok = tracer_.write_chrome_trace(options_.trace_path) && ok;
  }
  if (flight_recorder_enabled()) {
    ok = flight_recorder_.write_chrome_trace(
             options_.flight_recorder_path) &&
         ok;
  }
  if (!options_.prom_path.empty()) {
    std::ofstream out(options_.prom_path);
    if (!out) {
      std::fprintf(stderr, "obs: cannot write prometheus export to %s\n",
                   options_.prom_path.c_str());
      ok = false;
    } else {
      out << registry_.to_prometheus();
      ok = out.good() && ok;
    }
  }
  if (!options_.metrics_path.empty()) {
    // Buffer-health sections: how close tracing came to its memory cap
    // and how much the flight recorder overwrote. Written even when
    // tracing is off (all-zero) so downstream readers need no probing.
    auto tracer_section = Json::object();
    tracer_section.set("events", tracer_.event_count());
    tracer_section.set("dropped", tracer_.dropped());
    tracer_section.set("thread_buffers", tracer_.thread_count());
    tracer_section.set("max_events_per_thread",
                       tracer_.max_events_per_thread());
    extra_.set("tracer", std::move(tracer_section));
    if (flight_recorder_enabled()) {
      auto recorder_section = Json::object();
      recorder_section.set("capacity_per_thread",
                           flight_recorder_.capacity_per_thread());
      recorder_section.set("recorded", flight_recorder_.recorded());
      recorder_section.set("dropped", flight_recorder_.dropped());
      recorder_section.set("retained", flight_recorder_.retained());
      recorder_section.set("thread_rings",
                           flight_recorder_.thread_count());
      extra_.set("flight_recorder", std::move(recorder_section));
    }
    const auto manifest = build_run_manifest(
        options_.run_name, options_.argv, timer_.wall_seconds(),
        timer_.cpu_seconds(), registry_, extra_);
    std::ofstream out(options_.metrics_path);
    if (!out) {
      std::fprintf(stderr, "obs: cannot write manifest to %s\n",
                   options_.metrics_path.c_str());
      ok = false;
    } else {
      out << manifest.dump(2);
      ok = out.good() && ok;
    }
  }
  return ok;
}

}  // namespace piggyweb::obs

#include "obs/tracer.h"

#include <atomic>
#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace piggyweb::obs {

namespace {
std::atomic<std::uint64_t> g_next_tracer_id{1};
}  // namespace

Tracer::Tracer(std::size_t max_events_per_thread)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()),
      max_events_(max_events_per_thread) {}

std::uint64_t Tracer::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Cache keyed by the tracer's process-unique id, not its address: a new
  // tracer constructed at a reused address must not hit a stale cache.
  thread_local std::uint64_t cached_id = 0;
  thread_local ThreadBuffer* cached_buffer = nullptr;
  if (cached_id != id_) {
    auto buffer = std::make_unique<ThreadBuffer>();
    cached_buffer = buffer.get();
    cached_id = id_;
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::move(buffer));
  }
  return *cached_buffer;
}

void Tracer::complete(std::string name, std::uint64_t start_us,
                      std::uint64_t dur_us) {
  auto& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back({std::move(name), start_us, dur_us, 'X'});
}

void Tracer::instant(std::string name) {
  auto& buffer = local_buffer();
  const auto ts = now_us();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back({std::move(name), ts, 0, 'i'});
}

std::size_t Tracer::event_count() const {
  std::size_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

std::size_t Tracer::thread_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffers_.size();
}

Json Tracer::chrome_trace() const {
  auto events = Json::array();
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t tid = 0; tid < buffers_.size(); ++tid) {
    const auto& buffer = *buffers_[tid];
    std::lock_guard<std::mutex> buffer_lock(buffer.mutex);
    for (const auto& event : buffer.events) {
      auto item = Json::object();
      item.set("name", event.name);
      item.set("cat", "piggyweb");
      item.set("ph", std::string(1, event.phase));
      item.set("ts", event.ts_us);
      if (event.phase == 'X') item.set("dur", event.dur_us);
      if (event.phase == 'i') item.set("s", "t");
      item.set("pid", 1);
      item.set("tid", tid);
      events.push_back(std::move(item));
    }
  }
  auto out = Json::object();
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", "ms");
  return out;
}

std::string Tracer::chrome_trace_json() const {
  return chrome_trace().dump(1);
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot write trace to %s\n", path.c_str());
    return false;
  }
  out << chrome_trace_json();
  return out.good();
}

namespace {
std::atomic<Tracer*> g_tracer{nullptr};
}  // namespace

Tracer* global_tracer() { return g_tracer.load(std::memory_order_acquire); }

void set_global_tracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

}  // namespace piggyweb::obs

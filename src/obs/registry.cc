#include "obs/registry.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "util/expect.h"

namespace piggyweb::obs {

void Gauge::set_max(double value) {
  double current = value_.load(std::memory_order_relaxed);
  while (value > current &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets), histogram_(lo, hi, buckets) {}

void HistogramMetric::add(double x) {
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_.add(x);
  stats_.add(x);
}

void HistogramMetric::merge_from(const HistogramMetric& other) {
  PW_EXPECT(lo_ == other.lo_ && hi_ == other.hi_ &&
            buckets_ == other.buckets_);
  // Lock order: this before other. Merges happen after parallel phases
  // quiesce, so the asymmetry never deadlocks in practice.
  std::lock_guard<std::mutex> lock(mutex_);
  std::lock_guard<std::mutex> other_lock(other.mutex_);
  histogram_.merge(other.histogram_);
  stats_.merge(other.stats_);
}

util::RunningStats HistogramMetric::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Json HistogramMetric::snapshot_buckets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto out = Json::array();
  out.push_back(histogram_.underflow());
  for (std::size_t i = 0; i < histogram_.buckets(); ++i) {
    out.push_back(histogram_.bucket_count(i));
  }
  out.push_back(histogram_.overflow());
  return out;
}

Counter& Registry::counter(std::string_view name, bool deterministic) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kCounter, deterministic, std::make_unique<Counter>(),
                nullptr, nullptr, nullptr};
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  PW_EXPECT(it->second.kind == Kind::kCounter);
  return *it->second.counter;
}

Gauge& Registry::gauge(std::string_view name, bool deterministic) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kGauge, deterministic, nullptr,
                std::make_unique<Gauge>(), nullptr, nullptr};
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  PW_EXPECT(it->second.kind == Kind::kGauge);
  return *it->second.gauge;
}

HistogramMetric& Registry::histogram(std::string_view name, double lo,
                                     double hi, std::size_t buckets,
                                     bool deterministic) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kHistogram, deterministic, nullptr, nullptr,
                std::make_unique<HistogramMetric>(lo, hi, buckets), nullptr};
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  PW_EXPECT(it->second.kind == Kind::kHistogram);
  return *it->second.histogram;
}

LogHistogram& Registry::log_histogram(std::string_view name, double lo,
                                      double hi,
                                      std::size_t buckets_per_decade,
                                      bool deterministic) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kLogHistogram, deterministic, nullptr, nullptr,
                nullptr,
                std::make_unique<LogHistogram>(lo, hi, buckets_per_decade)};
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  PW_EXPECT(it->second.kind == Kind::kLogHistogram);
  return *it->second.log_histogram;
}

void Registry::merge_from(const Registry& other) {
  // Snapshot the other registry's entry pointers under its lock, then
  // merge without holding it (metric updates are internally synchronized).
  std::vector<std::pair<std::string, const Entry*>> names;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    names.reserve(other.entries_.size());
    for (const auto& [name, entry] : other.entries_) {
      names.emplace_back(name, &entry);
    }
  }
  for (const auto& [name, entry] : names) {
    switch (entry->kind) {
      case Kind::kCounter:
        counter(name, entry->deterministic).add(entry->counter->value());
        break;
      case Kind::kGauge:
        gauge(name, entry->deterministic).set_max(entry->gauge->value());
        break;
      case Kind::kHistogram:
        histogram(name, entry->histogram->lo(), entry->histogram->hi(),
                  entry->histogram->buckets(), entry->deterministic)
            .merge_from(*entry->histogram);
        break;
      case Kind::kLogHistogram:
        log_histogram(name, entry->log_histogram->lo(),
                      entry->log_histogram->hi(),
                      entry->log_histogram->buckets_per_decade(),
                      entry->deterministic)
            .merge_from(*entry->log_histogram);
        break;
    }
  }
}

std::size_t Registry::metric_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

Json Registry::snapshot() const {
  auto counters = Json::array();
  auto gauges = Json::array();
  auto histograms = Json::array();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    auto item = Json::object();
    item.set("name", name);
    switch (entry.kind) {
      case Kind::kCounter:
        item.set("value", entry.counter->value());
        item.set("deterministic", entry.deterministic);
        counters.push_back(std::move(item));
        break;
      case Kind::kGauge:
        item.set("value", entry.gauge->value());
        item.set("deterministic", entry.deterministic);
        gauges.push_back(std::move(item));
        break;
      case Kind::kHistogram: {
        const auto stats = entry.histogram->stats();
        item.set("count", stats.count());
        item.set("sum", stats.sum());
        // Derived from sum/count rather than the Welford running mean:
        // the running mean's merge is not bit-associative, and snapshots
        // must not depend on how shard registries were grouped.
        item.set("mean", stats.count() == 0
                             ? 0.0
                             : stats.sum() /
                                   static_cast<double>(stats.count()));
        item.set("min", stats.min());
        item.set("max", stats.max());
        item.set("lo", entry.histogram->lo());
        item.set("hi", entry.histogram->hi());
        item.set("buckets", entry.histogram->snapshot_buckets());
        item.set("deterministic", entry.deterministic);
        histograms.push_back(std::move(item));
        break;
      }
      case Kind::kLogHistogram: {
        const auto& h = *entry.log_histogram;
        item.set("scale", "log");
        item.set("count", h.count());
        item.set("sum", h.sum());
        item.set("mean", h.mean());
        item.set("min", h.min());
        item.set("max", h.max());
        item.set("p50", h.percentile(0.50));
        item.set("p90", h.percentile(0.90));
        item.set("p99", h.percentile(0.99));
        item.set("p999", h.percentile(0.999));
        item.set("lo", h.lo());
        item.set("hi", h.hi());
        item.set("buckets_per_decade", h.buckets_per_decade());
        auto buckets_json = Json::array();
        for (const auto c : h.bucket_counts()) buckets_json.push_back(c);
        item.set("buckets", std::move(buckets_json));
        item.set("deterministic", entry.deterministic);
        histograms.push_back(std::move(item));
        break;
      }
    }
  }
  auto out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

std::string Registry::to_json(int indent) const {
  return snapshot().dump(indent);
}

namespace {

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out = "_" + out;
  return out;
}

void append_prometheus_number(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

}  // namespace

std::string Registry::to_prometheus() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    const auto metric = prometheus_name(name);
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + metric + " counter\n";
        out += metric + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + metric + " gauge\n";
        out += metric + " ";
        append_prometheus_number(out, entry.gauge->value());
        out += "\n";
        break;
      case Kind::kHistogram: {
        const auto& h = *entry.histogram;
        const auto stats = h.stats();
        const auto buckets = h.snapshot_buckets();
        out += "# TYPE " + metric + " histogram\n";
        // Cumulative le buckets: underflow folds into the first edge.
        std::uint64_t cumulative = 0;
        const auto& counts = buckets.items();
        const double width =
            h.buckets() > 0
                ? (h.hi() - h.lo()) / static_cast<double>(h.buckets())
                : 0.0;
        for (std::size_t i = 0; i + 1 < counts.size(); ++i) {
          cumulative += static_cast<std::uint64_t>(counts[i].number());
          const double edge = h.lo() + width * static_cast<double>(i);
          out += metric + "_bucket{le=\"";
          append_prometheus_number(out, edge);
          out += "\"} " + std::to_string(cumulative) + "\n";
        }
        out += metric + "_bucket{le=\"+Inf\"} " +
               std::to_string(stats.count()) + "\n";
        out += metric + "_sum ";
        append_prometheus_number(out, stats.sum());
        out += "\n";
        out += metric + "_count " + std::to_string(stats.count()) + "\n";
        break;
      }
      case Kind::kLogHistogram: {
        const auto& h = *entry.log_histogram;
        const auto counts = h.bucket_counts();
        out += "# TYPE " + metric + " histogram\n";
        // le edges: lo covers the underflow bucket, then each interior
        // bucket's upper edge; overflow folds into +Inf.
        std::uint64_t cumulative = counts[0];
        out += metric + "_bucket{le=\"";
        append_prometheus_number(out, h.lo());
        out += "\"} " + std::to_string(cumulative) + "\n";
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          cumulative += counts[i + 1];
          out += metric + "_bucket{le=\"";
          append_prometheus_number(out, h.edge(i + 1));
          out += "\"} " + std::to_string(cumulative) + "\n";
        }
        out += metric + "_bucket{le=\"+Inf\"} " +
               std::to_string(h.count()) + "\n";
        out += metric + "_sum ";
        append_prometheus_number(out, h.sum());
        out += "\n";
        out += metric + "_count " + std::to_string(h.count()) + "\n";
        // Precomputed quantiles as companion gauges, so a scrape needs
        // no server-side histogram_quantile() to see the tail.
        const std::pair<const char*, double> quantiles[] = {
            {"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99},
            {"_p999", 0.999}};
        for (const auto& [suffix, q] : quantiles) {
          out += "# TYPE " + metric + suffix + " gauge\n";
          out += metric + suffix + " ";
          append_prometheus_number(out, h.percentile(q));
          out += "\n";
        }
        out += "# TYPE " + metric + "_max gauge\n";
        out += metric + "_max ";
        append_prometheus_number(out, h.max());
        out += "\n";
        break;
      }
    }
  }
  return out;
}

namespace {
std::atomic<Registry*> g_metrics{nullptr};
}  // namespace

Registry* global_metrics() {
  return g_metrics.load(std::memory_order_acquire);
}

void set_global_metrics(Registry* registry) {
  g_metrics.store(registry, std::memory_order_release);
}

}  // namespace piggyweb::obs

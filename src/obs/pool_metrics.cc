#include "obs/pool_metrics.h"

namespace piggyweb::obs {

namespace {
std::string with_suffix(std::string_view prefix, const char* suffix) {
  return std::string(prefix) + suffix;
}
}  // namespace

ThreadPoolMetrics::ThreadPoolMetrics(Registry& registry,
                                     std::string_view prefix)
    : tasks_(registry.counter(with_suffix(prefix, ".tasks"),
                              /*deterministic=*/false)),
      queue_depth_max_(registry.gauge(with_suffix(prefix, ".queue_depth_max"),
                                      /*deterministic=*/false)),
      // Task granularity here is a whole shard/range, so most tasks take
      // milliseconds to seconds; the overflow bucket catches stragglers.
      task_seconds_(registry.histogram(with_suffix(prefix, ".task_seconds"),
                                       0.0, 1.0, 50,
                                       /*deterministic=*/false)) {}

void ThreadPoolMetrics::on_post(std::size_t queue_depth) {
  queue_depth_max_.set_max(static_cast<double>(queue_depth));
}

void ThreadPoolMetrics::on_task_complete(double run_seconds) {
  tasks_.add(1);
  task_seconds_.add(run_seconds);
}

std::unique_ptr<ThreadPoolMetrics> make_pool_metrics(
    Registry* registry, std::string_view prefix) {
  if (registry == nullptr) return nullptr;
  return std::make_unique<ThreadPoolMetrics>(*registry, prefix);
}

}  // namespace piggyweb::obs

#include "obs/pool_metrics.h"

namespace piggyweb::obs {

namespace {
std::string with_suffix(std::string_view prefix, const char* suffix) {
  return std::string(prefix) + suffix;
}
}  // namespace

ThreadPoolMetrics::ThreadPoolMetrics(Registry& registry,
                                     std::string_view prefix)
    : tasks_(registry.counter(with_suffix(prefix, ".tasks"),
                              /*deterministic=*/false)),
      handoffs_(registry.counter(with_suffix(prefix, ".handoffs"),
                                 /*deterministic=*/false)),
      queue_depth_max_(registry.gauge(with_suffix(prefix, ".queue_depth_max"),
                                      /*deterministic=*/false)),
      queue_depth_(registry.gauge(with_suffix(prefix, ".queue_depth"),
                                  /*deterministic=*/false)),
      // Log-bucketed: task grain ranges from microsecond no-ops in tests
      // to multi-second shard scans, and the default 1 µs .. 100 s layout
      // covers both with ~33% relative bucket error.
      task_seconds_(
          registry.log_histogram(with_suffix(prefix, ".task_seconds"))),
      queue_seconds_(
          registry.log_histogram(with_suffix(prefix, ".queue_seconds"))),
      idle_seconds_(
          registry.log_histogram(with_suffix(prefix, ".idle_seconds"))) {}

void ThreadPoolMetrics::on_post(std::size_t queue_depth) {
  queue_depth_.set(static_cast<double>(queue_depth));
  queue_depth_max_.set_max(static_cast<double>(queue_depth));
}

void ThreadPoolMetrics::on_task_complete(double run_seconds) {
  tasks_.add(1);
  task_seconds_.record(run_seconds);
}

void ThreadPoolMetrics::on_dequeue(double queue_seconds, bool handoff) {
  queue_seconds_.record(queue_seconds);
  if (handoff) handoffs_.add(1);
}

void ThreadPoolMetrics::on_worker_idle(double idle_seconds) {
  idle_seconds_.record(idle_seconds);
}

std::unique_ptr<ThreadPoolMetrics> make_pool_metrics(
    Registry* registry, std::string_view prefix) {
  if (registry == nullptr) return nullptr;
  return std::make_unique<ThreadPoolMetrics>(*registry, prefix);
}

}  // namespace piggyweb::obs

// obs::LogHistogram — HDR-style log-bucketed histogram for latency-shaped
// distributions (queue waits, task run times, per-stripe contention),
// where interesting values span four or more orders of magnitude and the
// tail matters more than the mean.
//
// Layout: `buckets_per_decade` geometrically spaced buckets per factor of
// ten between `lo` and `hi`, plus an underflow bucket (x < lo, including
// zero and negatives) and an overflow bucket (x >= hi). Bucket edges are
// fixed at construction, so two histograms with the same (lo, hi,
// buckets_per_decade) merge bucket-wise by addition — the same
// associative, grouping-independent composition the Registry relies on
// for per-shard accumulation.
//
// Recording is lock-free: one relaxed fetch_add on the bucket counter
// plus relaxed CAS loops for sum/min/max. There is no per-histogram
// mutex, so worker threads recording into a shared histogram never
// serialize against each other or against snapshot readers. Reads
// (percentile(), snapshot helpers) are racy-by-design while writers are
// active; call them after the measured phase quiesced, which is when
// RunScope takes its snapshot.
//
// percentile(q) returns the upper edge of the bucket holding the q-th
// ranked sample, clamped to the observed max — the standard HDR
// convention: the reported quantile is an upper bound with relative
// error bounded by one bucket width (~ 10^(1/buckets_per_decade) - 1).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace piggyweb::obs {

class LogHistogram {
 public:
  // Requires 0 < lo < hi and buckets_per_decade >= 1. The default
  // (1 microsecond .. 100 seconds at 8 buckets/decade = 64 buckets)
  // suits seconds-valued timing metrics.
  explicit LogHistogram(double lo = 1e-6, double hi = 1e2,
                        std::size_t buckets_per_decade = 8);

  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  // Record one sample. Thread-safe and lock-free.
  void record(double x);

  // Bucket-wise merge; layouts must match exactly. Safe against
  // concurrent record() on either side (totals remain exact).
  void merge_from(const LogHistogram& other);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // 0 when empty.
  double min() const;
  double max() const;
  double mean() const;

  // q in [0, 1]; q = 1 (and anything landing in the overflow bucket)
  // reports the observed max. Returns 0 when empty.
  double percentile(double q) const;

  // Layout accessors (stable after construction).
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t buckets_per_decade() const { return buckets_per_decade_; }
  // Interior bucket count, excluding underflow/overflow.
  std::size_t bucket_count() const { return edges_.size() - 1; }
  // Upper edge of interior bucket i, i.e. bucket i covers
  // [edge(i), edge(i+1)) with edge(0) == lo.
  double edge(std::size_t i) const { return edges_[i]; }
  // Counts in order [underflow, b0, ..., bn-1, overflow].
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::size_t bucket_index(double x) const;

  double lo_, hi_;
  std::size_t buckets_per_decade_;
  double inv_log_step_;         // buckets_per_decade / ln(10)
  std::vector<double> edges_;   // size bucket_count() + 1; edges_[0] == lo
  std::vector<std::atomic<std::uint64_t>> counts_;  // bucket_count() + 2
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

}  // namespace piggyweb::obs

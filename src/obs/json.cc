#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/expect.h"

namespace piggyweb::obs {

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::boolean() const {
  PW_EXPECT(type_ == Type::kBool);
  return bool_;
}

double Json::number() const {
  PW_EXPECT(type_ == Type::kNumber);
  return number_;
}

const std::string& Json::string() const {
  PW_EXPECT(type_ == Type::kString);
  return string_;
}

Json& Json::push_back(Json value) {
  PW_EXPECT(type_ == Type::kArray);
  items_.push_back(std::move(value));
  return items_.back();
}

const std::vector<Json>& Json::items() const {
  PW_EXPECT(type_ == Type::kArray);
  return items_;
}

Json& Json::set(std::string key, Json value) {
  PW_EXPECT(type_ == Type::kObject);
  for (auto& [name, member] : members_) {
    if (name == key) {
      member = std::move(value);
      return member;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return members_.back().second;
}

const Json* Json::find(std::string_view key) const {
  PW_EXPECT(type_ == Type::kObject);
  for (const auto& [name, member] : members_) {
    if (name == key) return &member;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  PW_EXPECT(type_ == Type::kObject);
  return members_;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.number_ == b.number_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.items_ == b.items_;
    case Json::Type::kObject:
      return a.members_ == b.members_;
  }
  return false;
}

void append_json_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void append_number(std::string& out, double value, bool integer) {
  char buf[40];
  if (integer && std::nearbyint(value) == value &&
      std::fabs(value) < 9.2e18) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  } else if (std::isfinite(value)) {
    // Shortest representation that round-trips a double.
    std::snprintf(buf, sizeof buf, "%.17g", value);
    double reparsed = 0;
    for (int precision = 1; precision < 17; ++precision) {
      char trial[40];
      std::snprintf(trial, sizeof trial, "%.*g", precision, value);
      std::sscanf(trial, "%lf", &reparsed);
      if (reparsed == value) {
        std::memcpy(buf, trial, sizeof trial);
        break;
      }
    }
  } else {
    // JSON has no infinities/NaN; null is the conventional stand-in.
    std::snprintf(buf, sizeof buf, "null");
  }
  out += buf;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int levels) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, number_, integer_);
      break;
    case Type::kString:
      append_json_quoted(out, string_);
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_json_quoted(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return fail("bad literal");
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // Encode as UTF-8 (surrogate pairs are passed through as two
          // 3-byte sequences; nothing in this codebase emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') {
      if (!literal("null")) return false;
      out = Json();
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      out = Json(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      out = Json(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      out = Json::array();
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        Json item;
        if (!parse_value(item)) return false;
        out.push_back(std::move(item));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return consume(']');
      }
    }
    if (c == '{') {
      ++pos;
      out = Json::object();
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) return false;
        Json value;
        if (!parse_value(value)) return false;
        out.set(std::move(key), std::move(value));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return consume('}');
      }
    }
    // Number.
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    if (pos + 1 < text.size() && text[pos] == '0' && text[pos + 1] >= '0' &&
        text[pos + 1] <= '9') {
      return fail("leading zero");
    }
    bool integral = true;
    bool digits = false;
    while (pos < text.size()) {
      const char d = text[pos];
      if (d >= '0' && d <= '9') {
        digits = true;
        ++pos;
      } else if (d == '.' || d == 'e' || d == 'E' || d == '-' || d == '+') {
        integral = false;
        ++pos;
      } else {
        break;
      }
    }
    if (!digits) return fail("bad value");
    double value = 0;
    const std::string token(text.substr(start, pos - start));
    if (std::sscanf(token.c_str(), "%lf", &value) != 1) {
      return fail("bad number");
    }
    out = integral && std::fabs(value) < 9.2e18
              ? Json(static_cast<std::int64_t>(value))
              : Json(value);
    return true;
  }
};

}  // namespace

std::optional<Json> parse_json(std::string_view text, std::string* error) {
  Parser parser{text, 0, {}};
  Json value;
  if (!parser.parse_value(value)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    parser.fail("trailing garbage");
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  return value;
}

}  // namespace piggyweb::obs

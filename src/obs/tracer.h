// obs::Tracer — scoped trace spans emitting Chrome trace-event JSON
// (loadable in chrome://tracing or https://ui.perfetto.dev).
//
// Each thread appends to its own buffer, registered on first use, so
// instrumenting the parallel evaluator's worker lambdas never serializes
// them: the only shared lock is taken once per (thread, tracer) at
// registration and again at export time. Per-buffer appends lock a
// buffer-private mutex that only the owning thread and the exporter ever
// touch — uncontended during the run, and exactly what TSan needs to see
// to prove the export race-free.
//
// Instrumentation sites use the OBS_SPAN macro against the process-global
// tracer, which is null (a no-op) unless a run scope installs one:
//
//   void SimulationEngine::run() {
//     OBS_SPAN("engine.run");
//     ...
//   }
//
// Timestamps are steady-clock microseconds since tracer construction, so
// traces are wall-accurate but never bit-stable; nothing downstream diffs
// them (unlike registry snapshots).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/expect.h"

namespace piggyweb::obs {

class Json;

class Tracer {
 public:
  // Per-thread buffers stop growing at `max_events_per_thread`; events
  // beyond the cap are dropped (newest-lost — the flight recorder is
  // the keep-newest structure) and counted, so a long replay can leave
  // tracing on without unbounded memory. The default caps a buffer at
  // ~48 MB of events.
  static constexpr std::size_t kDefaultMaxEventsPerThread =
      std::size_t{1} << 20;

  explicit Tracer(
      std::size_t max_events_per_thread = kDefaultMaxEventsPerThread);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Microseconds since construction (steady clock).
  std::uint64_t now_us() const;

  // Record a completed span [start_us, start_us + dur_us) on the calling
  // thread's buffer.
  void complete(std::string name, std::uint64_t start_us,
                std::uint64_t dur_us);

  // Record an instant event at now.
  void instant(std::string name);

  std::size_t event_count() const;
  std::size_t thread_count() const;
  std::size_t max_events_per_thread() const { return max_events_; }
  // Events discarded because their thread's buffer hit the cap.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // {"traceEvents": [...], "displayTimeUnit": "ms"} — call after the
  // traced threads have quiesced (joined pools).
  Json chrome_trace() const;
  std::string chrome_trace_json() const;

  // Write chrome_trace_json() to `path`; false (with a message on stderr)
  // when the file cannot be written.
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    std::uint64_t ts_us;
    std::uint64_t dur_us;
    char phase;  // 'X' complete, 'i' instant
  };
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<Event> events PW_GUARDED_BY(mutex);
  };

  ThreadBuffer& local_buffer();

  const std::uint64_t id_;  // process-unique, never reused
  const std::chrono::steady_clock::time_point epoch_;
  const std::size_t max_events_;
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ PW_GUARDED_BY(mutex_);
};

// The flight recorder (obs/flight_recorder.h) also taps OBS_SPAN; the
// Span below reaches it through these forwarders so this header stays
// free of the flight-recorder definition.
class FlightRecorder;
FlightRecorder* global_flight_recorder();
void set_global_flight_recorder(FlightRecorder* recorder);
std::uint64_t flight_now_us(const FlightRecorder& recorder);
void flight_record(FlightRecorder& recorder, const char* name,
                   std::uint64_t start_us, std::uint64_t dur_us);

// RAII span: records [construction, destruction) on `tracer`'s calling
// thread, and on the global flight recorder's ring when one is
// installed; with neither active it is a no-op. When both are active
// timestamps use the tracer's epoch (the two are constructed together
// by RunScope, so the bases agree to within microseconds).
class Span {
 public:
  Span(Tracer* tracer, const char* name)
      : tracer_(tracer), recorder_(global_flight_recorder()), name_(name) {
    if (tracer_ != nullptr) {
      start_us_ = tracer_->now_us();
    } else if (recorder_ != nullptr) {
      start_us_ = flight_now_us(*recorder_);
    }
  }
  ~Span() { end(); }
  // Close the span before scope exit; later end()s and the destructor
  // become no-ops.
  void end() {
    if (tracer_ != nullptr) {
      const auto dur_us = tracer_->now_us() - start_us_;
      tracer_->complete(name_, start_us_, dur_us);
      if (recorder_ != nullptr) {
        flight_record(*recorder_, name_, start_us_, dur_us);
      }
    } else if (recorder_ != nullptr) {
      flight_record(*recorder_, name_, start_us_,
                    flight_now_us(*recorder_) - start_us_);
    }
    tracer_ = nullptr;
    recorder_ = nullptr;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  FlightRecorder* recorder_;
  const char* name_;
  std::uint64_t start_us_ = 0;
};

// Process-global tracer. Null (the default) disables all spans;
// obs::RunScope installs/uninstalls it around a run.
Tracer* global_tracer();
void set_global_tracer(Tracer* tracer);

#define PW_OBS_CONCAT2(a, b) a##b
#define PW_OBS_CONCAT(a, b) PW_OBS_CONCAT2(a, b)

// Span over the enclosing scope against the global tracer (no-op when
// tracing is disabled).
#define OBS_SPAN(name)                                    \
  ::piggyweb::obs::Span PW_OBS_CONCAT(obs_span_, __LINE__)( \
      ::piggyweb::obs::global_tracer(), (name))

}  // namespace piggyweb::obs

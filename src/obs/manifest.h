// Per-run observability scope and the run manifest.
//
// RunScope is the single object a binary constructs after parsing
// --metrics-out= / --trace-out=: while alive it installs the process-global
// registry/tracer (the null-sink default stays in place when both flags are
// empty, so untraced runs pay one pointer load per instrumentation site),
// and finish() — called by the destructor if not called explicitly —
// writes the Chrome trace and a single JSON manifest:
//
//   {
//     "piggyweb_manifest": 1,
//     "name": "<run name>",
//     "argv": ["--scale=0.3", ...],          // config echo
//     "wall_seconds": 1.23,
//     "cpu_seconds": 1.19,
//     "metrics": { "counters": [...], "gauges": [...], "histograms": [...] },
//     ... note()-added sections ...
//   }
//
// bench_common and cli_common wrap the flag parsing for the two flag
// styles; the manifest format lives here so both emit the same schema and
// piggyweb_tracecheck can lint either.
#pragma once

#include <chrono>
#include <ctime>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace piggyweb::obs {

// Wall (steady) and CPU (std::clock) time since construction.
class RunTimer {
 public:
  RunTimer()
      : wall_start_(std::chrono::steady_clock::now()),
        cpu_start_(std::clock()) {}

  double wall_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start_)
        .count();
  }
  double cpu_seconds() const {
    return static_cast<double>(std::clock() - cpu_start_) /
           static_cast<double>(CLOCKS_PER_SEC);
  }

 private:
  std::chrono::steady_clock::time_point wall_start_;
  std::clock_t cpu_start_;
};

// Assemble a manifest document (shared by RunScope and the tests, so the
// schema round-trip is tested against the production builder).
Json build_run_manifest(const std::string& name,
                        const std::vector<std::string>& argv_echo,
                        double wall_seconds, double cpu_seconds,
                        const Registry& registry, const Json& extra);

// Structural validation of a manifest document; appends human-readable
// problems to `problems` and returns true when none were found.
bool validate_run_manifest(const Json& manifest,
                           std::vector<std::string>& problems);

class RunScope {
 public:
  struct Options {
    std::string run_name;
    std::string metrics_path;  // empty = manifest disabled
    std::string trace_path;    // empty = tracing disabled
    // Prometheus text exposition of the metrics registry; empty = off.
    // Enables the registry even when metrics_path is empty.
    std::string prom_path;
    // Flight-recorder ring dump (Chrome-trace JSON): written here on
    // finish() and, via the fatal-signal handler, on a crash or
    // PW_EXPECT failure mid-run. Empty = recorder disabled.
    std::string flight_recorder_path;
    std::vector<std::string> argv;
  };

  explicit RunScope(Options options);
  ~RunScope();
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

  bool metrics_enabled() const {
    return !options_.metrics_path.empty() || !options_.prom_path.empty();
  }
  bool trace_enabled() const { return !options_.trace_path.empty(); }
  bool flight_recorder_enabled() const {
    return !options_.flight_recorder_path.empty();
  }

  Registry& registry() { return registry_; }
  Tracer& tracer() { return tracer_; }
  FlightRecorder& flight_recorder() { return flight_recorder_; }

  // Attach an extra top-level manifest entry (e.g. a result section).
  void note(std::string key, Json value);

  // Uninstall the global sinks and write the artifacts (manifest only
  // when metrics are enabled, trace only when tracing is). Idempotent;
  // returns false when any write failed.
  bool finish();

 private:
  Options options_;
  Registry registry_;
  Tracer tracer_;
  FlightRecorder flight_recorder_;
  RunTimer timer_;
  Json extra_ = Json::object();
  bool finished_ = false;
};

}  // namespace piggyweb::obs

#include "obs/log_histogram.h"

#include <cmath>
#include <limits>

#include "util/expect.h"

namespace piggyweb::obs {

namespace {

void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

LogHistogram::LogHistogram(double lo, double hi,
                           std::size_t buckets_per_decade)
    : lo_(lo), hi_(hi), buckets_per_decade_(buckets_per_decade) {
  PW_EXPECT(lo > 0.0 && hi > lo && buckets_per_decade >= 1);
  inv_log_step_ =
      static_cast<double>(buckets_per_decade) / std::log(10.0);
  const double decades = std::log10(hi / lo);
  const auto interior = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(buckets_per_decade) -
                1e-9));
  PW_EXPECT(interior >= 1);
  edges_.reserve(interior + 1);
  for (std::size_t i = 0; i < interior; ++i) {
    edges_.push_back(
        lo * std::pow(10.0, static_cast<double>(i) /
                                static_cast<double>(buckets_per_decade)));
  }
  // The last interior bucket is truncated at hi: values >= hi overflow.
  edges_.push_back(hi);
  counts_ = std::vector<std::atomic<std::uint64_t>>(interior + 2);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::size_t LogHistogram::bucket_index(double x) const {
  if (!(x >= lo_)) return 0;  // underflow; NaN lands here too
  if (x >= hi_) return bucket_count() + 1;
  const double t = std::log(x / lo_) * inv_log_step_;
  std::size_t i = t <= 0.0 ? 0 : static_cast<std::size_t>(t);
  if (i >= bucket_count()) i = bucket_count() - 1;
  // Guard against the float log landing one edge off.
  if (x < edges_[i] && i > 0) {
    --i;
  } else if (x >= edges_[i + 1] && i + 1 < bucket_count()) {
    ++i;
  }
  return i + 1;  // counts_ slot 0 is the underflow bucket
}

void LogHistogram::record(double x) {
  counts_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  atomic_min(min_, x);
  atomic_max(max_, x);
}

void LogHistogram::merge_from(const LogHistogram& other) {
  PW_EXPECT(lo_ == other.lo_ && hi_ == other.hi_ &&
            buckets_per_decade_ == other.buckets_per_decade_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  atomic_add(sum_, other.sum_.load(std::memory_order_relaxed));
  if (other.count() > 0) {
    atomic_min(min_, other.min_.load(std::memory_order_relaxed));
    atomic_max(max_, other.max_.load(std::memory_order_relaxed));
  }
}

double LogHistogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double LogHistogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double LogHistogram::mean() const {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double LogHistogram::percentile(double q) const {
  const auto total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 1-based rank of the requested sample.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (std::size_t slot = 0; slot < counts_.size(); ++slot) {
    cumulative += counts_[slot].load(std::memory_order_relaxed);
    if (cumulative < rank) continue;
    if (slot == 0) {
      // Underflow: every sample here is < lo.
      const double upper = lo_;
      return upper < max() ? upper : max();
    }
    if (slot == counts_.size() - 1) return max();  // overflow
    const double upper = edges_[slot];  // interior bucket slot-1
    return upper < max() ? upper : max();
  }
  return max();
}

std::vector<std::uint64_t> LogHistogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace piggyweb::obs

// obs::Registry — a thread-safe registry of named counters, gauges and
// histograms, the metric substrate behind --metrics-out.
//
// Contract:
//   * registration (counter()/gauge()/histogram()) locks the registry map
//     once and returns a stable reference; the hot-path update methods on
//     the returned metric are lock-free (counters, gauges) or take one
//     uncontended per-metric mutex (histograms);
//   * every metric carries a `deterministic` bit. Deterministic metrics
//     (engine/evaluator counters derived from simulation results) must be
//     bit-identical across thread counts; timing metrics (thread-pool
//     queue depth, task latencies, shard counts) are flagged
//     non-deterministic and excluded from cross-run snapshot diffs
//     (piggyweb_tracecheck --same-metrics-as);
//   * per-shard accumulation composes through merge_from(): counters and
//     histogram buckets add, gauges take the max, so the merged snapshot
//     is independent of merge grouping (the tests_obs associativity
//     property);
//   * snapshots iterate names in sorted order — identical contents always
//     serialize to identical bytes.
//
// The process-global registry pointer (global_metrics()) is the null sink:
// it stays null unless a run scope installs one, and every instrumentation
// site checks it once per run, so disabled overhead is a pointer load.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/log_histogram.h"
#include "util/expect.h"
#include "util/stats.h"

namespace piggyweb::obs {

class Json;

// Monotone event count. Updates are relaxed atomics: totals are exact,
// cross-metric ordering is not promised.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written level with high-watermark updates; merge takes the max
// (the only merge that makes sense for watermarks like queue depth).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void set_max(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// util::Histogram + util::RunningStats behind one mutex. Fine for
// span/task-grained events; not meant for per-request hot loops.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t buckets);

  void add(double x);
  void merge_from(const HistogramMetric& other);

  // Copies taken under the lock, safe while writers are active.
  util::RunningStats stats() const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t buckets() const { return buckets_; }
  Json snapshot_buckets() const;  // [underflow, b0, ..., bn-1, overflow]

 private:
  double lo_, hi_;
  std::size_t buckets_;
  mutable std::mutex mutex_;
  util::Histogram histogram_ PW_GUARDED_BY(mutex_);
  util::RunningStats stats_ PW_GUARDED_BY(mutex_);
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create by name. Re-registering an existing name returns the
  // same metric; a kind mismatch is a contract failure. `deterministic`
  // is fixed at first registration.
  Counter& counter(std::string_view name, bool deterministic = true);
  Gauge& gauge(std::string_view name, bool deterministic = true);
  HistogramMetric& histogram(std::string_view name, double lo, double hi,
                             std::size_t buckets,
                             bool deterministic = false);
  // Log-bucketed latency histogram (obs::LogHistogram): lock-free
  // recording, p50/p90/p99/p99.9/max in snapshots and Prometheus
  // export. The default layout spans 1 µs .. 100 s. Timing metrics are
  // non-deterministic by nature, hence the default.
  LogHistogram& log_histogram(std::string_view name, double lo = 1e-6,
                              double hi = 1e2,
                              std::size_t buckets_per_decade = 8,
                              bool deterministic = false);

  // Merge another registry's metrics into this one: counters add, gauges
  // max, histograms (same bucket layout required) add bucket-wise.
  // Addition and max are commutative and associative, so any merge tree
  // over per-shard registries yields the same totals.
  void merge_from(const Registry& other);

  std::size_t metric_count() const;

  // Snapshot object {"counters": [...], "gauges": [...],
  // "histograms": [...]}, each entry {"name", "value"/..., and
  // "deterministic"}; arrays sorted by name.
  Json snapshot() const;
  std::string to_json(int indent = 2) const;

  // Prometheus text exposition (metric names have [^a-zA-Z0-9_:] mapped
  // to '_'); histograms emit the conventional _bucket/_sum/_count series.
  std::string to_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kLogHistogram };
  struct Entry {
    Kind kind;
    bool deterministic;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    std::unique_ptr<LogHistogram> log_histogram;
  };

  mutable std::mutex mutex_;
  // Sorted map: snapshot order == name order, deterministic by design.
  std::map<std::string, Entry, std::less<>> entries_ PW_GUARDED_BY(mutex_);
};

// Process-global metrics sink. Null (the default) disables all metric
// publication; obs::RunScope installs/uninstalls it around a run.
Registry* global_metrics();
void set_global_metrics(Registry* registry);

}  // namespace piggyweb::obs

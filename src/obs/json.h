// Minimal JSON value tree shared by every observability emitter and
// consumer: registry snapshots, Chrome trace output, run manifests, the
// machine-readable eval report, and the tracecheck linter. Objects keep
// insertion order and the writer is deterministic, so identical inputs
// always serialize to identical bytes — the property the cross-thread
// snapshot comparisons rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace piggyweb::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(std::int64_t value)
      : type_(Type::kNumber),
        number_(static_cast<double>(value)),
        integer_(true) {}
  Json(std::uint64_t value)
      : type_(Type::kNumber),
        number_(static_cast<double>(value)),
        integer_(true) {}
  Json(int value) : Json(static_cast<std::int64_t>(value)) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : Json(std::string(value)) {}

  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Accessors abort (contract failure) on type mismatch.
  bool boolean() const;
  double number() const;
  const std::string& string() const;

  // Arrays.
  Json& push_back(Json value);
  const std::vector<Json>& items() const;

  // Objects: set() inserts or overwrites, preserving first-insert order;
  // find() returns nullptr when the key is absent.
  Json& set(std::string key, Json value);
  const Json* find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  // Deterministic writer. indent == 0 emits the compact one-line form;
  // indent > 0 pretty-prints with that many spaces per level. Numbers
  // constructed from integer types print without a decimal point (exact
  // for magnitudes below 2^53, far beyond any counter here).
  std::string dump(int indent = 0) const;

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  bool integer_ = false;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

// Append `s` as a quoted JSON string (escaping ", \, and control chars).
void append_json_quoted(std::string& out, std::string_view s);

// Strict parser for one JSON document (trailing whitespace allowed,
// trailing garbage is an error). On failure returns nullopt and, when
// `error` is non-null, stores a message with the byte offset.
std::optional<Json> parse_json(std::string_view text,
                               std::string* error = nullptr);

}  // namespace piggyweb::obs

// obs::FlightRecorder — a bounded per-thread ring of the most recent
// OBS_SPAN completions, kept so a crashing or wedged run can explain
// its last milliseconds.
//
// Unlike obs::Tracer (which keeps every span for a full post-run export
// and is bounded only by its drop cap), the flight recorder is a fixed
// budget: each thread owns a ring of `capacity_per_thread` slots, new
// spans overwrite the oldest, and the overwrite count is exported as
// the drop counter. Entries store the span name as a `const char*` —
// OBS_SPAN names are string literals, so recording allocates nothing
// and the crash path can read them safely.
//
// Dump paths, in decreasing orderliness:
//   * RunScope::finish() writes chrome_trace_json() to
//     --flight-recorder=FILE on every normal exit;
//   * install_crash_handler(path) arms fatal-signal handlers (SIGSEGV,
//     SIGBUS, SIGFPE, SIGILL, and SIGABRT — which PW_EXPECT failures
//     reach via std::abort) that best-effort dump the global recorder
//     with dump_for_crash() and then re-raise with default disposition.
//
// dump_for_crash() stays on async-signal-safe ground where it matters:
// open/write/close only, fixed stack buffers, no allocation. Ring
// mutexes are try_lock'd; a ring whose owner died mid-append is
// skipped rather than deadlocking the handler.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/expect.h"

namespace piggyweb::obs {

class Json;

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity_per_thread = 4096);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Microseconds since construction (steady clock).
  std::uint64_t now_us() const;

  // Record a completed span on the calling thread's ring. `name` must
  // outlive the recorder (string literals do).
  void record(const char* name, std::uint64_t start_us,
              std::uint64_t dur_us);

  std::size_t capacity_per_thread() const { return capacity_; }
  std::size_t thread_count() const;
  // Lifetime record() calls across all rings.
  std::uint64_t recorded() const;
  // Entries overwritten because their ring was full.
  std::uint64_t dropped() const;
  // Entries currently held (= recorded - dropped).
  std::uint64_t retained() const;

  // Chrome trace-event export of the retained entries, oldest-first per
  // ring. Call from quiesced code (normal exits).
  Json chrome_trace() const;
  std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path) const;

  // Crash-path dump: writes the same Chrome-trace shape to `path` using
  // only async-signal-safe I/O. Rings that cannot be try_lock'd are
  // skipped. Returns false when the file cannot be opened.
  bool dump_for_crash(const char* path) const;

 private:
  struct Entry {
    const char* name;
    std::uint64_t ts_us;
    std::uint64_t dur_us;
  };
  struct Ring {
    // Slots are sized once here rather than by a post-construction
    // resize: the ring is born full-capacity, so no code path ever
    // touches `slots` outside its mutex.
    explicit Ring(std::size_t capacity)
        : slots(capacity, Entry{nullptr, 0, 0}) {}
    mutable std::mutex mutex;
    // size == capacity_, fixed at creation
    std::vector<Entry> slots PW_GUARDED_BY(mutex);
    // slot the next record overwrites
    std::size_t next PW_GUARDED_BY(mutex) = 0;
    // lifetime records into this ring
    std::uint64_t total PW_GUARDED_BY(mutex) = 0;
  };

  Ring& local_ring();
  // Append `ring`'s retained entries oldest-first to `out`.
  static void ordered_entries(const Ring& ring, std::vector<Entry>& out)
      PW_REQUIRES(ring.mutex);

  const std::uint64_t id_;  // process-unique, same scheme as Tracer
  const std::chrono::steady_clock::time_point epoch_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_ PW_GUARDED_BY(mutex_);
};

// Process-global flight recorder; null (the default) disables recording.
// obs::RunScope installs/uninstalls it around a run.
FlightRecorder* global_flight_recorder();
void set_global_flight_recorder(FlightRecorder* recorder);

// Arm fatal-signal handlers that dump the global flight recorder to
// `path` and re-raise. Idempotent; the latest path wins. An empty path
// disarms the dump (handlers stay installed but do nothing).
void install_crash_handler(const std::string& path);

}  // namespace piggyweb::obs

#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>

#include "obs/json.h"
#include "obs/tracer.h"
#include "util/expect.h"

namespace piggyweb::obs {

namespace {
std::atomic<std::uint64_t> g_next_recorder_id{1};
}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity_per_thread)
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity_per_thread) {
  PW_EXPECT(capacity_ >= 1);
}

std::uint64_t FlightRecorder::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count());
}

FlightRecorder::Ring& FlightRecorder::local_ring() {
  // Same registration scheme as Tracer::local_buffer: a thread_local
  // cache keyed by the recorder's process-unique id, so a new recorder
  // at a reused address never hits a stale cache.
  thread_local std::uint64_t cached_id = 0;
  thread_local Ring* cached_ring = nullptr;
  if (cached_id != id_) {
    auto ring = std::make_unique<Ring>(capacity_);
    cached_ring = ring.get();
    cached_id = id_;
    std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(std::move(ring));
  }
  return *cached_ring;
}

void FlightRecorder::record(const char* name, std::uint64_t start_us,
                            std::uint64_t dur_us) {
  auto& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.slots[ring.next] = Entry{name, start_us, dur_us};
  ring.next = (ring.next + 1) % capacity_;
  ++ring.total;
}

std::size_t FlightRecorder::thread_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rings_.size();
}

std::uint64_t FlightRecorder::recorded() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->total;
  }
  return total;
}

std::uint64_t FlightRecorder::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    if (ring->total > capacity_) total += ring->total - capacity_;
  }
  return total;
}

std::uint64_t FlightRecorder::retained() const {
  return recorded() - dropped();
}

void FlightRecorder::ordered_entries(const Ring& ring,
                                     std::vector<Entry>& out)
    PW_REQUIRES(ring.mutex) {
  const auto cap = ring.slots.size();
  if (ring.total >= cap) {
    // Full ring: the slot about to be overwritten is the oldest.
    for (std::size_t i = 0; i < cap; ++i) {
      out.push_back(ring.slots[(ring.next + i) % cap]);
    }
  } else {
    for (std::size_t i = 0; i < ring.total; ++i) {
      out.push_back(ring.slots[i]);
    }
  }
}

Json FlightRecorder::chrome_trace() const {
  auto events = Json::array();
  std::vector<Entry> entries;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
    const auto& ring = *rings_[tid];
    entries.clear();
    {
      std::lock_guard<std::mutex> ring_lock(ring.mutex);
      ordered_entries(ring, entries);
    }
    for (const auto& entry : entries) {
      auto item = Json::object();
      item.set("name", entry.name == nullptr ? "" : entry.name);
      item.set("cat", "piggyweb");
      item.set("ph", "X");
      item.set("ts", entry.ts_us);
      item.set("dur", entry.dur_us);
      item.set("pid", 1);
      item.set("tid", tid);
      events.push_back(std::move(item));
    }
  }
  auto out = Json::object();
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", "ms");
  return out;
}

std::string FlightRecorder::chrome_trace_json() const {
  return chrome_trace().dump(1);
}

bool FlightRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot write flight recording to %s\n",
                 path.c_str());
    return false;
  }
  out << chrome_trace_json();
  return out.good();
}

bool FlightRecorder::dump_for_crash(const char* path) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const auto emit = [fd](const char* data, std::size_t size) {
    std::size_t done = 0;
    while (done < size) {
      const auto n = ::write(fd, data + done, size - done);
      if (n <= 0) return;
      done += static_cast<std::size_t>(n);
    }
  };
  const auto emit_str = [&emit](const char* s) {
    std::size_t n = 0;
    while (s[n] != '\0') ++n;
    emit(s, n);
  };
  emit_str("{\"traceEvents\":[");
  bool first = true;
  char buf[320];
  // try_lock everywhere: a thread that died holding a ring lock must
  // not deadlock the crash handler; its ring is simply omitted.
  std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
  if (lock.owns_lock()) {
    for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
      const auto& ring = *rings_[tid];
      std::unique_lock<std::mutex> ring_lock(ring.mutex, std::try_to_lock);
      if (!ring_lock.owns_lock()) continue;
      const auto cap = ring.slots.size();
      const auto count = ring.total >= cap ? cap : ring.total;
      const auto oldest = ring.total >= cap ? ring.next : 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto& entry = ring.slots[(oldest + i) % cap];
        // OBS_SPAN names are plain-identifier string literals, so no
        // JSON escaping is needed (enforced by convention, not here —
        // this path cannot allocate).
        const int n = std::snprintf(
            buf, sizeof buf,
            "%s{\"name\":\"%s\",\"cat\":\"piggyweb\",\"ph\":\"X\","
            "\"ts\":%llu,\"dur\":%llu,\"pid\":1,\"tid\":%zu}",
            first ? "" : ",", entry.name == nullptr ? "" : entry.name,
            static_cast<unsigned long long>(entry.ts_us),
            static_cast<unsigned long long>(entry.dur_us), tid);
        if (n > 0) {
          emit(buf, static_cast<std::size_t>(n) < sizeof buf
                        ? static_cast<std::size_t>(n)
                        : sizeof buf - 1);
        }
        first = false;
      }
    }
  }
  emit_str("],\"displayTimeUnit\":\"ms\"}\n");
  ::close(fd);
  return true;
}

namespace {

std::atomic<FlightRecorder*> g_flight_recorder{nullptr};

// Crash-dump destination for the signal handler; fixed storage so the
// handler never touches std::string.
char g_crash_path[512] = {0};
std::atomic<bool> g_handlers_armed{false};

void crash_dump_handler(int sig) {
  FlightRecorder* recorder = global_flight_recorder();
  if (recorder != nullptr && g_crash_path[0] != '\0') {
    recorder->dump_for_crash(g_crash_path);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

FlightRecorder* global_flight_recorder() {
  return g_flight_recorder.load(std::memory_order_acquire);
}

void set_global_flight_recorder(FlightRecorder* recorder) {
  g_flight_recorder.store(recorder, std::memory_order_release);
}

void install_crash_handler(const std::string& path) {
  std::size_t n = path.size();
  if (n >= sizeof g_crash_path) n = sizeof g_crash_path - 1;
  for (std::size_t i = 0; i < n; ++i) g_crash_path[i] = path[i];
  g_crash_path[n] = '\0';
  if (path.empty() || g_handlers_armed.exchange(true)) return;
  // SIGABRT covers PW_EXPECT/PW_ENSURE failures (contract_failure calls
  // std::abort); the rest are the classic fatal faults.
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    std::signal(sig, crash_dump_handler);
  }
}

std::uint64_t flight_now_us(const FlightRecorder& recorder) {
  return recorder.now_us();
}

void flight_record(FlightRecorder& recorder, const char* name,
                   std::uint64_t start_us, std::uint64_t dur_us) {
  recorder.record(name, start_us, dur_us);
}

}  // namespace piggyweb::obs

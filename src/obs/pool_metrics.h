// Bridges util::ThreadPool's observer hook into a Registry: a queue-depth
// high-watermark gauge, a completed-task counter, and a task wall-time
// histogram. All three are timing-dependent and therefore registered
// non-deterministic — they vary with thread count and scheduling and are
// excluded from cross-run snapshot diffs.
//
//   obs::ThreadPoolMetrics metrics(registry, "parallel_eval.pool");
//   util::ThreadPool pool(threads, &metrics);
//
// Metric names under `prefix`: <prefix>.tasks, <prefix>.queue_depth_max,
// <prefix>.task_seconds.
#pragma once

#include <memory>
#include <string_view>

#include "obs/registry.h"
#include "util/thread_pool.h"

namespace piggyweb::obs {

class ThreadPoolMetrics : public util::ThreadPoolObserver {
 public:
  explicit ThreadPoolMetrics(Registry& registry,
                             std::string_view prefix = "threadpool");

  void on_post(std::size_t queue_depth) override;
  void on_task_complete(double run_seconds) override;

 private:
  Counter& tasks_;
  Gauge& queue_depth_max_;
  HistogramMetric& task_seconds_;
};

// Convenience for pool creators: a null registry yields a null observer.
// Usage:
//   const auto metrics = obs::make_pool_metrics(obs::global_metrics(), "x");
//   util::ThreadPool pool(n, metrics.get());
std::unique_ptr<ThreadPoolMetrics> make_pool_metrics(Registry* registry,
                                                     std::string_view prefix);

}  // namespace piggyweb::obs

// Bridges util::ThreadPool's observer hook into a Registry — the
// wait-state profile of a pool: where time goes between posting a task
// and finishing it.
//
//   obs::ThreadPoolMetrics metrics(registry, "parallel_eval.pool");
//   util::ThreadPool pool(threads, &metrics);
//
// Metric names under `prefix`:
//   <prefix>.tasks            counter   completed tasks
//   <prefix>.handoffs         counter   dequeues that woke a sleeping worker
//   <prefix>.queue_depth_max  gauge     backlog high-watermark
//   <prefix>.queue_depth      gauge     backlog at the last post
//   <prefix>.task_seconds     log hist  task run time (p50/p99/... exported)
//   <prefix>.queue_seconds    log hist  enqueue→dequeue wait
//   <prefix>.idle_seconds     log hist  per-worker empty-queue waits
//
// Everything here is timing- and scheduling-dependent and therefore
// registered non-deterministic — excluded from cross-run snapshot diffs.
#pragma once

#include <memory>
#include <string_view>

#include "obs/registry.h"
#include "util/thread_pool.h"

namespace piggyweb::obs {

class ThreadPoolMetrics : public util::ThreadPoolObserver {
 public:
  explicit ThreadPoolMetrics(Registry& registry,
                             std::string_view prefix = "threadpool");

  void on_post(std::size_t queue_depth) override;
  void on_task_complete(double run_seconds) override;
  void on_dequeue(double queue_seconds, bool handoff) override;
  void on_worker_idle(double idle_seconds) override;

 private:
  Counter& tasks_;
  Counter& handoffs_;
  Gauge& queue_depth_max_;
  Gauge& queue_depth_;
  LogHistogram& task_seconds_;
  LogHistogram& queue_seconds_;
  LogHistogram& idle_seconds_;
};

// Convenience for pool creators: a null registry yields a null observer.
// Usage:
//   const auto metrics = obs::make_pool_metrics(obs::global_metrics(), "x");
//   util::ThreadPool pool(n, metrics.get());
std::unique_ptr<ThreadPoolMetrics> make_pool_metrics(Registry* registry,
                                                     std::string_view prefix);

}  // namespace piggyweb::obs

// Probability-based volumes (§3.3) with effectiveness thinning.
//
// volume(r) = { s : p(s|r) >= p_t }, built offline from pair counters over
// a training trace (the paper applied a single set of volumes for the
// duration of each log). Thinning drops implications whose predictions are
// almost always *redundant* — s was already in a predicted state when r
// fired — which shrinks piggyback messages and, per §3.3.2, restores the
// monotone precision/size trade-off. "Combined" volumes additionally drop
// pairs that do not share a 1-level directory prefix.
#pragma once

#include <vector>

#include "core/piggyback.h"
#include "util/flat_map.h"
#include "volume/pair_counter.h"

namespace piggyweb::trace {
class TraceView;
}

namespace piggyweb::volume {

struct ProbabilityVolumeConfig {
  double probability_threshold = 0.2;  // p_t
  // Drop implications with effective probability below this (0 = keep all).
  double effectiveness_threshold = 0.0;
  // Require r and s to share this directory-prefix level (0 = off). This is
  // the "combined" scheme when the pair counts themselves were unrestricted.
  int combine_prefix_level = 0;
  util::Seconds window = 300;          // T, used by the effectiveness pass
  std::size_t max_candidates = 200;
  // Hard cap on entries per volume, keeping the highest-probability ones
  // (a §5-style additional thinning technique; 0 = uncapped).
  std::size_t max_entries_per_volume = 0;
};

struct VolumeEntry {
  util::InternId resource;
  double probability;      // p(s|r)
  double effectiveness;    // effective probability (0 if pass skipped)
};

struct VolumeSetStats {
  std::size_t volumes = 0;            // resources with non-empty volumes
  std::size_t total_entries = 0;
  double avg_volume_size = 0;
  double self_fraction = 0;           // resources contained in own volume
  double symmetric_fraction = 0;      // entries (r,s) with s's volume ∋ r
  double avg_volumes_per_resource = 0;
};

// The offline-built volume table: resource id -> entries sorted by
// descending probability.
class ProbabilityVolumeSet {
 public:
  // Register a (non-empty) volume for resource r, assigning the next
  // dense volume id. Used by the builder and the serialization loader; a
  // second registration for the same resource replaces the entries but
  // keeps the id.
  void add_volume(util::InternId r, std::vector<VolumeEntry> entries);

  const std::vector<VolumeEntry>* volume_of(util::InternId r) const;
  core::VolumeId volume_id(util::InternId r) const;  // kNoVolume if none

  std::size_t volume_count() const { return id_of_.size(); }
  VolumeSetStats stats() const;

  // Iteration support for stats/tests.
  const util::FlatMap<util::InternId, std::vector<VolumeEntry>>& volumes()
      const {
    return volumes_;
  }

 private:
  util::FlatMap<util::InternId, std::vector<VolumeEntry>> volumes_;
  util::FlatMap<util::InternId, core::VolumeId> id_of_;
};

// Build volumes from counters. When config.effectiveness_threshold > 0 a
// second pass over `trace` measures, for every candidate implication
// (r -> s), how often r's prediction of s was new (s not predicted for
// that source within the last T seconds); entries whose effective
// probability (new predictions / c(r)) falls below the threshold are
// dropped.
ProbabilityVolumeSet build_probability_volumes(
    const trace::Trace& trace, const PairCounts& counts,
    const ProbabilityVolumeConfig& config);

// Batch-cursor variant: the effectiveness pass replays the view one
// bounded window at a time, so a streaming (mmap-backed) trace trains
// without materializing. Bit-identical to the Trace overload, which
// delegates here.
ProbabilityVolumeSet build_probability_volumes(
    trace::TraceView& view, const PairCounts& counts,
    const ProbabilityVolumeConfig& config);

// Provider adapter: candidates are the precomputed volume entries, best
// (highest-probability) first. Stateless per request.
class ProbabilityVolumes final : public core::VolumeProvider {
 public:
  ProbabilityVolumes(const ProbabilityVolumeSet* set,
                     std::size_t max_candidates)
      : set_(set), max_candidates_(max_candidates) {}

  core::VolumePrediction on_request(
      const core::VolumeRequest& request) override;

  // Reuses the candidate/probability vectors staged in `predictions`.
  void on_request_batch(
      std::span<const core::VolumeRequest> requests,
      std::vector<core::VolumePrediction>& predictions) override;

  std::size_t volume_count() const override { return set_->volume_count(); }
  const char* scheme_name() const override { return "probability"; }

 private:
  void predict_into(const core::VolumeRequest& request,
                    core::VolumePrediction& out) const;

  const ProbabilityVolumeSet* set_;
  std::size_t max_candidates_;
};

}  // namespace piggyweb::volume

#include "volume/sharded_pair_counter.h"

#include <algorithm>

#include "obs/pool_metrics.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "util/expect.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace piggyweb::volume {

ShardedPairCounterTable::ShardedPairCounterTable(std::size_t stripes)
    : stripes_(std::max<std::size_t>(1, stripes)),
      table_(std::make_unique<Stripe[]>(stripes_)) {}

ShardedPairCounterTable::Stripe& ShardedPairCounterTable::pair_stripe(
    std::uint64_t key) const {
  return table_[util::mix64(key) % stripes_];
}

ShardedPairCounterTable::Stripe& ShardedPairCounterTable::occurrence_stripe(
    util::InternId r) const {
  return table_[util::mix64(r) % stripes_];
}

void ShardedPairCounterTable::add_pair(util::InternId r, util::InternId s,
                                       std::uint64_t delta) {
  add_pair_key(PairCounts::key(r, s), delta);
}

std::unique_lock<std::mutex> ShardedPairCounterTable::lock_stripe(
    Stripe& stripe) PW_RETURNS_LOCK(stripe.mutex) {
  std::unique_lock<std::mutex> lock(stripe.mutex, std::try_to_lock);
  const bool contended = !lock.owns_lock();
  if (contended) lock.lock();
  ++stripe.lock_acquisitions;
  if (contended) ++stripe.lock_contended;
  return lock;
}

void ShardedPairCounterTable::add_pair_key(std::uint64_t key,
                                           std::uint64_t delta) {
  auto& stripe = pair_stripe(key);
  const auto lock = lock_stripe(stripe);
  stripe.pairs[key] += delta;
}

void ShardedPairCounterTable::add_pairs(
    std::span<const std::pair<std::uint64_t, std::uint64_t>> entries) {
  if (entries.empty()) return;
  // Sort entry indices by owning stripe, then sweep: one lock per touched
  // stripe per flush. Addition commutes, so the reordering within a
  // stripe cannot change the merged table.
  std::vector<std::pair<std::size_t, std::size_t>> order;
  order.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    order.emplace_back(util::mix64(entries[i].first) % stripes_, i);
  }
  std::sort(order.begin(), order.end());
  std::size_t i = 0;
  while (i < order.size()) {
    const auto stripe_index = order[i].first;
    auto& stripe = table_[stripe_index];
    const auto lock = lock_stripe(stripe);
    for (; i < order.size() && order[i].first == stripe_index; ++i) {
      const auto& [key, delta] = entries[order[i].second];
      stripe.pairs[key] += delta;
    }
  }
}

void ShardedPairCounterTable::add_occurrence(util::InternId r,
                                             std::uint64_t delta) {
  auto& stripe = occurrence_stripe(r);
  const auto lock = lock_stripe(stripe);
  stripe.occurrences[r] += delta;
}

std::uint64_t ShardedPairCounterTable::pair_count(util::InternId r,
                                                  util::InternId s) const {
  const auto key = PairCounts::key(r, s);
  auto& stripe = pair_stripe(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.pairs.find(key);
  return it == stripe.pairs.end() ? 0 : it->second;
}

std::uint64_t ShardedPairCounterTable::occurrences(util::InternId r) const {
  auto& stripe = occurrence_stripe(r);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.occurrences.find(r);
  return it == stripe.occurrences.end() ? 0 : it->second;
}

std::size_t ShardedPairCounterTable::counter_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < stripes_; ++i) {
    std::lock_guard<std::mutex> lock(table_[i].mutex);
    total += table_[i].pairs.size();
  }
  return total;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
ShardedPairCounterTable::pair_entries() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(counter_count());
  for (std::size_t i = 0; i < stripes_; ++i) {
    std::lock_guard<std::mutex> lock(table_[i].mutex);
    for (const auto& [key, count] : table_[i].pairs) {
      out.emplace_back(key, count);
    }
  }
  return out;
}

std::vector<std::uint64_t> ShardedPairCounterTable::occurrence_vector()
    const {
  util::InternId max_r = 0;
  bool any = false;
  for (std::size_t i = 0; i < stripes_; ++i) {
    std::lock_guard<std::mutex> lock(table_[i].mutex);
    for (const auto& [r, count] : table_[i].occurrences) {
      (void)count;
      if (!any || r > max_r) max_r = r;
      any = true;
    }
  }
  std::vector<std::uint64_t> out(any ? max_r + 1 : 0, 0);
  for (std::size_t i = 0; i < stripes_; ++i) {
    std::lock_guard<std::mutex> lock(table_[i].mutex);
    for (const auto& [r, count] : table_[i].occurrences) out[r] = count;
  }
  return out;
}

std::uint64_t ShardedPairCounterTable::lock_acquisitions() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < stripes_; ++i) {
    std::lock_guard<std::mutex> lock(table_[i].mutex);
    total += table_[i].lock_acquisitions;
  }
  return total;
}

std::uint64_t ShardedPairCounterTable::lock_contended() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < stripes_; ++i) {
    std::lock_guard<std::mutex> lock(table_[i].mutex);
    total += table_[i].lock_contended;
  }
  return total;
}

void ShardedPairCounterTable::publish_metrics(obs::Registry& registry,
                                              std::string_view prefix) const {
  const std::string base(prefix);
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::uint64_t occupancy_max = 0;
  std::uint64_t entries_total = 0;
  // Contended-acquisition counts per stripe: lo=1 puts zero-contention
  // stripes in the underflow bucket, and 4 buckets/decade resolves a
  // hot stripe from the pack up to 10^9 acquisitions.
  auto& per_stripe = registry.log_histogram(base + ".stripe_contended", 1.0,
                                            1e9, 4,
                                            /*deterministic=*/false);
  for (std::size_t i = 0; i < stripes_; ++i) {
    std::lock_guard<std::mutex> lock(table_[i].mutex);
    acquisitions += table_[i].lock_acquisitions;
    contended += table_[i].lock_contended;
    per_stripe.record(static_cast<double>(table_[i].lock_contended));
    const std::uint64_t entries =
        table_[i].pairs.size() + table_[i].occurrences.size();
    entries_total += entries;
    if (entries > occupancy_max) occupancy_max = entries;
  }
  constexpr bool kDet = false;
  registry.counter(base + ".lock_acquisitions", kDet).add(acquisitions);
  registry.counter(base + ".lock_contended", kDet).add(contended);
  registry.gauge(base + ".stripes", kDet)
      .set_max(static_cast<double>(stripes_));
  registry.gauge(base + ".occupancy_max", kDet)
      .set_max(static_cast<double>(occupancy_max));
  const double mean =
      static_cast<double>(entries_total) / static_cast<double>(stripes_);
  // max/mean entries per stripe: 1.0 is a perfectly balanced table, and
  // anything far above it says the hash is clumping keys onto few locks.
  registry.gauge(base + ".occupancy_imbalance", kDet)
      .set_max(mean > 0.0 ? static_cast<double>(occupancy_max) / mean : 0.0);
}

PairCounts ShardedPairCounterTable::to_pair_counts() const {
  PairCounts counts;
  counts.c_r_ = occurrence_vector();
  const auto entries = pair_entries();
  counts.pairs_.reserve(entries.size());
  for (const auto& [key, count] : entries) {
    counts.pairs_.emplace(key, PairCount{count, 0});
  }
  return counts;
}

// ---------------------------------------------------------------------------
// ParallelPairCounterBuilder

namespace {

// One pair's first co-occurrence within one source: enough, combined with
// the ascending-source merge, to reconstruct the serial builder's
// cr_at_creation (= qualifying r-occurrences processed before the counter
// was created, in source-grouped order).
struct Creation {
  std::uint64_t key;
  std::uint64_t local_before;  // qualifying r-occurrences earlier in source
};

struct SourceLog {
  std::vector<Creation> creations;
  std::vector<std::pair<util::InternId, std::uint64_t>> local_cr;
};

struct LocalPair {
  std::uint64_t count = 0;
  std::uint64_t local_before = 0;
};

}  // namespace

ParallelPairCounterBuilder::ParallelPairCounterBuilder(
    const PairCounterConfig& config, std::size_t threads)
    : config_(config),
      threads_(threads == 0 ? util::ThreadPool::hardware_threads()
                            : threads) {
  PW_EXPECT(config.window > 0);
  PW_EXPECT(config.sample_threshold > 0);
}

PairCounts ParallelPairCounterBuilder::build(
    const trace::Trace& trace, std::uint64_t min_resource_count) {
  const auto& requests = trace.requests();
  PW_EXPECT(std::is_sorted(requests.begin(), requests.end(),
                           [](const trace::Request& a,
                              const trace::Request& b) {
                             return a.time < b.time;
                           }));
  PairObservations observations;
  observations.observe_window(requests);
  return build(observations, util::StringTableView(trace.paths()),
               min_resource_count);
}

PairCounts ParallelPairCounterBuilder::build(
    const PairObservations& observations, util::StringTableView paths,
    std::uint64_t min_resource_count) {
  if (threads_ <= 1 || config_.sample_counters) {
    return PairCounterBuilder(config_).build(observations, paths,
                                             min_resource_count);
  }
  OBS_SPAN("pair_counter.parallel_build");

  const auto pool_metrics =
      obs::make_pool_metrics(obs::global_metrics(), "pair_counter.pool");
  util::ThreadPool pool(threads_, pool_metrics.get());

  // Popularity for the min-count cut, padded to the path-table size so
  // c_r_ matches the serial builder's shape.
  auto popularity = observations.popularity();
  if (popularity.size() < paths.size()) popularity.resize(paths.size(), 0);
  const auto path_count = popularity.size();

  // The observation log's per-source slices inherit the trace's time
  // order, so each slice is exactly the serial builder's source slice.
  const auto source_count = observations.source_count();

  const auto prefix_of = [&](util::InternId path) {
    return util::directory_prefix(paths.str(path),
                                  config_.restrict_prefix_level);
  };

  ShardedPairCounterTable table;
  std::vector<SourceLog> logs(source_count);

  // Workers own interleaved source slices (round-robin keeps the heavy
  // sources spread out); all cross-worker output is either the commutative
  // sharded table or the per-source logs, so results are independent of
  // scheduling.
  util::parallel_shards(
      pool, pool.thread_count(), [&](std::size_t worker) {
        OBS_SPAN("pair_counter.worker");
        // Per-worker scratch: clear() keeps the allocation, so each source
        // reuses the same flat tables instead of re-bucketing node maps.
        util::FlatMap<util::InternId, std::uint64_t> local_cr;
        util::FlatMap<std::uint64_t, LocalPair> local_pairs;
        std::vector<util::InternId> successors;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> flush;
        for (std::size_t src = worker; src < source_count;
             src += pool.thread_count()) {
          const auto slice = observations.slice(src);
          if (slice.empty()) continue;
          local_cr.clear();
          local_pairs.clear();
          for (std::size_t i = 0; i < slice.size(); ++i) {
            const auto& ri = slice[i];
            const auto r = ri.path;
            if (popularity[r] < min_resource_count) continue;
            const auto cr_now = ++local_cr[r];

            successors.clear();
            for (std::size_t j = i + 1; j < slice.size(); ++j) {
              const auto& rj = slice[j];
              if (rj.time - ri.time > config_.window) break;
              const auto s = rj.path;
              if (popularity[s] < min_resource_count) continue;
              if (std::find(successors.begin(), successors.end(), s) !=
                  successors.end()) {
                continue;
              }
              successors.push_back(s);
            }

            for (const auto s : successors) {
              if (config_.restrict_prefix_level > 0 &&
                  prefix_of(r) != prefix_of(s)) {
                continue;
              }
              const auto key = PairCounts::key(r, s);
              auto [it, created] =
                  local_pairs.try_emplace(key, LocalPair{0, cr_now - 1});
              (void)created;
              ++it->second.count;
            }
          }
          auto& log = logs[src];
          log.creations.reserve(local_pairs.size());
          flush.clear();
          flush.reserve(local_pairs.size());
          for (const auto& [key, pair] : local_pairs) {
            flush.emplace_back(key, pair.count);
            log.creations.push_back({key, pair.local_before});
          }
          table.add_pairs(flush);
          log.local_cr.assign(local_cr.begin(), local_cr.end());
        }
      });

  if (auto* metrics = obs::global_metrics(); metrics != nullptr) {
    table.publish_metrics(*metrics, "pair_counter.stripes");
  }

  // Sequential merge in ascending source order — the serial builder's
  // iteration order — to reconstruct cr_at_creation: the first source
  // observing a pair creates its counter, at the global qualifying r-count
  // reached just before that observation.
  PairCounts counts;
  counts.c_r_.assign(path_count, 0);
  const auto entries = table.pair_entries();
  util::FlatMap<std::uint64_t, std::uint64_t> created_at(entries.size());
  for (std::size_t src = 0; src < source_count; ++src) {
    for (const auto& creation : logs[src].creations) {
      const auto r = static_cast<util::InternId>(creation.key >> 32);
      created_at.try_emplace(creation.key,
                             counts.c_r_[r] + creation.local_before);
    }
    for (const auto& [r, n] : logs[src].local_cr) counts.c_r_[r] += n;
  }
  counts.pairs_.reserve(entries.size());
  for (const auto& [key, count] : entries) {
    counts.pairs_.emplace(key, PairCount{count, created_at.at(key)});
  }
  return counts;
}

}  // namespace piggyweb::volume

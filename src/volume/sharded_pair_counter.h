// Concurrent pair counting for multi-core trace replay.
//
// Two pieces:
//
//   * ShardedPairCounterTable — a c(s|r) / c(r) counter table striped by
//     key hash: each stripe owns a disjoint slice of the key space behind
//     its own mutex, so writers from different threads contend only when
//     they hash to the same stripe (~1/stripes of the time). Counter sums
//     are commutative, so the merged table is identical for every update
//     interleaving and thread count — the determinism the differential
//     tests (tests/reference_models_test.cc) enforce.
//
//   * ParallelPairCounterBuilder — a drop-in parallel replacement for
//     PairCounterBuilder. Pair counting shards naturally by source (pairs
//     are per-source successor observations, §3.3.1): workers scan
//     disjoint source slices, accumulate pair totals into the sharded
//     table, and record per-source counter-creation offsets; a sequential
//     merge in ascending source order then reconstructs exactly the
//     cr_at_creation values the serial builder produces. For exact
//     (unsampled) counters the result is bit-identical to
//     PairCounterBuilder at every thread count. Sampled configs fall back
//     to the serial builder: the sampler consumes a single global RNG
//     stream whose draw order has no order-independent equivalent.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "util/expect.h"
#include "util/flat_map.h"
#include "volume/pair_counter.h"

namespace piggyweb::obs {
class Registry;
}

namespace piggyweb::volume {

class ShardedPairCounterTable {
 public:
  explicit ShardedPairCounterTable(std::size_t stripes = 64);

  // Adds `delta` co-occurrences to c(s|r). Thread-safe.
  void add_pair(util::InternId r, util::InternId s, std::uint64_t delta = 1);
  void add_pair_key(std::uint64_t key, std::uint64_t delta = 1);

  // Batched flush: adds every (key, delta) entry, grouping keys by stripe
  // so each touched stripe is locked once per call instead of once per
  // key. Thread-safe; the merged table is identical to per-key adds
  // (counter sums commute). This is the writer the parallel builder's
  // per-source flush uses — the per-key path showed up as
  // pair_counter.stripes.lock_contended under the batch replay audit.
  void add_pairs(
      std::span<const std::pair<std::uint64_t, std::uint64_t>> entries);

  // Adds `delta` occurrences to c(r). Thread-safe.
  void add_occurrence(util::InternId r, std::uint64_t delta = 1);

  // Point reads (lock one stripe). Intended for tests and post-merge use,
  // not for read-mostly hot paths.
  std::uint64_t pair_count(util::InternId r, util::InternId s) const;
  std::uint64_t occurrences(util::InternId r) const;

  std::size_t counter_count() const;
  std::size_t stripe_count() const { return stripes_; }

  // Total/contended stripe-lock acquisitions since construction. A
  // contended acquisition is one whose initial try_lock failed — the
  // writer actually blocked on another thread. Cheap enough to keep on
  // by default: the counters are plain fields mutated under the stripe
  // lock the writer already holds.
  std::uint64_t lock_acquisitions() const;
  std::uint64_t lock_contended() const;

  // Publish the table's wait-state profile into `registry` under
  // `prefix`: lock_acquisitions/lock_contended counters, a per-stripe
  // contended-count log-histogram (p50/p99 across stripes — a skewed
  // distribution means a hot stripe, a uniform one means the stripe
  // count is just too low), and occupancy gauges including the max/mean
  // imbalance. All non-deterministic: contention depends on scheduling.
  void publish_metrics(obs::Registry& registry,
                       std::string_view prefix) const;

  // Snapshot of all pair counters as (key, count), unordered. Callers that
  // need a canonical order sort by key.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pair_entries() const;

  // Snapshot of c(r) as a dense vector indexed by resource id.
  std::vector<std::uint64_t> occurrence_vector() const;

  // Deterministic merge into the serial result type: counts and
  // occurrences are the (interleaving-independent) sums; cr_at_creation is
  // 0, i.e. plain exact estimates count / c(r). Callers needing the serial
  // builder's creation-adjusted denominators use ParallelPairCounterBuilder.
  PairCounts to_pair_counts() const;

 private:
  struct Stripe {
    mutable std::mutex mutex;
    util::FlatMap<std::uint64_t, std::uint64_t> pairs PW_GUARDED_BY(mutex);
    util::FlatMap<util::InternId, std::uint64_t> occurrences
        PW_GUARDED_BY(mutex);
    // Bumped by writers that already hold the stripe mutex, so
    // contention accounting adds no atomics to the hot path.
    std::uint64_t lock_acquisitions PW_GUARDED_BY(mutex) = 0;
    std::uint64_t lock_contended PW_GUARDED_BY(mutex) = 0;
  };

  // Lock `stripe` for a write and account the acquisition, counting it
  // as contended when the opportunistic try_lock lost the race. Read
  // paths use a plain lock_guard so the counters profile writers only.
  static std::unique_lock<std::mutex> lock_stripe(Stripe& stripe)
      PW_RETURNS_LOCK(stripe.mutex);

  Stripe& pair_stripe(std::uint64_t key) const;
  Stripe& occurrence_stripe(util::InternId r) const;

  std::size_t stripes_;
  std::unique_ptr<Stripe[]> table_;
};

// Parallel, source-sharded replacement for PairCounterBuilder.
class ParallelPairCounterBuilder {
 public:
  // threads = 0 picks the hardware thread count.
  ParallelPairCounterBuilder(const PairCounterConfig& config,
                             std::size_t threads);

  // Same contract as PairCounterBuilder::build. Bit-identical to the
  // serial builder when config.sample_counters is false (the default);
  // sampled configs run serially. Delegates to the observation overload.
  PairCounts build(const trace::Trace& trace,
                   std::uint64_t min_resource_count = 1);

  // Counts from a pre-built observation log (the streaming replay path
  // feeds PairObservations window by window, then trains here without
  // ever materializing the trace). Bit-identical to the serial
  // observation build at every thread count for exact counters.
  PairCounts build(const PairObservations& observations,
                   util::StringTableView paths,
                   std::uint64_t min_resource_count = 1);

 private:
  PairCounterConfig config_;
  std::size_t threads_;
};

}  // namespace piggyweb::volume

// Pairwise implication counters (§3.3.1).
//
// p(s|r) is the proportion of requests for r that are followed by a
// request for s from the same source within T seconds; the server
// estimates it from counters c(s|r) and c(r). Counting every pair can need
// n^2 counters, so the builder supports the paper's mitigations:
//   * random sampling — a missing counter c(s|r) is created with
//     probability inversely proportional to freq(r) * p_t, so pairs that
//     genuinely co-occur get counters early while noise pairs usually
//     don't get counted at all;
//   * directory restriction — only count pairs sharing a k-level
//     directory prefix (also the basis of "combined" volumes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/record.h"
#include "util/flat_map.h"
#include "util/intern.h"
#include "util/rng.h"
#include "util/time.h"

namespace piggyweb::persist {
struct StateAccess;
}

namespace piggyweb::volume {

struct PairCounterConfig {
  util::Seconds window = 300;  // T: successor window

  // Sampled counter creation. With sampling off every observed pair gets a
  // counter (exact counts).
  bool sample_counters = false;
  double sample_threshold = 0.2;  // the p_t the sampler is tuned for
  double sample_k = 4.0;          // creation prob = min(1, k/(freq(r)*p_t))

  // Only count pairs whose paths share this directory-prefix level
  // (0 = no restriction).
  int restrict_prefix_level = 0;

  std::uint64_t seed = 0xC0DE5;
};

struct PairCount {
  std::uint64_t count = 0;           // co-occurrences observed
  std::uint64_t cr_at_creation = 0;  // c(r) when the counter was created
};

// Result of a counting pass over one trace.
class PairCounts {
 public:
  static std::uint64_t key(util::InternId r, util::InternId s) {
    return (static_cast<std::uint64_t>(r) << 32) | s;
  }

  // Estimated p(s|r). For sampled counters the denominator is the number
  // of r-occurrences since the counter existed, which keeps the estimate
  // unbiased for late-created counters.
  double probability(util::InternId r, util::InternId s) const;

  std::uint64_t occurrences(util::InternId r) const;
  std::uint64_t pair_count(util::InternId r, util::InternId s) const;

  std::size_t counter_count() const { return pairs_.size(); }

  const util::FlatMap<std::uint64_t, PairCount>& pairs() const {
    return pairs_;
  }
  const std::vector<std::uint64_t>& resource_occurrences() const {
    return c_r_;
  }

  // All estimated probabilities (for Figure 5(b)'s distribution).
  std::vector<double> all_probabilities() const;

 private:
  friend class PairCounterBuilder;
  friend class ParallelPairCounterBuilder;
  friend class ShardedPairCounterTable;
  friend struct piggyweb::persist::StateAccess;
  std::vector<std::uint64_t> c_r_;  // indexed by resource id
  util::FlatMap<std::uint64_t, PairCount> pairs_;
};

// Compact per-source observation log — the only training state pair
// counting actually needs from a trace: (time, path) per request grouped
// by source, plus resource popularity. Feed time-ordered request windows
// through observe_window() (a streaming TraceView batch at a time, or one
// whole materialized span); per-source slices inherit the feed order, so
// the result is independent of the window partition. ~12 bytes/request
// instead of a full materialized Request — this is what bounds streaming
// probability-volume training memory.
class PairObservations {
 public:
  struct Entry {
    util::TimePoint time;
    util::InternId path = 0;
  };

  void observe_window(std::span<const trace::Request> window);

  // Number of per-source slices (max observed source id + 1).
  std::size_t source_count() const { return by_source_.size(); }
  std::span<const Entry> slice(std::size_t source) const {
    return by_source_[source];
  }
  // Occurrence totals indexed by path id (max observed path id + 1).
  const std::vector<std::uint64_t>& popularity() const { return popularity_; }

 private:
  std::vector<std::vector<Entry>> by_source_;
  std::vector<std::uint64_t> popularity_;
};

// Streams a time-sorted trace and produces PairCounts. Single server logs
// only (pairs are per-source, within one server's resource space).
class PairCounterBuilder {
 public:
  explicit PairCounterBuilder(const PairCounterConfig& config);

  // The trace must be sorted by time. Only requests whose resource was
  // seen at least `min_resource_count` times are considered (the paper
  // drops resources with <10 accesses before volume construction).
  // Delegates to the observation overload below.
  PairCounts build(const trace::Trace& trace,
                   std::uint64_t min_resource_count = 1);

  // Counts from a pre-built observation log. `paths` must resolve the
  // log's path ids (it also sizes the occurrence vector, so results are
  // identical to the Trace overload). Sources are processed in ascending
  // id order with each slice in feed order — exactly the serial trace
  // pass, so the sampler's RNG draw sequence (and therefore the counter
  // set) is bit-identical.
  PairCounts build(const PairObservations& observations,
                   util::StringTableView paths,
                   std::uint64_t min_resource_count = 1);

 private:
  PairCounterConfig config_;
};

}  // namespace piggyweb::volume

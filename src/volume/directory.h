// Directory-based volumes (§3.2).
//
// Resources sharing a k-level directory prefix form a volume ("one-level
// volumes put /a/b.html and /a/d/e.html together; zero-level prefixes make
// one site-wide volume"). Volumes are maintained online exactly as §3.2.1
// prescribes:
//   * a collection of FIFO lists partitioned by content type and size
//     class (so filters can serve "popular items of certain content types
//     and sizes" without scanning),
//   * move-to-front on access (last-access-time as the popularity metric,
//     constant-time maintenance),
//   * tail-trimming of the logical FIFO to bound volume size.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <vector>

#include "core/piggyback.h"
#include "util/flat_map.h"
#include "util/intern.h"

namespace piggyweb::persist {
struct StateAccess;
}

namespace piggyweb::volume {

struct DirectoryVolumeConfig {
  int level = 1;                          // directory prefix depth
  std::size_t max_volume_elements = 2000; // tail-trim bound per volume
  std::size_t max_candidates = 200;       // cap on returned candidate list
  std::uint64_t large_size_threshold = 8 * 1024;  // size-class boundary

  // Volume-id numbering: the i-th volume this instance discovers gets id
  // id_offset + i * id_stride. The parallel evaluator gives shard k of S
  // offset k / stride S so ids stay globally unique across per-shard
  // instances — RPV suppression compares ids for equality, so uniqueness
  // is all that is needed for serial-identical filtering.
  core::VolumeId id_offset = 0;
  core::VolumeId id_stride = 1;
};

class DirectoryVolumes final : public core::VolumeProvider {
 public:
  explicit DirectoryVolumes(const DirectoryVolumeConfig& config);

  // Observes the access (insert or move-to-front) and returns the volume's
  // current contents in recency order (most recent first), capped at
  // max_candidates. The requested resource itself is included; the filter
  // layer strips it.
  core::VolumePrediction on_request(
      const core::VolumeRequest& request) override;

  // Same per-request sequence, but reuses the candidate vectors staged in
  // `predictions`, so a steady-state batch loop performs no allocation.
  void on_request_batch(
      std::span<const core::VolumeRequest> requests,
      std::vector<core::VolumePrediction>& predictions) override;

  std::size_t volume_count() const override { return volumes_.size(); }
  const char* scheme_name() const override { return "directory"; }

  // Volume id for a (server, path) pair without mutating state; kNoVolume
  // if that volume has never been touched.
  core::VolumeId peek_volume(util::InternId server,
                             std::string_view path) const;

  // Number of elements currently held by a volume.
  std::size_t volume_size(core::VolumeId id) const;

  int level() const { return config_.level; }

 private:
  friend struct piggyweb::persist::StateAccess;

  // Partition index: 3 content types x 2 size classes.
  static constexpr std::size_t kPartitions = 6;
  static std::size_t partition_of(trace::ContentType type,
                                  std::uint64_t size,
                                  std::uint64_t large_threshold);

  struct Element {
    util::InternId resource;
    util::TimePoint last_access;
  };
  using ElementList = std::list<Element>;

  struct Volume {
    std::array<ElementList, kPartitions> parts;
    // resource -> (partition, node) for O(1) move-to-front
    util::FlatMap<util::InternId,
                  std::pair<std::size_t, ElementList::iterator>>
        index;
  };

  // (server id, interned prefix id) packed into the volume lookup key.
  static std::uint64_t volume_key(util::InternId server,
                                  util::InternId prefix) {
    return (static_cast<std::uint64_t>(server) << 32) | prefix;
  }

  void predict_into(const core::VolumeRequest& request,
                    core::VolumePrediction& out);
  void touch(Volume& volume, const core::VolumeRequest& request);
  void trim(Volume& volume);
  void collect(const Volume& volume, std::vector<util::InternId>& out) const;

  // Path string for an id from whichever table is bound (see bind_paths).
  std::string_view path_str(util::InternId path) const {
    return live_paths_ != nullptr ? live_paths_->str(path)
                                  : fixed_paths_.str(path);
  }

  // Interned prefix id for a path id, via the derived per-path cache:
  // a path's prefix string never changes, so the directory_prefix scan +
  // prefix intern runs once per distinct path instead of once per request.
  util::InternId prefix_of(util::InternId path);

  DirectoryVolumeConfig config_;
  // A volume's identity is (server, k-level prefix). Prefix strings are
  // interned once, so the per-request lookup packs two dense ids instead
  // of building and hashing a "server|prefix" string.
  util::InternTable prefixes_;
  util::FlatMap<std::uint64_t, core::VolumeId> ids_;
  std::vector<Volume> volumes_;
  // The path table is owned by the caller. Two binding modes: a live
  // InternTable pointer (online servers keep interning new paths — the
  // table may grow after binding), or a fixed StringTableView (replay over
  // a loaded trace or an mmap'd container, where the table is immutable).
  const util::InternTable* live_paths_ = nullptr;
  util::StringTableView fixed_paths_;
  // path id -> interned prefix id; kInvalidIntern = not yet computed.
  // Derived state: rebuilt lazily, never serialized.
  std::vector<util::InternId> prefix_ids_;

 public:
  // The provider needs to turn interned path ids back into strings to
  // compute directory prefixes; bind the trace's path table once. The
  // InternTable overload tracks a table that keeps growing (live servers);
  // the view overload serves replay from an immutable table without
  // touching the InternTable at all.
  void bind_paths(const util::InternTable& paths) { live_paths_ = &paths; }
  void bind_paths(util::StringTableView paths) { fixed_paths_ = paths; }
};

}  // namespace piggyweb::volume

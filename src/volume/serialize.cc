#include "volume/serialize.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <vector>

#include "util/strings.h"

namespace piggyweb::volume {
namespace {

constexpr std::string_view kMagic = "piggyweb-volumes";
constexpr int kVersion = 1;

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void save_volume_set(std::ostream& out, const ProbabilityVolumeSet& set,
                     const util::InternTable& paths) {
  out << kMagic << ' ' << kVersion << '\n';

  // Deterministic order: sort resources by path.
  std::vector<util::InternId> resources;
  resources.reserve(set.volumes().size());
  for (const auto& [r, entries] : set.volumes()) resources.push_back(r);
  std::sort(resources.begin(), resources.end(),
            [&paths](util::InternId a, util::InternId b) {
              return paths.str(a) < paths.str(b);
            });

  for (const auto r : resources) {
    const auto* entries = set.volume_of(r);
    out << "volume " << paths.str(r) << ' ' << entries->size() << '\n';
    for (const auto& entry : *entries) {
      out << paths.str(entry.resource) << ' '
          << format_double(entry.probability) << ' '
          << format_double(entry.effectiveness) << '\n';
    }
  }
}

std::optional<ProbabilityVolumeSet> load_volume_set(
    std::istream& in, util::InternTable& paths, std::string& error) {
  std::string line;
  if (!std::getline(in, line)) {
    error = "empty input";
    return std::nullopt;
  }
  {
    const auto parts = util::split_trimmed(line, ' ');
    std::int64_t version = 0;
    if (parts.size() != 2 || parts[0] != kMagic ||
        !util::parse_i64(parts[1], version) || version != kVersion) {
      error = "bad header: " + line;
      return std::nullopt;
    }
  }

  ProbabilityVolumeSet set;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto parts = util::split_trimmed(trimmed, ' ');
    if (parts.size() != 3 || parts[0] != "volume") {
      error = "expected 'volume <path> <count>' at line " +
              std::to_string(line_number);
      return std::nullopt;
    }
    std::uint64_t count = 0;
    if (!util::parse_u64(parts[2], count) || count == 0) {
      error = "bad entry count at line " + std::to_string(line_number);
      return std::nullopt;
    }
    const auto resource = paths.intern(parts[1]);

    std::vector<VolumeEntry> entries;
    entries.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      if (!std::getline(in, line)) {
        error = "truncated volume for " + std::string(paths.str(resource));
        return std::nullopt;
      }
      ++line_number;
      const auto fields = util::split_trimmed(line, ' ');
      VolumeEntry entry;
      if (fields.size() != 3 ||
          !util::parse_double(fields[1], entry.probability) ||
          !util::parse_double(fields[2], entry.effectiveness) ||
          entry.probability < 0 || entry.probability > 1) {
        error = "bad entry at line " + std::to_string(line_number);
        return std::nullopt;
      }
      entry.resource = paths.intern(fields[0]);
      entries.push_back(entry);
    }
    set.add_volume(resource, std::move(entries));
  }
  return set;
}

}  // namespace piggyweb::volume

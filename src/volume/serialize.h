// Volume-set persistence. Probability volumes are built offline from logs
// ("in our experiments, we applied a single set of volumes for the
// duration of each log") — a production server computes them in a daily
// batch job and loads the result at startup. The format is line-oriented
// text, stable and diff-friendly:
//
//   piggyweb-volumes 1
//   volume <resource-path> <entry-count>
//   <entry-path> <probability> <effectiveness>
//   ...
//
// Volumes are written sorted by resource path, entries in stored
// (descending-probability) order, so output is deterministic.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "util/intern.h"
#include "volume/probability.h"

namespace piggyweb::volume {

void save_volume_set(std::ostream& out, const ProbabilityVolumeSet& set,
                     const util::InternTable& paths);

// Load a set; paths are interned into `paths`. Returns nullopt with
// `error` filled on malformed input.
std::optional<ProbabilityVolumeSet> load_volume_set(
    std::istream& in, util::InternTable& paths, std::string& error);

}  // namespace piggyweb::volume

#include "volume/probability.h"

#include <algorithm>

#include "trace/stream.h"
#include "util/expect.h"
#include "util/strings.h"

namespace piggyweb::volume {

void ProbabilityVolumeSet::add_volume(util::InternId r,
                                      std::vector<VolumeEntry> entries) {
  PW_EXPECT(!entries.empty());
  id_of_.try_emplace(r, static_cast<core::VolumeId>(id_of_.size()));
  volumes_[r] = std::move(entries);
}

const std::vector<VolumeEntry>* ProbabilityVolumeSet::volume_of(
    util::InternId r) const {
  const auto it = volumes_.find(r);
  return it == volumes_.end() ? nullptr : &it->second;
}

core::VolumeId ProbabilityVolumeSet::volume_id(util::InternId r) const {
  const auto it = id_of_.find(r);
  return it == id_of_.end() ? core::kNoVolume : it->second;
}

VolumeSetStats ProbabilityVolumeSet::stats() const {
  VolumeSetStats s;
  s.volumes = volumes_.size();
  std::size_t self = 0;
  std::size_t symmetric = 0;
  util::FlatMap<util::InternId, std::size_t> memberships;
  for (const auto& [r, entries] : volumes_) {
    s.total_entries += entries.size();
    for (const auto& e : entries) {
      ++memberships[e.resource];
      if (e.resource == r) {
        ++self;
        continue;
      }
      if (const auto* other = volume_of(e.resource)) {
        const bool has_r = std::any_of(
            other->begin(), other->end(),
            [r_id = r](const VolumeEntry& oe) {
              return oe.resource == r_id;
            });
        if (has_r) ++symmetric;
      }
    }
  }
  if (s.volumes > 0) {
    s.avg_volume_size = static_cast<double>(s.total_entries) /
                        static_cast<double>(s.volumes);
    s.self_fraction =
        static_cast<double>(self) / static_cast<double>(s.volumes);
  }
  if (s.total_entries > 0) {
    s.symmetric_fraction = static_cast<double>(symmetric) /
                           static_cast<double>(s.total_entries);
  }
  if (!memberships.empty()) {
    std::size_t total = 0;
    for (const auto& [res, n] : memberships) total += n;
    s.avg_volumes_per_resource = static_cast<double>(total) /
                                 static_cast<double>(memberships.size());
  }
  return s;
}

ProbabilityVolumeSet build_probability_volumes(
    const trace::Trace& trace, const PairCounts& counts,
    const ProbabilityVolumeConfig& config) {
  trace::MaterializedTraceView view(trace);
  return build_probability_volumes(view, counts, config);
}

ProbabilityVolumeSet build_probability_volumes(
    trace::TraceView& view, const PairCounts& counts,
    const ProbabilityVolumeConfig& config) {
  PW_EXPECT(config.probability_threshold > 0);

  // Candidate volumes: all counted pairs passing p_t (and the prefix
  // restriction when combining).
  util::FlatMap<util::InternId, std::vector<VolumeEntry>> candidates;
  const auto paths = view.paths();
  const auto prefix_of = [&](util::InternId path) {
    return util::directory_prefix(paths.str(path),
                                  config.combine_prefix_level);
  };
  for (const auto& [key, pc] : counts.pairs()) {
    const auto r = static_cast<util::InternId>(key >> 32);
    const auto s = static_cast<util::InternId>(key & 0xffffffffu);
    const double p = counts.probability(r, s);
    if (p < config.probability_threshold) continue;
    if (config.combine_prefix_level > 0 && prefix_of(r) != prefix_of(s)) {
      continue;
    }
    candidates[r].push_back({s, p, 0.0});
  }

  // Effectiveness pass: replay the trace; an implication r -> s is
  // "effective" at an r-request when s is not already in predicted state
  // for that source (no volume mentioned s within the last T seconds).
  if (config.effectiveness_threshold > 0 && !candidates.empty()) {
    util::FlatMap<std::uint64_t, std::uint64_t> effective;  // pair key
    // (source, resource) -> last time any volume predicted the resource
    util::FlatMap<std::uint64_t, util::Seconds> last_predicted;
    const auto state_key = [](util::InternId source, util::InternId res) {
      return (static_cast<std::uint64_t>(source) << 32) | res;
    };
    // Replay one bounded window at a time — the pass only needs (time,
    // source, path) in time order, so streaming views train in O(window)
    // request memory.
    constexpr std::size_t kEffectivenessWindow = 4096;
    const auto total = view.request_count();
    for (std::size_t base = 0; base < total; base += kEffectivenessWindow) {
      const auto n = std::min(kEffectivenessWindow, total - base);
      for (const auto& req : view.window(base, n)) {
        const auto it = candidates.find(req.path);
        if (it == candidates.end()) continue;
        for (const auto& entry : it->second) {
          const auto sk = state_key(req.source, entry.resource);
          const auto lp = last_predicted.find(sk);
          const bool is_new =
              lp == last_predicted.end() ||
              req.time.value - lp->second > config.window;
          if (is_new) {
            ++effective[PairCounts::key(req.path, entry.resource)];
          }
          last_predicted[sk] = req.time.value;
        }
      }
    }
    for (auto& [r, entries] : candidates) {
      const auto cr = counts.occurrences(r);
      for (auto& entry : entries) {
        const auto eff_it =
            effective.find(PairCounts::key(r, entry.resource));
        const auto eff =
            eff_it == effective.end() ? 0 : eff_it->second;
        entry.effectiveness =
            cr == 0 ? 0.0
                    : static_cast<double>(eff) / static_cast<double>(cr);
      }
      std::erase_if(entries, [&config](const VolumeEntry& e) {
        return e.effectiveness < config.effectiveness_threshold;
      });
    }
  }

  ProbabilityVolumeSet set;
  for (auto& [r, entries] : candidates) {
    if (entries.empty()) continue;
    std::sort(entries.begin(), entries.end(),
              [](const VolumeEntry& a, const VolumeEntry& b) {
                if (a.probability != b.probability) {
                  return a.probability > b.probability;
                }
                return a.resource < b.resource;
              });
    if (config.max_entries_per_volume > 0 &&
        entries.size() > config.max_entries_per_volume) {
      entries.resize(config.max_entries_per_volume);
    }
    set.add_volume(r, std::move(entries));
  }
  return set;
}

void ProbabilityVolumes::predict_into(const core::VolumeRequest& request,
                                      core::VolumePrediction& out) const {
  out.volume = core::kNoVolume;
  out.resources.clear();
  out.probs.clear();
  const auto* entries = set_->volume_of(request.path);
  if (entries == nullptr) return;
  out.volume = set_->volume_id(request.path);
  const auto n = std::min(entries->size(), max_candidates_);
  out.resources.reserve(n);
  out.probs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.resources.push_back((*entries)[i].resource);
    out.probs.push_back((*entries)[i].probability);
  }
}

core::VolumePrediction ProbabilityVolumes::on_request(
    const core::VolumeRequest& request) {
  core::VolumePrediction prediction;
  predict_into(request, prediction);
  return prediction;
}

void ProbabilityVolumes::on_request_batch(
    std::span<const core::VolumeRequest> requests,
    std::vector<core::VolumePrediction>& predictions) {
  predictions.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    predict_into(requests[i], predictions[i]);
  }
}

}  // namespace piggyweb::volume

// Popularity volume (§5 future work: "additional information that could
// be piggybacked includes information about popular resources gathered in
// a separate volume").
//
// A decorator over any primary volume provider: when the primary has
// little or nothing to say for a request (fewer candidates than
// `min_primary`), the response is topped up from a dedicated site-wide
// volume of the most popular resources — useful for first contacts from a
// new proxy, where no co-access history exists yet.
#pragma once

#include <cstdint>
#include <vector>

#include "core/piggyback.h"

namespace piggyweb::volume {

struct PopularityVolumeConfig {
  std::size_t top_n = 10;          // resources kept in the popular volume
  std::size_t min_primary = 1;     // top up when primary yields fewer
  // Wire id for the popular volume; by convention the last 2-byte id, so
  // it never collides with dense per-resource/per-directory ids in
  // practice.
  core::VolumeId volume_id = core::kMaxWireVolumeId;
};

class PopularityVolumes final : public core::VolumeProvider {
 public:
  PopularityVolumes(const PopularityVolumeConfig& config,
                    core::VolumeProvider& primary)
      : config_(config), primary_(&primary) {}

  // Maintains popularity counts online and delegates to the primary
  // provider; tops the candidate list up from the popular set when the
  // primary comes back thin. Top-up candidates never displace primary
  // ones (they are appended, so maxpiggy truncation favours the primary).
  core::VolumePrediction on_request(
      const core::VolumeRequest& request) override;

  std::size_t volume_count() const override {
    return primary_->volume_count() + 1;
  }
  const char* scheme_name() const override { return "popularity-topped"; }

  // Current contents of the popular volume (most popular first).
  std::vector<util::InternId> popular() const;

 private:
  void bump(util::InternId resource);

  PopularityVolumeConfig config_;
  core::VolumeProvider* primary_;
  // Exact counts plus a maintained top-N (linear scan over N on update;
  // N is small by construction).
  std::vector<std::uint64_t> counts_;
  std::vector<util::InternId> top_;  // sorted by count desc
};

}  // namespace piggyweb::volume

#include "volume/directory.h"

#include <algorithm>

#include "util/expect.h"
#include "util/strings.h"

namespace piggyweb::volume {

DirectoryVolumes::DirectoryVolumes(const DirectoryVolumeConfig& config)
    : config_(config) {
  PW_EXPECT(config.level >= 0);
  PW_EXPECT(config.max_volume_elements > 0);
  PW_EXPECT(config.id_stride >= 1);
  PW_EXPECT(config.id_offset < config.id_stride);
}

std::size_t DirectoryVolumes::partition_of(trace::ContentType type,
                                           std::uint64_t size,
                                           std::uint64_t large_threshold) {
  const auto type_idx = static_cast<std::size_t>(type);  // 0..2
  const std::size_t size_idx = size >= large_threshold ? 1 : 0;
  return type_idx * 2 + size_idx;
}

util::InternId DirectoryVolumes::prefix_of(util::InternId path) {
  if (path >= prefix_ids_.size()) {
    prefix_ids_.resize(static_cast<std::size_t>(path) + 1,
                       util::kInvalidIntern);
  }
  auto& cached = prefix_ids_[path];
  if (cached == util::kInvalidIntern) {
    cached = prefixes_.intern(
        util::directory_prefix(path_str(path), config_.level));
  }
  return cached;
}

void DirectoryVolumes::predict_into(const core::VolumeRequest& request,
                                    core::VolumePrediction& out) {
  PW_EXPECT(live_paths_ != nullptr || !fixed_paths_.empty());
  const auto prefix = prefix_of(request.path);
  const auto key = volume_key(request.server, prefix);

  // ids_ holds the dense local index; the public id applies the
  // offset/stride numbering from the config.
  auto [it, inserted] =
      ids_.try_emplace(key, static_cast<core::VolumeId>(volumes_.size()));
  if (inserted) volumes_.emplace_back();
  Volume& volume = volumes_[it->second];

  touch(volume, request);
  trim(volume);

  out.volume = config_.id_offset + config_.id_stride * it->second;
  collect(volume, out.resources);
  out.probs.clear();
}

core::VolumePrediction DirectoryVolumes::on_request(
    const core::VolumeRequest& request) {
  core::VolumePrediction prediction;
  predict_into(request, prediction);
  return prediction;
}

void DirectoryVolumes::on_request_batch(
    std::span<const core::VolumeRequest> requests,
    std::vector<core::VolumePrediction>& predictions) {
  predictions.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    predict_into(requests[i], predictions[i]);
  }
}

void DirectoryVolumes::touch(Volume& volume,
                             const core::VolumeRequest& request) {
  const auto part = partition_of(request.type, request.size,
                                 config_.large_size_threshold);
  const auto idx_it = volume.index.find(request.path);
  if (idx_it != volume.index.end()) {
    auto [old_part, node] = idx_it->second;
    node->last_access = request.time;
    if (old_part == part) {
      // Move-to-front within its partition — O(1) splice.
      volume.parts[part].splice(volume.parts[part].begin(),
                                volume.parts[part], node);
    } else {
      // Size/type class changed (e.g. resource grew); migrate partitions.
      volume.parts[part].splice(volume.parts[part].begin(),
                                volume.parts[old_part], node);
      idx_it->second.first = part;
    }
    idx_it->second.second = volume.parts[part].begin();
    return;
  }
  volume.parts[part].push_front({request.path, request.time});
  volume.index.emplace(request.path,
                       std::make_pair(part, volume.parts[part].begin()));
}

void DirectoryVolumes::trim(Volume& volume) {
  while (volume.index.size() > config_.max_volume_elements) {
    // Evict the least recently used element across the logical FIFO: the
    // oldest among the partition tails.
    std::size_t victim_part = kPartitions;
    util::TimePoint oldest{0};
    for (std::size_t p = 0; p < kPartitions; ++p) {
      if (volume.parts[p].empty()) continue;
      const auto t = volume.parts[p].back().last_access;
      if (victim_part == kPartitions || t < oldest) {
        victim_part = p;
        oldest = t;
      }
    }
    PW_ENSURE(victim_part < kPartitions);
    volume.index.erase(volume.parts[victim_part].back().resource);
    volume.parts[victim_part].pop_back();
  }
}

void DirectoryVolumes::collect(const Volume& volume,
                               std::vector<util::InternId>& out) const {
  // Merge the six MRU-ordered partition lists into one recency-ordered
  // candidate list (most recent first), up to max_candidates.
  std::array<ElementList::const_iterator, kPartitions> cursor;
  std::array<ElementList::const_iterator, kPartitions> end;
  for (std::size_t p = 0; p < kPartitions; ++p) {
    cursor[p] = volume.parts[p].begin();
    end[p] = volume.parts[p].end();
  }
  out.clear();
  out.reserve(std::min(volume.index.size(), config_.max_candidates));
  while (out.size() < config_.max_candidates) {
    std::size_t best = kPartitions;
    for (std::size_t p = 0; p < kPartitions; ++p) {
      if (cursor[p] == end[p]) continue;
      if (best == kPartitions ||
          cursor[p]->last_access > cursor[best]->last_access) {
        best = p;
      }
    }
    if (best == kPartitions) break;
    out.push_back(cursor[best]->resource);
    ++cursor[best];
  }
}

core::VolumeId DirectoryVolumes::peek_volume(util::InternId server,
                                             std::string_view path) const {
  const auto prefix =
      prefixes_.find(util::directory_prefix(path, config_.level));
  if (!prefix.has_value()) return core::kNoVolume;
  const auto it = ids_.find(volume_key(server, *prefix));
  if (it == ids_.end()) return core::kNoVolume;
  return config_.id_offset + config_.id_stride * it->second;
}

std::size_t DirectoryVolumes::volume_size(core::VolumeId id) const {
  PW_EXPECT(id >= config_.id_offset);
  PW_EXPECT((id - config_.id_offset) % config_.id_stride == 0);
  const auto local = (id - config_.id_offset) / config_.id_stride;
  PW_EXPECT(local < volumes_.size());
  return volumes_[local].index.size();
}

}  // namespace piggyweb::volume

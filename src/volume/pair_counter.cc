#include "volume/pair_counter.h"

#include <algorithm>

#include "util/expect.h"
#include "util/strings.h"

namespace piggyweb::volume {

double PairCounts::probability(util::InternId r, util::InternId s) const {
  const auto it = pairs_.find(key(r, s));
  if (it == pairs_.end()) return 0.0;
  const auto cr = occurrences(r);
  const auto denom = cr - it->second.cr_at_creation;
  if (denom == 0) return 0.0;
  return static_cast<double>(it->second.count) /
         static_cast<double>(denom);
}

std::uint64_t PairCounts::occurrences(util::InternId r) const {
  return r < c_r_.size() ? c_r_[r] : 0;
}

std::uint64_t PairCounts::pair_count(util::InternId r,
                                     util::InternId s) const {
  const auto it = pairs_.find(key(r, s));
  return it == pairs_.end() ? 0 : it->second.count;
}

std::vector<double> PairCounts::all_probabilities() const {
  std::vector<double> out;
  out.reserve(pairs_.size());
  for (const auto& [k, pc] : pairs_) {
    const auto r = static_cast<util::InternId>(k >> 32);
    const auto cr = occurrences(r);
    const auto denom = cr - pc.cr_at_creation;
    if (denom > 0) {
      out.push_back(static_cast<double>(pc.count) /
                    static_cast<double>(denom));
    }
  }
  return out;
}

void PairObservations::observe_window(
    std::span<const trace::Request> window) {
  for (const auto& r : window) {
    if (r.source >= by_source_.size()) {
      by_source_.resize(static_cast<std::size_t>(r.source) + 1);
    }
    if (r.path >= popularity_.size()) {
      popularity_.resize(static_cast<std::size_t>(r.path) + 1, 0);
    }
    by_source_[r.source].push_back(Entry{r.time, r.path});
    ++popularity_[r.path];
  }
}

PairCounterBuilder::PairCounterBuilder(const PairCounterConfig& config)
    : config_(config) {
  PW_EXPECT(config.window > 0);
  PW_EXPECT(config.sample_threshold > 0);
}

PairCounts PairCounterBuilder::build(const trace::Trace& trace,
                                     std::uint64_t min_resource_count) {
  const auto& requests = trace.requests();
  PW_EXPECT(std::is_sorted(requests.begin(), requests.end(),
                           [](const trace::Request& a,
                              const trace::Request& b) {
                             return a.time < b.time;
                           }));
  PairObservations observations;
  observations.observe_window(requests);
  return build(observations, util::StringTableView(trace.paths()),
               min_resource_count);
}

PairCounts PairCounterBuilder::build(const PairObservations& observations,
                                     util::StringTableView paths,
                                     std::uint64_t min_resource_count) {
  // Popularity feeds the min-count cut and the sampler's freq(r) term.
  // Padding the vector to the path-table size keeps c_r_ the same shape
  // the whole-trace pass produced (ids interned but never requested).
  auto popularity = observations.popularity();
  if (popularity.size() < paths.size()) popularity.resize(paths.size(), 0);

  util::Rng rng(config_.seed);
  PairCounts counts;
  counts.c_r_.assign(popularity.size(), 0);

  const auto prefix_of = [&](util::InternId path) {
    return util::directory_prefix(paths.str(path),
                                  config_.restrict_prefix_level);
  };

  std::vector<util::InternId> successors;  // distinct, per request
  for (std::size_t src = 0; src < observations.source_count(); ++src) {
    const auto slice = observations.slice(src);

    // Two-pointer forward scan over this source's requests.
    for (std::size_t i = 0; i < slice.size(); ++i) {
      const auto& ri = slice[i];
      const auto r = ri.path;
      if (popularity[r] < min_resource_count) continue;
      ++counts.c_r_[r];
      const auto cr_now = counts.c_r_[r];

      successors.clear();
      for (std::size_t j = i + 1; j < slice.size(); ++j) {
        const auto& rj = slice[j];
        if (rj.time - ri.time > config_.window) break;
        const auto s = rj.path;
        if (popularity[s] < min_resource_count) continue;
        if (std::find(successors.begin(), successors.end(), s) !=
            successors.end()) {
          continue;
        }
        successors.push_back(s);
      }

      for (const auto s : successors) {
        if (config_.restrict_prefix_level > 0 &&
            prefix_of(r) != prefix_of(s)) {
          continue;
        }
        const auto k = PairCounts::key(r, s);
        auto it = counts.pairs_.find(k);
        if (it == counts.pairs_.end()) {
          if (config_.sample_counters) {
            const double create_prob = std::min(
                1.0, config_.sample_k /
                         (config_.sample_threshold *
                          static_cast<double>(std::max<std::uint64_t>(
                              1, cr_now))));
            if (!rng.chance(create_prob)) continue;
          }
          // cr_at_creation excludes the current occurrence so this first
          // co-occurrence contributes 1/1, not 1/0.
          it = counts.pairs_.emplace(k, PairCount{0, cr_now - 1}).first;
        }
        ++it->second.count;
      }
    }
  }
  return counts;
}

}  // namespace piggyweb::volume

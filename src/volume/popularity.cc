#include "volume/popularity.h"

#include <algorithm>

namespace piggyweb::volume {

void PopularityVolumes::bump(util::InternId resource) {
  if (resource >= counts_.size()) counts_.resize(resource + 1, 0);
  ++counts_[resource];

  // Maintain top_: if present, re-sort its neighbourhood; if absent and
  // it now beats the tail (or there is room), insert.
  const auto it = std::find(top_.begin(), top_.end(), resource);
  if (it != top_.end()) {
    // Bubble towards the front while it outranks its predecessor.
    auto pos = it;
    while (pos != top_.begin() &&
           counts_[*pos] > counts_[*(pos - 1)]) {
      std::iter_swap(pos, pos - 1);
      --pos;
    }
    return;
  }
  if (top_.size() < config_.top_n) {
    top_.push_back(resource);
    return;
  }
  if (counts_[resource] > counts_[top_.back()]) {
    top_.back() = resource;
  }
}

std::vector<util::InternId> PopularityVolumes::popular() const {
  return top_;
}

core::VolumePrediction PopularityVolumes::on_request(
    const core::VolumeRequest& request) {
  bump(request.path);
  auto prediction = primary_->on_request(request);
  // The requested resource never survives the filter, so count it out
  // when judging whether the primary came back thin.
  std::size_t usable = prediction.resources.size();
  for (const auto res : prediction.resources) {
    if (res == request.path) --usable;
  }
  if (usable >= config_.min_primary) return prediction;
  // Top up from the popular volume. If the primary had nothing at all,
  // the message is attributed to the popular volume so RPV suppression
  // works; otherwise the primary volume id is kept.
  if (prediction.volume == core::kNoVolume) {
    prediction.volume = config_.volume_id;
  }
  const bool has_probs =
      !prediction.resources.empty() &&
      prediction.probs.size() == prediction.resources.size();
  for (const auto res : top_) {
    if (res == request.path) continue;
    if (std::find(prediction.resources.begin(), prediction.resources.end(),
                  res) != prediction.resources.end()) {
      continue;
    }
    prediction.resources.push_back(res);
    if (has_probs) prediction.probs.push_back(0.0);
  }
  return prediction;
}

}  // namespace piggyweb::volume

#include "analysis/invalidation.h"

#include <string>

#include "analysis/functions.h"
#include "analysis/lexer.h"

namespace piggyweb::analysis {

namespace {

std::size_t match_punct(const std::vector<Token>& toks, std::size_t open,
                        std::string_view opener, std::string_view closer,
                        std::size_t limit) {
  std::size_t depth = 0;
  for (std::size_t j = open; j < limit; ++j) {
    if (toks[j].is_punct(opener)) ++depth;
    if (toks[j].is_punct(closer) && --depth == 0) return j;
  }
  return limit;
}

struct Chain {
  std::vector<std::size_t> parts;  // token indices of the identifiers
  std::size_t end = 0;             // index just past the last identifier
};

// Parse `a.b->c` starting at token `i` (an identifier).
Chain parse_chain(const std::vector<Token>& toks, std::size_t i,
                  std::size_t limit) {
  Chain chain;
  chain.parts.push_back(i);
  std::size_t j = i + 1;
  while (j + 1 < limit &&
         (toks[j].is_punct(".") || toks[j].is_punct("->")) &&
         toks[j + 1].kind == TokKind::kIdent) {
    chain.parts.push_back(j + 1);
    j += 2;
  }
  chain.end = j;
  return chain;
}

std::string chain_text(const std::vector<Token>& toks, const Chain& chain,
                       std::size_t n_parts) {
  std::string out;
  for (std::size_t k = 0; k < n_parts; ++k) {
    if (k > 0) out += '.';
    out += toks[chain.parts[k]].text;
  }
  return out;
}

struct Binding {
  std::string_view name;
  std::string receiver;
  std::string_view method;
  std::size_t name_pos = 0;
  std::size_t rhs_end = 0;  // end of the initializing expression's call
  std::uint32_t line = 0;
};

struct Mutation {
  std::string receiver;
  std::string_view method;
  std::size_t start = 0;
  std::size_t end = 0;  // just past the call's closing ')' / ']'
  std::uint32_t line = 0;
};

// Declared-with-auto binding ending right before the '=' at `eq`:
//   auto it = ..., auto& v = ..., const auto* p = ..., auto [a, b] = ...
// Returns bound names (empty when the tokens before '=' are not a
// declaration) and whether the declaration takes a reference.
struct DeclInfo {
  std::vector<std::string_view> names;
  bool is_reference = false;
};

bool has_auto(const std::vector<Token>& toks, std::size_t begin,
              std::size_t end);

DeclInfo parse_decl(const std::vector<Token>& toks, std::size_t eq,
                    std::size_t begin) {
  DeclInfo decl;
  if (eq == 0) return decl;
  std::size_t j = eq - 1;
  if (toks[j].is_punct("]")) {  // structured binding
    std::vector<std::string_view> names;
    while (j > begin && !toks[j].is_punct("[")) {
      if (toks[j].kind == TokKind::kIdent) names.push_back(toks[j].text);
      --j;
    }
    if (j <= begin || !toks[j].is_punct("[")) return decl;
    if (j == begin || !has_auto(toks, begin, j)) return decl;
    decl.names = std::move(names);
    decl.is_reference = true;  // holds an iterator either way
    return decl;
  }
  if (toks[j].kind != TokKind::kIdent || is_cpp_keyword(toks[j].text)) {
    return decl;
  }
  const std::string_view name = toks[j].text;
  bool saw_auto = false;
  bool saw_ref = false;
  while (j > begin) {
    --j;
    const Token& t = toks[j];
    if (t.is_ident("auto")) saw_auto = true;
    if (t.is_punct("&") || t.is_punct("*")) saw_ref = true;
    if (t.is_ident("const")) continue;
    if (!t.is_ident("auto") && !t.is_punct("&") && !t.is_punct("*")) break;
  }
  if (!saw_auto) return decl;
  decl.names = {name};
  decl.is_reference = saw_ref;
  return decl;
}

bool has_auto(const std::vector<Token>& toks, std::size_t begin,
              std::size_t end) {
  for (std::size_t j = end; j-- > begin;) {
    if (toks[j].is_ident("auto")) return true;
    if (toks[j].is_punct(";") || toks[j].is_punct("{") ||
        toks[j].is_punct("}")) {
      return false;
    }
  }
  return false;
}

}  // namespace

void check_invalidation(const SourceFile& file,
                        const InvalidationConfig& config,
                        std::vector<Diagnostic>& out) {
  const auto& toks = file.tokens;

  // Names declared with a tracked type anywhere in the file. The
  // declared name follows the type name, its template arguments if any,
  // a closing '>' when the type sits inside a wrapper template
  // (`std::unique_ptr<TraceView> view`), and ref/pointer decorations.
  std::vector<std::string_view> tracked_names;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    bool is_type = false;
    for (const auto type_name : config.type_names) {
      if (toks[i].text == type_name) {
        is_type = true;
        break;
      }
    }
    if (!is_type) continue;
    std::size_t j = i + 1;
    if (toks[j].is_punct("<")) {
      std::size_t depth = 0;
      while (j < toks.size()) {
        if (toks[j].is_punct("<")) ++depth;
        if (toks[j].is_punct(">") && --depth == 0) {
          ++j;
          break;
        }
        if (toks[j].is_punct("{") || toks[j].is_punct(";")) break;
        ++j;
      }
    } else if (config.require_template_args) {
      continue;
    } else {
      while (j < toks.size() && toks[j].is_punct(">")) ++j;
    }
    while (j < toks.size() &&
           (toks[j].is_punct("&") || toks[j].is_punct("*"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
        !is_cpp_keyword(toks[j].text)) {
      tracked_names.push_back(toks[j].text);
    }
  }
  if (tracked_names.empty()) return;
  const auto is_tracked_name = [&](std::string_view text) {
    for (const auto name : tracked_names) {
      if (name == text) return true;
    }
    return false;
  };

  for (const FunctionDef& fn : scan_functions(file)) {
    std::vector<Binding> bindings;
    std::vector<Mutation> mutations;
    // Plain re-assignments `name = recv.accessor(...)`: the old value of
    // `name` is dead from here on (and a fresh binding starts), so later
    // uses of the name are the re-fetched value, not the stale one.
    struct Kill {
      std::string_view name;
      std::size_t pos = 0;  // token index of the assigned name
    };
    std::vector<Kill> kills;

    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      if (i > fn.body_begin && (toks[i - 1].is_punct(".") ||
                                toks[i - 1].is_punct("->"))) {
        continue;  // chain continuation, already handled
      }
      const Chain chain = parse_chain(toks, i, fn.body_end);

      // Range-for over a tracked object: `for (... : chain)` — the
      // iterated object's name is the chain's last identifier.
      if (config.check_range_for && toks[i].is_ident("for") &&
          i + 1 < fn.body_end && toks[i + 1].is_punct("(")) {
        const std::size_t close =
            match_punct(toks, i + 1, "(", ")", fn.body_end);
        std::size_t colon = close;
        std::size_t depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          if (toks[j].is_punct("(") || toks[j].is_punct("[")) ++depth;
          if (toks[j].is_punct(")") || toks[j].is_punct("]")) --depth;
          if (depth == 1 && toks[j].is_punct(":")) {
            colon = j;
            break;
          }
        }
        if (colon < close && colon + 1 < close &&
            toks[colon + 1].kind == TokKind::kIdent) {
          const Chain range = parse_chain(toks, colon + 1, close);
          if (is_tracked_name(toks[range.parts.back()].text) &&
              close + 1 < fn.body_end && toks[close + 1].is_punct("{")) {
            const std::string key =
                chain_text(toks, range, range.parts.size());
            const std::size_t body_close =
                match_punct(toks, close + 1, "{", "}", fn.body_end);
            for (std::size_t j = close + 2; j < body_close; ++j) {
              if (toks[j].kind != TokKind::kIdent) continue;
              if (j > 0 && (toks[j - 1].is_punct(".") ||
                            toks[j - 1].is_punct("->"))) {
                continue;
              }
              const Chain inner = parse_chain(toks, j, body_close);
              if (inner.parts.size() < 2) continue;
              const std::string_view method =
                  toks[inner.parts.back()].text;
              if (!config.mutating(method)) continue;
              if (chain_text(toks, inner, inner.parts.size() - 1) != key) {
                continue;
              }
              if (inner.end >= body_close ||
                  !toks[inner.end].is_punct("(")) {
                continue;
              }
              out.push_back(
                  {file.path, toks[j].line, std::string(config.rule),
                   "'" + key + "." + std::string(method) +
                       "' inside a range-for over '" + key + "' — " +
                       std::string(config.range_for_text)});
            }
          }
        }
        i = close;
        continue;
      }

      if (chain.parts.size() < 2) continue;
      const std::string_view last = toks[chain.parts.back()].text;
      const std::string_view recv_part =
          toks[chain.parts[chain.parts.size() - 2]].text;

      // Method call on a tracked object: receiver is the chain minus
      // the method name.
      if (is_tracked_name(recv_part) && chain.end < fn.body_end &&
          toks[chain.end].is_punct("(")) {
        const std::string receiver =
            chain_text(toks, chain, chain.parts.size() - 1);
        const std::size_t call_close =
            match_punct(toks, chain.end, "(", ")", fn.body_end);
        if (config.mutating(last)) {
          mutations.push_back({receiver, last, i, call_close + 1,
                               toks[i].line});
        }
        if (config.accessor(last) && i > fn.body_begin &&
            toks[i - 1].is_punct("=")) {
          DeclInfo decl = parse_decl(toks, i - 1, fn.body_begin);
          const bool by_value_binds =
              config.reference_only == nullptr ||
              !config.reference_only(last);
          if (decl.names.empty() && i >= 2 &&
              toks[i - 2].kind == TokKind::kIdent &&
              !is_cpp_keyword(toks[i - 2].text) &&
              (i - 2 == fn.body_begin || toks[i - 3].is_punct(";") ||
               toks[i - 3].is_punct("{") || toks[i - 3].is_punct("}"))) {
            // Re-fetch into an existing variable: `name = recv.acc(...)`.
            kills.push_back({toks[i - 2].text, i - 2});
            if (by_value_binds) {
              bindings.push_back({toks[i - 2].text, receiver, last, i,
                                  call_close + 1, toks[i].line});
            }
          }
          const bool binds =
              !decl.names.empty() && (decl.is_reference || by_value_binds);
          if (binds) {
            for (const auto name : decl.names) {
              bindings.push_back({name, receiver, last, i,
                                  call_close + 1, toks[i].line});
            }
          }
        }
        i = chain.end;
        continue;
      }

      // operator[] on a tracked object: a mutation (FlatMap may rehash)
      // and, with `auto& v = m[k]`, a reference binding.
      if (config.subscript_mutates && is_tracked_name(last) &&
          chain.end < fn.body_end && toks[chain.end].is_punct("[")) {
        const std::string receiver =
            chain_text(toks, chain, chain.parts.size());
        const std::size_t close =
            match_punct(toks, chain.end, "[", "]", fn.body_end);
        mutations.push_back(
            {receiver, "operator[]", i, close + 1, toks[i].line});
        if (i > fn.body_begin && toks[i - 1].is_punct("=")) {
          DeclInfo decl = parse_decl(toks, i - 1, fn.body_begin);
          if (!decl.names.empty() && decl.is_reference) {
            for (const auto name : decl.names) {
              bindings.push_back({name, receiver, "operator[]", i,
                                  close + 1, toks[i].line});
            }
          }
        }
        i = chain.end;
      }
    }

    // A binding is dead once its receiver is mutated again; any later
    // use of the bound name is a finding.
    for (const Binding& b : bindings) {
      for (const Mutation& m : mutations) {
        if (m.receiver != b.receiver) continue;
        if (m.start <= b.rhs_end) continue;  // the originating call itself
        // Superseded before the mutation took effect: every later use of
        // the name sees the re-fetched value.
        bool rebound = false;
        for (const Kill& k : kills) {
          if (k.name == b.name && k.pos > b.name_pos && k.pos < m.end) {
            rebound = true;
            break;
          }
        }
        if (rebound) break;
        const auto is_kill_at = [&](std::size_t pos) {
          for (const Kill& k : kills) {
            if (k.pos == pos) return true;
          }
          return false;
        };
        for (std::size_t u = m.end; u < fn.body_end; ++u) {
          if (toks[u].kind != TokKind::kIdent || toks[u].text != b.name) {
            continue;
          }
          if (is_kill_at(u)) break;  // rebound: the stale value is gone
          out.push_back(
              {file.path, toks[u].line, std::string(config.rule),
               "'" + std::string(b.name) + "' (from '" + b.receiver +
                   "." + std::string(b.method) + "', line " +
                   std::to_string(b.line) + ") used after mutating '" +
                   m.receiver + "." + std::string(m.method) +
                   "' on line " + std::to_string(m.line) + " — " +
                   std::string(config.use_after_text)});
          break;  // one finding per binding/mutation pair
        }
        break;  // report against the first invalidating mutation only
      }
    }
  }
}

}  // namespace piggyweb::analysis

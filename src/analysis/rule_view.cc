// View / span lifetime after an advancing call (view-after-advance).
//
// Two families of short-lived views exist in the replay pipeline:
//
//   * trace::TraceView::window() and BinaryTraceReader::read_batch()
//     hand out spans that are only valid until the next window() /
//     read_batch() call on the same object — streaming sources decode
//     into one reused buffer (stream.h's documented lifetime rule).
//   * util::InternTable::views() returns a span over the id->view
//     table; interning more strings may reallocate that table, so the
//     span must be re-fetched after any intern()/reserve().
//
// util::StringArena is deliberately NOT tracked: its payload never
// relocates, so arena string_views stay valid across appends — that
// stability is the arena's contract, not an oversight here.
//
// Both checks ride the shared invalidation core; this file supplies the
// type and method tables.
#include <string_view>
#include <vector>

#include "analysis/invalidation.h"
#include "analysis/rules.h"

namespace piggyweb::analysis {

namespace {

// --- TraceView family -----------------------------------------------

bool view_advancing_method(std::string_view m) {
  return m == "window" || m == "read_batch";
}

// Spans are returned by value; keeping even a by-value copy across the
// next advancing call dangles, so there is no reference_only table.
bool view_accessor_method(std::string_view m) {
  return m == "window" || m == "read_batch";
}

// --- InternTable ------------------------------------------------------

bool intern_mutating_method(std::string_view m) {
  return m == "intern" || m == "reserve";
}

bool intern_accessor_method(std::string_view m) { return m == "views"; }

}  // namespace

void check_view_invalidation(const Project& /*project*/,
                             const SourceFile& file,
                             std::vector<Diagnostic>& out) {
  if (!file.path.starts_with("src/") && !file.path.starts_with("tools/") &&
      !file.path.starts_with("bench/")) {
    return;
  }

  InvalidationConfig views;
  views.rule = "view-after-advance";
  views.type_names = {"TraceView", "MaterializedTraceView",
                      "StreamingTraceSource", "LimitedTraceView",
                      "BinaryTraceReader"};
  views.mutating = view_advancing_method;
  views.accessor = view_accessor_method;
  views.use_after_text =
      "the next window invalidates the previous span (streaming sources "
      "decode into one reused buffer)";
  views.range_for_text =
      "advancing the view invalidates the spans being iterated";
  check_invalidation(file, views, out);

  InvalidationConfig intern;
  intern.rule = "view-after-advance";
  intern.type_names = {"InternTable"};
  intern.mutating = intern_mutating_method;
  intern.accessor = intern_accessor_method;
  intern.use_after_text =
      "interning may reallocate the id->view table; re-fetch views() "
      "after inserts";
  intern.range_for_text =
      "interning may reallocate the id->view table being iterated";
  check_invalidation(file, intern, out);
}

}  // namespace piggyweb::analysis

#include "analysis/project.h"

#include <algorithm>

#include "analysis/lexer.h"
#include "analysis/rules.h"

namespace piggyweb::analysis {

std::vector<IncludeRef> includes_of(const SourceFile& file) {
  std::vector<IncludeRef> out;
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].is_punct("#") && toks[i + 1].is_ident("include") &&
        toks[i + 2].kind == TokKind::kString) {
      out.push_back({toks[i + 2].text, toks[i + 2].line});
    }
  }
  return out;
}

SourceFile& Project::add_file(std::string path, std::string text) {
  auto file = std::make_unique<SourceFile>();
  file->path = std::move(path);
  file->text = std::move(text);
  file->tokens = lex(file->text);
  SourceFile& ref = *file;
  by_path_[ref.path] = file.get();
  files_.push_back(std::move(file));
  return ref;
}

const SourceFile* Project::find(std::string_view path) const {
  const auto it = by_path_.find(path);
  return it == by_path_.end() ? nullptr : it->second;
}

std::string Project::resolve_include(const SourceFile& from,
                                     std::string_view target) const {
  std::string candidate = "src/";
  candidate += target;
  if (find(candidate) != nullptr) return candidate;
  const auto slash = from.path.rfind('/');
  if (slash != std::string::npos) {
    candidate = from.path.substr(0, slash + 1);
    candidate += target;
    if (find(candidate) != nullptr) return candidate;
  }
  candidate = target;
  if (find(candidate) != nullptr) return candidate;
  return {};
}

// Names a header "provides": macro definitions, type names, alias
// names, anything that looks like a function name or an initialized
// declaration. Deliberately over-approximates — a symbol wrongly listed
// as provided can only make the unused-include check more conservative.
void Project::collect_own_symbols(const SourceFile& file,
                                  std::set<std::string_view>& out) const {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.is_punct("#") && i + 2 < toks.size() &&
        toks[i + 1].is_ident("define") &&
        toks[i + 2].kind == TokKind::kIdent) {
      out.insert(toks[i + 2].text);
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum") {
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].is_ident("class")) ++j;  // enum class
      if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
          !is_cpp_keyword(toks[j].text)) {
        out.insert(toks[j].text);
      }
      continue;
    }
    if (t.text == "using") {
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].is_ident("namespace")) continue;
      if (j + 1 < toks.size() && toks[j].kind == TokKind::kIdent &&
          toks[j + 1].is_punct("=")) {
        out.insert(toks[j].text);  // using Alias = ...;
        continue;
      }
      // using foo::bar; — provides the last identifier before ';'.
      std::string_view last;
      while (j < toks.size() && !toks[j].is_punct(";")) {
        if (toks[j].kind == TokKind::kIdent) last = toks[j].text;
        ++j;
      }
      if (!last.empty()) out.insert(last);
      continue;
    }
    if (is_cpp_keyword(t.text)) continue;
    const bool prev_declish =
        i > 0 && (toks[i - 1].kind == TokKind::kIdent ||
                  toks[i - 1].is_punct(">") || toks[i - 1].is_punct("*") ||
                  toks[i - 1].is_punct("&"));
    if (i + 1 < toks.size()) {
      const Token& next = toks[i + 1];
      if (next.is_punct("(")) {
        // Function declaration or call — over-approximate as provided.
        out.insert(t.text);
      } else if (prev_declish &&
                 (next.is_punct("=") || next.is_punct("{") ||
                  next.is_punct(";"))) {
        out.insert(t.text);  // initialized / declared entity
      }
    }
  }
}

const std::set<std::string_view>* Project::provided_symbols(
    std::string_view path) const {
  const auto cached = provided_cache_.find(path);
  if (cached != provided_cache_.end()) return &cached->second;
  const SourceFile* file = find(path);
  if (file == nullptr) return nullptr;
  // Insert the (empty) entry first: it doubles as the cycle guard for
  // mutually-including headers. std::map node stability keeps `entry`
  // valid across the recursive inserts below.
  auto& entry = provided_cache_[std::string(path)];
  collect_own_symbols(*file, entry);
  for (const IncludeRef& inc : includes_of(*file)) {
    if (inc.spec.size() < 2 || inc.spec.front() != '"') continue;
    const std::string resolved = resolve_include(
        *file, inc.spec.substr(1, inc.spec.size() - 2));
    if (resolved.empty()) continue;
    if (const auto* sub = provided_symbols(resolved)) {
      entry.insert(sub->begin(), sub->end());
    }
  }
  return &entry;
}

const ScanResult& Project::scan_of(const SourceFile& file) const {
  const auto cached = scan_cache_.find(file.path);
  if (cached != scan_cache_.end()) return cached->second;
  return scan_cache_.emplace(file.path, scan_file(file)).first->second;
}

std::vector<std::string> Project::include_closure(
    const SourceFile& file) const {
  std::vector<std::string> order{file.path};
  std::set<std::string, std::less<>> seen{file.path};
  for (std::size_t next = 0; next < order.size(); ++next) {
    const SourceFile* f = find(order[next]);
    if (f == nullptr) continue;
    for (const IncludeRef& inc : includes_of(*f)) {
      if (inc.spec.size() < 2 || inc.spec.front() != '"') continue;
      const std::string resolved =
          resolve_include(*f, inc.spec.substr(1, inc.spec.size() - 2));
      if (resolved.empty() || !seen.insert(resolved).second) continue;
      order.push_back(resolved);
    }
  }
  return order;
}

std::vector<Diagnostic> Project::analyze() const {
  std::vector<Diagnostic> out;
  for (const auto& file : files_) {
    check_determinism(*this, *file, out);
    check_flatmap_safety(*this, *file, out);
    check_contracts(*this, *file, out);
    check_headers(*this, *file, out);
    check_concurrency(*this, *file, out);
    check_view_invalidation(*this, *file, out);
    check_serializer_symmetry(*this, *file, out);
  }
  std::sort(out.begin(), out.end(), diagnostic_less);
  return out;
}

}  // namespace piggyweb::analysis

// A lexed project source file plus the path/module classification the
// rule set keys on. Paths are repo-relative with '/' separators
// ("src/sim/engine.h", "tests/util_rng_test.cc"); the module of a file
// under src/ is its subsystem directory ("src/sim"), and the top-level
// directory otherwise ("tests", "bench", "tools").
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/token.h"

namespace piggyweb::analysis {

struct SourceFile {
  std::string path;           // repo-relative
  std::string text;           // owned; tokens view into it
  std::vector<Token> tokens;

  bool is_header() const { return path.ends_with(".h"); }
};

struct Diagnostic {
  std::string file;
  std::uint32_t line = 0;
  std::string rule;
  std::string message;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

// "file:line: [rule-id] message" — the machine-readable text form.
std::string format_diagnostic(const Diagnostic& d);

// Stable report order: by file, then line, then rule, then message.
bool diagnostic_less(const Diagnostic& a, const Diagnostic& b);

// Module of a repo-relative path: "src/<subsystem>" for files under
// src/, else the first path component.
std::string_view module_of(std::string_view path);

// File name without directories or a trailing .h/.cc extension;
// "src/sim/engine.cc" -> "engine".
std::string_view stem_of(std::string_view path);

}  // namespace piggyweb::analysis

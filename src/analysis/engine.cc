#include "analysis/engine.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

namespace piggyweb::analysis {

namespace fs = std::filesystem;

namespace {

bool skip_directory(const std::string& name) {
  return name == ".git" || name == ".claude" || name == "testdata" ||
         name.starts_with("build");
}

bool analyzable(const std::string& name) {
  return name.ends_with(".h") || name.ends_with(".cc");
}

void walk(const fs::path& dir, const fs::path& root,
          std::vector<std::string>& out) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_directory()) {
      if (!skip_directory(name)) walk(entry.path(), root, out);
      continue;
    }
    if (!entry.is_regular_file() || !analyzable(name)) continue;
    out.push_back(entry.path().lexically_relative(root).generic_string());
  }
}

bool matches(const Suppression& s, const Diagnostic& d) {
  return s.rule == d.rule && s.path == d.file &&
         (s.line == 0 || s.line == d.line);
}

}  // namespace

std::vector<Suppression> parse_suppressions(
    std::string_view text, std::vector<std::string>& errors) {
  std::vector<Suppression> out;
  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (line.empty()) continue;
    const std::size_t space = line.find_first_of(" \t");
    if (space == std::string_view::npos) {
      errors.push_back("line " + std::to_string(lineno) +
                       ": expected 'rule-id path[:line]'");
      continue;
    }
    Suppression s;
    s.rule = std::string(line.substr(0, space));
    std::string_view rest = line.substr(space + 1);
    while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
      rest.remove_prefix(1);
    }
    const std::size_t colon = rest.rfind(':');
    if (colon != std::string_view::npos && colon + 1 < rest.size() &&
        rest.find_first_not_of("0123456789", colon + 1) ==
            std::string_view::npos) {
      s.line = static_cast<std::uint32_t>(
          std::stoul(std::string(rest.substr(colon + 1))));
      rest = rest.substr(0, colon);
    }
    if (rest.empty()) {
      errors.push_back("line " + std::to_string(lineno) + ": empty path");
      continue;
    }
    s.path = std::string(rest);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> collect_tree(const AnalyzeOptions& options) {
  std::vector<std::string> out;
  const fs::path root(options.root);
  for (const auto& sub : options.subdirs) {
    const fs::path dir = root / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    walk(dir, root, out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

AnalyzeResult analyze_paths(const AnalyzeOptions& options,
                            const std::vector<std::string>& paths) {
  Project project;
  const fs::path root(options.root);
  std::size_t loaded = 0;
  for (const auto& rel : paths) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "piggyweb_staticcheck: cannot read %s\n",
                   rel.c_str());
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    project.add_file(rel, std::move(buf).str());
    ++loaded;
  }
  AnalyzeResult result;
  result.files_scanned = loaded;
  for (auto& d : project.analyze()) {
    bool suppressed = false;
    for (const Suppression& s : options.suppressions) {
      if (matches(s, d)) {
        suppressed = true;
        break;
      }
    }
    (suppressed ? result.suppressed : result.diagnostics)
        .push_back(std::move(d));
  }
  return result;
}

AnalyzeResult analyze_tree(const AnalyzeOptions& options) {
  return analyze_paths(options, collect_tree(options));
}

}  // namespace piggyweb::analysis

#include "analysis/functions.h"

#include "analysis/lexer.h"

namespace piggyweb::analysis {

namespace {

enum class ScopeKind { kNamespace, kClass, kEnum, kOther };

struct Scope {
  ScopeKind kind = ScopeKind::kOther;
  bool public_access = true;
  std::string_view name;  // class name for kClass scopes, else empty
};

// Member types that exempt a declaration from atomic-plain-mix: the
// synchronization primitives themselves, atomics (already safe), and
// const/static members (never raced).
bool type_exempt_ident(std::string_view t) {
  return t == "mutex" || t == "shared_mutex" || t == "recursive_mutex" ||
         t == "timed_mutex" || t == "shared_timed_mutex" ||
         t == "condition_variable" || t == "condition_variable_any" ||
         t == "once_flag" || t == "atomic" || t == "atomic_flag" ||
         t == "const" || t == "constexpr" || t == "static" ||
         t == "friend" || t == "unique_lock" || t == "lock_guard";
}

class Scanner {
 public:
  explicit Scanner(const SourceFile& file) : toks_(file.tokens) {}

  ScanResult run() {
    while (i_ < toks_.size()) {
      const Token& t = toks_[i_];
      if (t.is_punct("#")) {
        skip_directive();
      } else if (t.is_punct("{")) {
        scopes_.push_back({ScopeKind::kOther, true, {}});
        ++i_;
      } else if (t.is_punct("}")) {
        if (!scopes_.empty()) scopes_.pop_back();
        ++i_;
      } else if (t.kind != TokKind::kIdent) {
        ++i_;
      } else if (t.text == "namespace") {
        enter_namespace();
      } else if (t.text == "class" || t.text == "struct" ||
                 t.text == "union") {
        enter_class(t.text != "class");
      } else if (t.text == "enum") {
        enter_enum();
      } else if ((t.text == "public" || t.text == "protected" ||
                  t.text == "private") &&
                 peek_punct(i_ + 1, ":") && !scopes_.empty() &&
                 scopes_.back().kind == ScopeKind::kClass) {
        scopes_.back().public_access = t.text == "public";
        i_ += 2;
      } else if (t.text == "template") {
        ++i_;
        skip_angles();
      } else if (t.text == "using" || t.text == "typedef") {
        skip_to_semicolon();
      } else if (t.text.starts_with("PW_") && peek_punct(i_ + 1, "(")) {
        handle_annotation_macro();
      } else if (in_code_scope() && peek_punct(i_ + 1, "(") &&
                 !is_cpp_keyword(t.text)) {
        try_function();
      } else {
        if (at_class_scope()) maybe_member(i_);
        ++i_;
      }
    }
    return std::move(out_);
  }

 private:
  bool in_code_scope() const {
    return scopes_.empty() || scopes_.back().kind == ScopeKind::kNamespace ||
           scopes_.back().kind == ScopeKind::kClass;
  }

  bool at_class_scope() const {
    return !scopes_.empty() && scopes_.back().kind == ScopeKind::kClass;
  }

  bool peek_punct(std::size_t idx, std::string_view text) const {
    return idx < toks_.size() && toks_[idx].is_punct(text);
  }

  // Lexical class scopes, outermost first (unnamed scopes skipped).
  std::vector<std::string_view> class_path() const {
    std::vector<std::string_view> path;
    for (const Scope& s : scopes_) {
      if (s.kind == ScopeKind::kClass && !s.name.empty()) {
        path.push_back(s.name);
      }
    }
    return path;
  }

  // Skip the rest of a preprocessor directive (same physical line; a
  // backslash-spliced continuation advances the line and ends the skip,
  // which is safe because macro bodies here are brace-balanced).
  void skip_directive() {
    const std::uint32_t line = toks_[i_].line;
    ++i_;
    while (i_ < toks_.size() && toks_[i_].line == line) ++i_;
  }

  void skip_to_semicolon() {
    std::size_t depth = 0;
    while (i_ < toks_.size()) {
      const Token& t = toks_[i_];
      if (t.is_punct("{") || t.is_punct("(")) ++depth;
      if (t.is_punct("}") || t.is_punct(")")) {
        if (depth == 0) return;  // stray closer: leave it to the main loop
        --depth;
      }
      if (depth == 0 && t.is_punct(";")) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  // `template` already consumed; skip a balanced <...> block if present.
  void skip_angles() {
    if (!peek_punct(i_, "<")) return;
    std::size_t depth = 0;
    while (i_ < toks_.size()) {
      const Token& t = toks_[i_];
      if (t.is_punct("<")) ++depth;
      if (t.is_punct(">")) {
        if (--depth == 0) {
          ++i_;
          return;
        }
      }
      // Bail out rather than swallow scopes on a stray '<'.
      if (t.is_punct("{") || t.is_punct(";")) return;
      ++i_;
    }
  }

  void enter_namespace() {
    ++i_;
    while (i_ < toks_.size() && !toks_[i_].is_punct("{") &&
           !toks_[i_].is_punct(";")) {
      ++i_;
    }
    if (i_ < toks_.size() && toks_[i_].is_punct("{")) {
      scopes_.push_back({ScopeKind::kNamespace, true, {}});
      ++i_;
    } else if (i_ < toks_.size()) {
      ++i_;  // namespace alias
    }
  }

  // Distinguish a class definition head (`struct Name [final]
  // [: bases] {`) from forward declarations, variables of class type,
  // and elaborated type specifiers. Only a definition pushes a scope.
  void enter_class(bool default_public) {
    std::size_t j = i_ + 1;
    // Optional attributes.
    while (j + 1 < toks_.size() && toks_[j].is_punct("[") &&
           toks_[j + 1].is_punct("[")) {
      while (j < toks_.size() && !toks_[j].is_punct("]")) ++j;
      j += 2;
    }
    // Optional (possibly qualified, possibly templated) name.
    bool saw_name = false;
    std::string_view class_name;
    while (j < toks_.size() &&
           (toks_[j].kind == TokKind::kIdent || toks_[j].is_punct("::"))) {
      if (toks_[j].kind == TokKind::kIdent) {
        if (toks_[j].text == "final") break;
        if (saw_name && !peek_punct(j - 1, "::")) {
          // Two plain identifiers in a row: `struct Foo f ...` — a
          // variable declaration, not a class head.
          ++i_;
          return;
        }
        saw_name = true;
        class_name = toks_[j].text;
      }
      ++j;
      if (j < toks_.size() && toks_[j].is_punct("<")) {
        // Specialization arguments: skip the angle block.
        std::size_t depth = 0;
        while (j < toks_.size()) {
          if (toks_[j].is_punct("<")) ++depth;
          if (toks_[j].is_punct(">") && --depth == 0) {
            ++j;
            break;
          }
          if (toks_[j].is_punct("{") || toks_[j].is_punct(";")) break;
          ++j;
        }
      }
    }
    if (j < toks_.size() && toks_[j].is_ident("final")) ++j;
    if (j < toks_.size() && toks_[j].is_punct(":")) {
      while (j < toks_.size() && !toks_[j].is_punct("{") &&
             !toks_[j].is_punct(";")) {
        ++j;
      }
    }
    if (j < toks_.size() && toks_[j].is_punct("{")) {
      scopes_.push_back({ScopeKind::kClass, default_public, class_name});
      i_ = j + 1;
    } else {
      ++i_;  // forward declaration / elaborated specifier
    }
  }

  void enter_enum() {
    std::size_t j = i_ + 1;
    while (j < toks_.size() && !toks_[j].is_punct("{") &&
           !toks_[j].is_punct(";")) {
      ++j;
    }
    if (j < toks_.size() && toks_[j].is_punct("{")) {
      scopes_.push_back({ScopeKind::kEnum, true, {}});
      i_ = j + 1;
    } else {
      i_ = j < toks_.size() ? j + 1 : j;
    }
  }

  // Matching closer for the opener at `open`; toks_.size() if unmatched.
  std::size_t match(std::size_t open, std::string_view opener,
                    std::string_view closer) const {
    std::size_t depth = 0;
    for (std::size_t j = open; j < toks_.size(); ++j) {
      if (toks_[j].is_punct(opener)) ++depth;
      if (toks_[j].is_punct(closer) && --depth == 0) return j;
    }
    return toks_.size();
  }

  // Normalized annotation-argument text for the macro call whose '(' is
  // at `open`: token texts concatenated with '->' folded to '.', so
  // `stripe->mutex` and `stripe.mutex` compare equal.
  std::string normalize_args(std::size_t open, std::size_t close) const {
    std::string out;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (toks_[j].is_punct("->")) {
        out += '.';
      } else {
        out += toks_[j].text;
      }
    }
    return out;
  }

  // toks_[i_] is a `PW_*` identifier followed by '('. At class scope a
  // PW_GUARDED_BY annotates the member declared immediately before it;
  // everything else (PW_EXPECT at namespace scope, stray macros) is
  // skipped without being mistaken for a function named PW_*.
  void handle_annotation_macro() {
    const std::size_t close = match(i_ + 1, "(", ")");
    if (toks_[i_].text == "PW_GUARDED_BY" && at_class_scope() && i_ > 0 &&
        toks_[i_ - 1].kind == TokKind::kIdent &&
        !is_cpp_keyword(toks_[i_ - 1].text)) {
      out_.guarded_members.push_back({class_path(), toks_[i_ - 1].text,
                                      normalize_args(i_ + 1, close),
                                      toks_[i_ - 1].line});
    }
    i_ = close < toks_.size() ? close + 1 : toks_.size();
  }

  // toks_[idx] is a plain identifier at class scope that is not a
  // function candidate. Record it as a data member when it matches the
  // declaration shape `<type tokens> name (';' | '=' | '{' | PW_*)`.
  void maybe_member(std::size_t idx) {
    const Token& t = toks_[idx];
    if (is_cpp_keyword(t.text)) return;
    if (idx == 0 || idx + 1 >= toks_.size()) return;
    const Token& prev = toks_[idx - 1];
    const bool declish_prev =
        prev.kind == TokKind::kIdent || prev.is_punct(">") ||
        prev.is_punct("*") || prev.is_punct("&") || prev.is_punct("]");
    if (!declish_prev) return;
    if (prev.kind == TokKind::kIdent && is_cpp_keyword(prev.text) &&
        prev.text != "const" && prev.text != "unsigned" &&
        prev.text != "signed" && prev.text != "long" &&
        prev.text != "short" && prev.text != "int" && prev.text != "char" &&
        prev.text != "bool" && prev.text != "double" &&
        prev.text != "float" && prev.text != "mutable") {
      return;
    }
    const Token& next = toks_[idx + 1];
    const bool decl_end =
        next.is_punct(";") || next.is_punct("=") || next.is_punct("{") ||
        (next.kind == TokKind::kIdent && next.text.starts_with("PW_"));
    if (!decl_end) return;
    // Walk the declaration's type tokens back to the statement start.
    bool exempt = false;
    for (std::size_t j = idx; j-- > 0;) {
      const Token& b = toks_[j];
      if (b.is_punct(";") || b.is_punct("{") || b.is_punct("}") ||
          b.is_punct(":")) {
        break;
      }
      if (b.kind == TokKind::kIdent && type_exempt_ident(b.text)) {
        exempt = true;
        break;
      }
    }
    out_.members.push_back({class_path(), t.text, exempt, t.line});
  }

  // toks_[i_] is a non-keyword identifier followed by '('.
  void try_function() {
    const std::size_t name_idx = i_;
    // The token before the name decides whether this can be a
    // declarator: initializers (`= f(x)`), call arguments (`, f(x)`),
    // and operators can't start one.
    if (name_idx > 0) {
      const Token& prev = toks_[name_idx - 1];
      const bool ok_prev =
          prev.kind == TokKind::kIdent || prev.is_punct("::") ||
          prev.is_punct(">") || prev.is_punct("*") || prev.is_punct("&") ||
          prev.is_punct(";") || prev.is_punct("}") || prev.is_punct("{") ||
          prev.is_punct("]") || prev.is_punct("~") || prev.is_punct("#");
      if (!ok_prev ||
          (prev.kind == TokKind::kIdent && is_cpp_keyword(prev.text) &&
           (prev.text == "return" || prev.text == "sizeof" ||
            prev.text == "new" || prev.text == "delete" ||
            prev.text == "throw" || prev.text == "case"))) {
        i_ = match(name_idx + 1, "(", ")") + 1;
        return;
      }
    }
    const std::size_t close = match(name_idx + 1, "(", ")");
    if (close >= toks_.size()) {
      i_ = toks_.size();
      return;
    }
    // Skip declarator suffixes after the parameter list, collecting any
    // PW_* annotation macros along the way.
    std::vector<AnnotationInfo> annotations;
    std::size_t j = close + 1;
    while (j < toks_.size()) {
      const Token& t = toks_[j];
      if (t.is_ident("const") || t.is_ident("override") ||
          t.is_ident("final") || t.is_punct("&")) {
        ++j;
      } else if (t.is_ident("noexcept")) {
        ++j;
        if (peek_punct(j, "(")) j = match(j, "(", ")") + 1;
      } else if (t.kind == TokKind::kIdent && t.text.starts_with("PW_") &&
                 peek_punct(j + 1, "(")) {
        const std::size_t args_close = match(j + 1, "(", ")");
        annotations.push_back(
            {t.text, normalize_args(j + 1, args_close)});
        j = args_close + 1;
      } else if (t.is_punct("->")) {
        // Trailing return type: identifiers, qualifiers, templates.
        ++j;
        while (j < toks_.size() &&
               (toks_[j].kind == TokKind::kIdent ||
                toks_[j].is_punct("::") || toks_[j].is_punct("*") ||
                toks_[j].is_punct("&"))) {
          ++j;
          if (peek_punct(j, "<")) {
            std::size_t depth = 0;
            while (j < toks_.size()) {
              if (toks_[j].is_punct("<")) ++depth;
              if (toks_[j].is_punct(">") && --depth == 0) {
                ++j;
                break;
              }
              ++j;
            }
          }
        }
      } else {
        break;
      }
    }
    // Constructor member-init list: `: member(expr), member{expr} ... {`.
    if (j < toks_.size() && toks_[j].is_punct(":")) {
      ++j;
      while (j < toks_.size() && !toks_[j].is_punct("{")) {
        if (toks_[j].is_punct("(")) {
          j = match(j, "(", ")") + 1;
        } else if (toks_[j].kind == TokKind::kIdent &&
                   peek_punct(j + 1, "{")) {
          j = match(j + 1, "{", "}") + 1;
        } else if (toks_[j].is_punct(";") || toks_[j].is_punct("}")) {
          break;  // not an init list after all
        } else {
          ++j;
        }
      }
    }
    if (j >= toks_.size() || !toks_[j].is_punct("{")) {
      // Declaration, `= default`, macro invocation, call, variable —
      // no body to record. An annotated declaration is still worth
      // remembering: the definition may live in another file.
      if (!annotations.empty()) {
        AnnotatedDecl decl;
        decl.classes = qualified_classes(name_idx);
        decl.name = toks_[name_idx].text;
        decl.params = parse_params(name_idx + 1, close);
        decl.annotations = std::move(annotations);
        out_.annotated_decls.push_back(std::move(decl));
      }
      i_ = close + 1;
      return;
    }
    const std::size_t body_open = j;
    const std::size_t body_close = match(body_open, "{", "}");

    FunctionDef def;
    def.name = toks_[name_idx].text;
    def.line = toks_[name_idx].line;
    def.params = parse_params(name_idx + 1, close);
    def.body_begin = body_open + 1;
    def.body_end = body_close;
    def.at_class_scope =
        !scopes_.empty() && scopes_.back().kind == ScopeKind::kClass;
    def.is_public = true;
    def.classes = qualified_classes(name_idx);
    def.annotations = std::move(annotations);
    for (const Scope& s : scopes_) {
      if (s.kind == ScopeKind::kClass && !s.public_access) {
        def.is_public = false;
      }
    }
    out_.functions.push_back(std::move(def));
    i_ = body_close < toks_.size() ? body_close + 1 : toks_.size();
  }

  // Lexical class scopes plus the `A::B::` qualifiers preceding the
  // function name at `name_idx` (out-of-line definitions), outermost
  // first. A destructor's '~' is skipped; qualifiers that are template
  // specializations (`FlatMap<K, V>::`) contribute the template's name.
  std::vector<std::string_view> qualified_classes(
      std::size_t name_idx) const {
    std::vector<std::string_view> quals;
    std::size_t k = name_idx;
    if (k > 0 && toks_[k - 1].is_punct("~")) --k;
    while (k >= 2 && toks_[k - 1].is_punct("::")) {
      std::size_t q = k - 2;
      if (toks_[q].is_punct(">")) {
        // Backward-skip the template argument block.
        std::size_t depth = 0;
        while (true) {
          if (toks_[q].is_punct(">")) ++depth;
          if (toks_[q].is_punct("<") && --depth == 0) break;
          if (q == 0) return quals;
          --q;
        }
        if (q == 0) return quals;
        --q;  // the template's name
      }
      if (toks_[q].kind != TokKind::kIdent || is_cpp_keyword(toks_[q].text)) {
        break;
      }
      quals.insert(quals.begin(), toks_[q].text);
      k = q;
    }
    std::vector<std::string_view> path = class_path();
    path.insert(path.end(), quals.begin(), quals.end());
    return path;
  }

  // Parameters between toks_[open] == '(' and toks_[close] == ')'.
  std::vector<ParamInfo> parse_params(std::size_t open,
                                      std::size_t close) const {
    std::vector<ParamInfo> params;
    std::size_t piece_begin = open + 1;
    std::size_t depth = 0;
    for (std::size_t j = open + 1; j <= close; ++j) {
      const Token& t = toks_[j];
      const bool at_end = j == close;
      if (!at_end) {
        if (t.is_punct("(") || t.is_punct("<") || t.is_punct("[") ||
            t.is_punct("{")) {
          ++depth;
          continue;
        }
        if (t.is_punct(")") || t.is_punct(">") || t.is_punct("]") ||
            t.is_punct("}")) {
          if (depth > 0) --depth;
          continue;
        }
      }
      if (at_end || (depth == 0 && t.is_punct(","))) {
        if (j > piece_begin) params.push_back(param_name(piece_begin, j));
        piece_begin = j + 1;
      }
    }
    return params;
  }

  // The declared name within one parameter piece [begin, end), or an
  // empty name for unnamed parameters. The name is the trailing
  // identifier of a multi-token piece; a lone identifier (or one
  // reached through '::') is a type.
  ParamInfo param_name(std::size_t begin, std::size_t end) const {
    std::size_t stop = end;
    std::size_t depth = 0;
    for (std::size_t j = begin; j < end; ++j) {  // strip default argument
      const Token& t = toks_[j];
      if (t.is_punct("(") || t.is_punct("<")) ++depth;
      if (t.is_punct(")") || t.is_punct(">")) {
        if (depth > 0) --depth;
      }
      if (depth == 0 && t.is_punct("=")) {
        stop = j;
        break;
      }
    }
    if (stop - begin < 2) return {};
    std::size_t last = stop;
    while (last > begin) {
      --last;
      if (toks_[last].kind == TokKind::kIdent) break;
      if (!toks_[last].is_punct("[") && !toks_[last].is_punct("]")) {
        return {};  // piece ends in punctuation: `const Foo&` etc.
      }
    }
    if (toks_[last].kind != TokKind::kIdent) return {};
    if (is_cpp_keyword(toks_[last].text)) return {};
    if (last > begin && toks_[last - 1].is_punct("::")) return {};
    return {toks_[last].text};
  }

  const std::vector<Token>& toks_;
  std::size_t i_ = 0;
  std::vector<Scope> scopes_;
  ScanResult out_;
};

}  // namespace

std::vector<FunctionDef> scan_functions(const SourceFile& file) {
  return Scanner(file).run().functions;
}

ScanResult scan_file(const SourceFile& file) { return Scanner(file).run(); }

}  // namespace piggyweb::analysis

// A small, dependency-free C++ lexer for the project's own sources —
// the foundation every staticcheck rule matches against. It is not a
// compiler front end: it strips comments, collapses string/char
// literals (including raw strings and encoding prefixes) into opaque
// tokens, honors backslash-newline splices, and tracks line numbers.
// That is exactly enough to make token-pattern rules immune to the
// classic lint failure mode of matching text inside comments/strings.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/token.h"

namespace piggyweb::analysis {

// Tokenize `src`. The returned tokens view into `src`, which must
// outlive them. Unterminated literals/comments are tolerated (the
// partial literal becomes one token reaching end of input) so the lexer
// never rejects a file.
std::vector<Token> lex(std::string_view src);

// True for C++ keywords (and `final`/`override`, which rule matchers
// also never want to treat as names).
bool is_cpp_keyword(std::string_view ident);

}  // namespace piggyweb::analysis

// Determinism rules. The project's reproducibility contract: randomness
// flows only through explicitly seeded util::Rng, simulated time only
// through util::TimePoint, and hot-module tables are util::FlatMap so
// metric results cannot drift with container iteration order. (The obs
// layer is exempt — wall-clock durations there are declared
// non-deterministic metrics.)
#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lexer.h"
#include "analysis/rules.h"

namespace piggyweb::analysis {

namespace {

constexpr std::array<std::string_view, 4> kUnorderedNames = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

bool is_unordered_name(std::string_view text) {
  for (const auto name : kUnorderedNames) {
    if (text == name) return true;
  }
  return false;
}

// Identifiers that are findings anywhere they appear (types whose mere
// construction is nondeterministic).
bool banned_type(std::string_view text) {
  return text == "random_device" || text == "system_clock";
}

// Identifiers that are findings when called.
bool banned_call(std::string_view text) {
  return text == "rand" || text == "srand" || text == "rand_r" ||
         text == "drand48" || text == "time" || text == "clock" ||
         text == "gettimeofday" || text == "localtime" ||
         text == "gmtime";
}

// Raw memory-mapping syscalls: allowed only inside util::MmapFile (the
// os_calls_allowed() allowlist), so mapping lifetime stays RAII-managed
// in one audited place.
bool mmap_family_call(std::string_view text) {
  return text == "mmap" || text == "mmap64" || text == "munmap" ||
         text == "mremap" || text == "madvise" ||
         text == "posix_madvise" || text == "mprotect" ||
         text == "msync" || text == "mlock" || text == "munlock" ||
         text == "shm_open" || text == "shm_unlink";
}

// Skip a balanced <...> block starting at `i` (which must be '<');
// returns the index just past the closing '>'. Gives up at braces or
// semicolons so a stray comparison cannot swallow the file.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  std::size_t depth = 0;
  while (i < toks.size()) {
    if (toks[i].is_punct("<")) ++depth;
    if (toks[i].is_punct(">") && --depth == 0) return i + 1;
    if (toks[i].is_punct("{") || toks[i].is_punct(";")) return i;
    ++i;
  }
  return i;
}

// Names of variables declared with an unordered container type:
// `std::unordered_map<...> name` (members, locals, parameters).
std::vector<std::string_view> unordered_variable_names(
    const std::vector<Token>& toks) {
  std::vector<std::string_view> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !is_unordered_name(toks[i].text)) {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= toks.size() || !toks[j].is_punct("<")) continue;
    j = skip_angles(toks, j);
    while (j < toks.size() &&
           (toks[j].is_punct("&") || toks[j].is_punct("*"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
        !is_cpp_keyword(toks[j].text)) {
      names.push_back(toks[j].text);
    }
  }
  return names;
}

bool contains_name(const std::vector<std::string_view>& names,
                   std::string_view text) {
  for (const auto name : names) {
    if (name == text) return true;
  }
  return false;
}

// A banned-call name directly preceded by a type name is a function
// declaration (`long time() const { ... }`), not a call: in expression
// context no plain identifier can appear immediately before the callee.
bool is_declaration_context(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  const Token& prev = toks[i - 1];
  if (prev.kind != TokKind::kIdent) return false;
  if (!is_cpp_keyword(prev.text)) return true;  // e.g. `Duration time()`
  constexpr std::array<std::string_view, 12> kTypeKeywords = {
      "auto", "bool",  "char",   "const",    "double", "float",
      "int",  "long",  "short",  "signed",   "unsigned", "void"};
  for (const auto kw : kTypeKeywords) {
    if (prev.text == kw) return true;
  }
  return false;
}

std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].is_punct("(")) ++depth;
    if (toks[j].is_punct(")") && --depth == 0) return j;
  }
  return toks.size();
}

std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].is_punct("{")) ++depth;
    if (toks[j].is_punct("}") && --depth == 0) return j;
  }
  return toks.size();
}

// Does [begin, end) write into an ordered sink: push_back/emplace_back/
// append, a stream insertion (`<<`), or string append (`+=`)?
bool body_feeds_ordered_output(const std::vector<Token>& toks,
                               std::size_t begin, std::size_t end) {
  for (std::size_t j = begin; j < end; ++j) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kIdent &&
        (t.text == "push_back" || t.text == "emplace_back" ||
         t.text == "append")) {
      return true;
    }
    if (j + 1 < end && t.is_punct("<") && toks[j + 1].is_punct("<")) {
      return true;
    }
    if (j + 1 < end && t.is_punct("+") && toks[j + 1].is_punct("=")) {
      return true;
    }
  }
  return false;
}

}  // namespace

void check_determinism(const Project& /*project*/, const SourceFile& file,
                       std::vector<Diagnostic>& out) {
  const auto& toks = file.tokens;
  const auto module = module_of(file.path);

  // (a) Banned nondeterministic APIs.
  if (!determinism_exempt(file.path)) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      const bool member_access =
          i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("->"));
      if (banned_type(t.text) && !member_access) {
        out.push_back({file.path, t.line, "det-banned-call",
                       "nondeterministic API 'std::" + std::string(t.text) +
                           "' — seed explicitly through util::Rng "
                           "(allowed only in util/rng, util/time, obs)"});
        continue;
      }
      if (banned_call(t.text) && !member_access &&
          !is_declaration_context(toks, i) && i + 1 < toks.size() &&
          toks[i + 1].is_punct("(")) {
        out.push_back({file.path, t.line, "det-banned-call",
                       "wall-clock/global-state call '" +
                           std::string(t.text) +
                           "()' — use util::TimePoint simulation time or "
                           "util::Rng (allowed only in util/rng, "
                           "util/time, obs)"});
      }
    }
  }

  // (a2) Raw memory-mapping syscalls confined to util::MmapFile. Unlike
  // (a) this applies to every scanned file, tests and benches included:
  // there is no "cold module" story for a leaked mapping.
  if (!os_calls_allowed(file.path)) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || !mmap_family_call(t.text)) continue;
      const bool member_access =
          i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("->"));
      // A '*' or '&' before the name is a declarator (`void* mmap(...)`):
      // no real call site multiplies by an mmap-family function.
      const bool declarator =
          i > 0 && (toks[i - 1].is_punct("*") || toks[i - 1].is_punct("&"));
      if (member_access || declarator || is_declaration_context(toks, i) ||
          !toks[i + 1].is_punct("(")) {
        continue;
      }
      out.push_back({file.path, t.line, "os-call-confined",
                     "raw '" + std::string(t.text) +
                         "()' — map files through util::MmapFile "
                         "(allowed only in src/util/mmap_file.{h,cc})"});
    }
  }

  // (b) unordered containers banned where FlatMap is mandated.
  if (flatmap_required(module)) {
    for (const Token& t : toks) {
      if (t.kind == TokKind::kIdent && is_unordered_name(t.text)) {
        out.push_back(
            {file.path, t.line, "det-unordered-container",
             "'std::" + std::string(t.text) + "' in hot module '" +
                 std::string(module) +
                 "' — use util::FlatMap (DESIGN.md §7); cold modules are "
                 "allowlisted by module in analysis/rules.cc"});
      }
    }
  }

  // (c) Iterating an unordered container into an ordered sink. Applies
  // to src/ and tools/ (tests and benches iterate reference
  // unordered_maps on purpose, in differential suites that sort).
  if (!file.path.starts_with("src/") && !file.path.starts_with("tools/")) {
    return;
  }
  const auto unordered_vars = unordered_variable_names(toks);
  if (unordered_vars.empty()) return;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].is_ident("for") || !toks[i + 1].is_punct("(")) continue;
    const std::size_t close = match_paren(toks, i + 1);
    if (close >= toks.size()) break;
    // Find the range-for ':' at paren depth 1 (not '::').
    std::size_t colon = toks.size();
    std::size_t depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (toks[j].is_punct("(") || toks[j].is_punct("[") ||
          toks[j].is_punct("{")) {
        ++depth;
      } else if (toks[j].is_punct(")") || toks[j].is_punct("]") ||
                 toks[j].is_punct("}")) {
        --depth;
      } else if (depth == 1 && toks[j].is_punct(":")) {
        colon = j;
        break;
      }
    }
    if (colon >= close) continue;
    bool iterates_unordered = false;
    std::string_view var;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind == TokKind::kIdent &&
          contains_name(unordered_vars, toks[j].text)) {
        iterates_unordered = true;
        var = toks[j].text;
        break;
      }
    }
    if (!iterates_unordered) continue;
    if (close + 1 >= toks.size() || !toks[close + 1].is_punct("{")) continue;
    const std::size_t body_close = match_brace(toks, close + 1);
    if (body_feeds_ordered_output(toks, close + 2, body_close)) {
      out.push_back(
          {file.path, toks[i].line, "det-unordered-iteration",
           "iterating unordered container '" + std::string(var) +
               "' into ordered output — iteration order is not part of "
               "the determinism contract; sort first or use FlatMap with "
               "a sorted copy"});
    }
  }
}

}  // namespace piggyweb::analysis

// Heuristic function-definition scanner shared by the contract-coverage,
// flat-map-safety and concurrency rules. It walks a token stream with an
// explicit scope stack (namespace / class / enum / other braces),
// recognizes function definitions at namespace or class scope — including
// out-of-line `Type Class::name(...)` definitions and constructors with
// member-init lists — and records the token range of each body. Bodies
// are not recursed into, so lambdas and local classes never produce
// nested entries.
//
// On top of the function list, scan_file() collects the concurrency
// annotations the lock-guarded-state rule consumes: PW_GUARDED_BY member
// declarations, PW_REQUIRES on definitions and body-less declarations,
// PW_RETURNS_LOCK guard factories, and a conservative list of plain data
// members per class (for the atomic-plain-mix rule).
//
// This is a lint heuristic, not a parser: pathological macro tricks can
// hide functions from it. The fixture suite pins the constructs that
// appear in this codebase.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/source.h"

namespace piggyweb::analysis {

struct ParamInfo {
  std::string_view name;  // empty for unnamed parameters
};

// A `PW_<NAME>(args)` annotation in a function's declarator suffix.
struct AnnotationInfo {
  std::string_view macro;  // "PW_REQUIRES", "PW_RETURNS_LOCK", ...
  std::string args;        // normalized argument text ('->' folded to '.')
};

struct FunctionDef {
  std::string_view name;
  std::uint32_t line = 0;          // line of the name token
  std::vector<ParamInfo> params;
  std::size_t body_begin = 0;      // first token index inside the body
  std::size_t body_end = 0;        // index of the closing '}' token
  bool at_class_scope = false;
  bool is_public = true;  // every enclosing class section is public
  // Enclosing class names, outermost first: lexical class scopes plus
  // the `Class::` qualifiers of an out-of-line definition. Empty for
  // free functions.
  std::vector<std::string_view> classes;
  std::vector<AnnotationInfo> annotations;
};

// A data member annotated `Type name PW_GUARDED_BY(mutex);`.
struct GuardedMemberDecl {
  std::vector<std::string_view> classes;  // enclosing classes, outer first
  std::string_view member;
  std::string mutex;  // normalized annotation argument
  std::uint32_t line = 0;
};

// A body-less declaration carrying PW_REQUIRES / PW_RETURNS_LOCK (the
// definition may live in another file, annotated or not).
struct AnnotatedDecl {
  std::vector<std::string_view> classes;
  std::string_view name;
  std::vector<ParamInfo> params;
  std::vector<AnnotationInfo> annotations;
};

// A plain (not type-exempt, not annotated) data member of a class —
// collected for every class so atomic-plain-mix can reason about the
// members of annotated classes. `type_exempt` is true for members whose
// declared type mentions a synchronization primitive, an atomic, or a
// const/static/constexpr qualifier.
struct MemberDecl {
  std::vector<std::string_view> classes;
  std::string_view name;
  bool type_exempt = false;
  std::uint32_t line = 0;
};

struct ScanResult {
  std::vector<FunctionDef> functions;
  std::vector<GuardedMemberDecl> guarded_members;
  std::vector<AnnotatedDecl> annotated_decls;
  std::vector<MemberDecl> members;
};

// All function definitions (bodies only; pure declarations are skipped).
std::vector<FunctionDef> scan_functions(const SourceFile& file);

// Functions plus the annotation/member facts above.
ScanResult scan_file(const SourceFile& file);

}  // namespace piggyweb::analysis

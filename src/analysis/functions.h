// Heuristic function-definition scanner shared by the contract-coverage
// and flat-map-safety rules. It walks a token stream with an explicit
// scope stack (namespace / class / enum / other braces), recognizes
// function definitions at namespace or class scope — including
// out-of-line `Type Class::name(...)` definitions and constructors with
// member-init lists — and records the token range of each body. Bodies
// are not recursed into, so lambdas and local classes never produce
// nested entries.
//
// This is a lint heuristic, not a parser: pathological macro tricks can
// hide functions from it. The fixture suite pins the constructs that
// appear in this codebase.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/source.h"

namespace piggyweb::analysis {

struct ParamInfo {
  std::string_view name;  // empty for unnamed parameters
};

struct FunctionDef {
  std::string_view name;
  std::uint32_t line = 0;          // line of the name token
  std::vector<ParamInfo> params;
  std::size_t body_begin = 0;      // first token index inside the body
  std::size_t body_end = 0;        // index of the closing '}' token
  bool at_class_scope = false;
  bool is_public = true;  // every enclosing class section is public
};

// All function definitions (bodies only; pure declarations are skipped).
std::vector<FunctionDef> scan_functions(const SourceFile& file);

}  // namespace piggyweb::analysis

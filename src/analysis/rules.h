// The staticcheck rule catalog. Each checker appends diagnostics for
// one file; Project::analyze() drives all of them. Scope policy (which
// modules a rule applies to) lives here so it is one table to read and
// one place to change — per-module allowlisting is deliberate: a cold
// module is exempted as a whole, never a single call site (that is what
// the suppression file is for, and CI requires it to stay empty).
#pragma once

#include <string_view>
#include <vector>

#include "analysis/project.h"
#include "analysis/source.h"

namespace piggyweb::analysis {

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

// Every rule id with a one-line summary, in report order.
const std::vector<RuleInfo>& rule_catalog();

// --- scope policy -----------------------------------------------------

// Hot modules where util::FlatMap is mandated and std::unordered_*
// is a finding. Cold modules (trace, server, net, http, analysis, ...)
// are allowlisted by module.
bool flatmap_required(std::string_view module);

// Hot modules where public functions with index-like parameters must
// carry a PW_EXPECT / PW_EXPECT_BOUNDS contract.
bool contracts_required(std::string_view module);

// Files allowed to touch wall-clock / global-random APIs: the seeded
// RNG itself, simulation time, and the observability layer (whose
// wall-clock readings are explicitly non-deterministic metrics).
bool determinism_exempt(std::string_view path);

// Files allowed to issue raw memory-mapping syscalls (mmap/munmap/
// madvise/...): only util::MmapFile, the repo's single RAII wrapper.
// Everything else takes a MmapFile (or a string_view of its bytes), so
// mapping lifetime and error handling stay in one audited place.
bool os_calls_allowed(std::string_view path);

// --- rule families ----------------------------------------------------

// det-banned-call, det-unordered-container, det-unordered-iteration.
void check_determinism(const Project& project, const SourceFile& file,
                       std::vector<Diagnostic>& out);

// flatmap-ref-after-mutate: a reference/iterator obtained from a
// FlatMap used after a mutating call on the same map in the same
// function, or mutation of a FlatMap inside a range-for over it.
void check_flatmap_safety(const Project& project, const SourceFile& file,
                          std::vector<Diagnostic>& out);

// contract-missing-expect: public hot-module functions taking
// index-like parameters without a contract macro in the body.
void check_contracts(const Project& project, const SourceFile& file,
                     std::vector<Diagnostic>& out);

// hdr-pragma-once, hdr-unused-include.
void check_headers(const Project& project, const SourceFile& file,
                   std::vector<Diagnostic>& out);

// lock-guarded-state: access to a PW_GUARDED_BY member without its
// mutex held; atomic-plain-mix: plain member of an annotated class
// written under a lock but also accessed lock-free.
void check_concurrency(const Project& project, const SourceFile& file,
                       std::vector<Diagnostic>& out);

// view-after-advance: TraceView window / read_batch spans and
// InternTable::views() used after an advancing/mutating call on the
// same receiver (shared invalidation core with the flatmap rule).
void check_view_invalidation(const Project& project, const SourceFile& file,
                             std::vector<Diagnostic>& out);

// persist-serializer-symmetry: serialize_X / deserialize_X codec-op
// streams in src/persist/ must mirror each other in order and type.
void check_serializer_symmetry(const Project& project,
                               const SourceFile& file,
                               std::vector<Diagnostic>& out);

}  // namespace piggyweb::analysis

// The set of sources under analysis, plus the cross-file facts rules
// need: include resolution within the project tree and the (transitive)
// symbols a project header provides, used by the unused-include check.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/functions.h"
#include "analysis/source.h"

namespace piggyweb::analysis {

struct IncludeRef {
  std::string_view spec;  // `"util/expect.h"` or `<vector>`, quotes kept
  std::uint32_t line = 0;
};

// All #include directives of a file, in order.
std::vector<IncludeRef> includes_of(const SourceFile& file);

class Project {
 public:
  Project() = default;
  Project(const Project&) = delete;
  Project& operator=(const Project&) = delete;

  // Lex and register a file under its repo-relative path.
  SourceFile& add_file(std::string path, std::string text);

  const SourceFile* find(std::string_view path) const;
  const std::vector<std::unique_ptr<SourceFile>>& files() const {
    return files_;
  }

  // Resolve a quoted include spec from `from` to a project path, or ""
  // if the target is not part of the analyzed set. Tries the src/ root
  // (the project convention), then the includer's directory.
  std::string resolve_include(const SourceFile& from,
                              std::string_view target) const;

  // Symbols the project header at `path` provides, including symbols of
  // project headers it includes (transitively; cycle-safe). Returns
  // nullptr when `path` is not in the project.
  const std::set<std::string_view>* provided_symbols(
      std::string_view path) const;

  // Cached scan_file() result for a registered file (functions,
  // guarded-member annotations, plain members).
  const ScanResult& scan_of(const SourceFile& file) const;

  // `file`'s path plus every project file it (transitively) includes,
  // breadth-first starting with the file itself; cycle-safe.
  std::vector<std::string> include_closure(const SourceFile& file) const;

  // Run every rule over every file; diagnostics in report order.
  std::vector<Diagnostic> analyze() const;

 private:
  void collect_own_symbols(const SourceFile& file,
                           std::set<std::string_view>& out) const;

  std::vector<std::unique_ptr<SourceFile>> files_;
  std::map<std::string, SourceFile*, std::less<>> by_path_;
  mutable std::map<std::string, std::set<std::string_view>, std::less<>>
      provided_cache_;
  mutable std::map<std::string, ScanResult, std::less<>> scan_cache_;
};

}  // namespace piggyweb::analysis

// Contract coverage. Public functions in hot modules that accept an
// index-like parameter (a raw position into some table or shard array)
// must validate it with PW_EXPECT / PW_EXPECT_BOUNDS before use — an
// out-of-range index in the hot path corrupts metrics silently instead
// of failing fast.
#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/functions.h"
#include "analysis/rules.h"

namespace piggyweb::analysis {

namespace {

constexpr std::array<std::string_view, 8> kIndexNames = {
    "index", "idx", "pos", "offset", "rank", "slot", "shard", "level"};

constexpr std::array<std::string_view, 8> kIndexSuffixes = {
    "_index", "_idx", "_pos", "_offset", "_rank", "_slot", "_shard",
    "_level"};

bool index_like(std::string_view name) {
  for (const auto exact : kIndexNames) {
    if (name == exact) return true;
  }
  for (const auto suffix : kIndexSuffixes) {
    if (name.size() > suffix.size() && name.ends_with(suffix)) return true;
  }
  return false;
}

bool contract_macro(std::string_view text) {
  return text == "PW_EXPECT" || text == "PW_EXPECT_BOUNDS" ||
         text == "PW_ENSURE";
}

}  // namespace

void check_contracts(const Project& /*project*/, const SourceFile& file,
                     std::vector<Diagnostic>& out) {
  if (!contracts_required(module_of(file.path))) return;
  const auto& toks = file.tokens;

  for (const FunctionDef& fn : scan_functions(file)) {
    // Free functions in a header are part of the module's public
    // surface; class members must be in a public section.
    if (fn.at_class_scope && !fn.is_public) continue;
    std::string_view offending;
    for (const ParamInfo& param : fn.params) {
      if (index_like(param.name)) {
        offending = param.name;
        break;
      }
    }
    if (offending.empty()) continue;
    bool has_contract = false;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (toks[i].kind == TokKind::kIdent && contract_macro(toks[i].text)) {
        has_contract = true;
        break;
      }
    }
    if (has_contract) continue;
    out.push_back(
        {file.path, fn.line, "contract-missing-expect",
         "public function '" + std::string(fn.name) +
             "' takes index-like parameter '" + std::string(offending) +
             "' but its body has no PW_EXPECT / PW_EXPECT_BOUNDS"});
  }
}

}  // namespace piggyweb::analysis

#include "analysis/rules.h"

namespace piggyweb::analysis {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"det-banned-call",
       "wall-clock / global-random APIs outside util/rng, util/time, obs"},
      {"det-unordered-container",
       "std::unordered_{map,set} in hot modules where util::FlatMap is "
       "mandated"},
      {"det-unordered-iteration",
       "iteration over an unordered container feeding ordered output"},
      {"os-call-confined",
       "raw mmap/munmap/madvise-family syscalls outside util::MmapFile"},
      {"flatmap-ref-after-mutate",
       "FlatMap reference/iterator used after a mutating call (mutation "
       "invalidates all references)"},
      {"contract-missing-expect",
       "public hot-module function with an index-like parameter but no "
       "PW_EXPECT/PW_EXPECT_BOUNDS in its body"},
      {"hdr-pragma-once", "header does not start with #pragma once"},
      {"hdr-unused-include",
       "include whose (transitive) symbols are never referenced"},
      {"lock-guarded-state",
       "access to a PW_GUARDED_BY member without holding the named mutex "
       "(RAII guard, PW_REQUIRES, or PW_RETURNS_LOCK factory)"},
      {"atomic-plain-mix",
       "plain member of a lock-annotated class written under a lock but "
       "also accessed with no lock held"},
      {"view-after-advance",
       "TraceView window/read_batch span or InternTable views() used "
       "after an advancing call invalidated it"},
      {"persist-serializer-symmetry",
       "serialize_*/deserialize_* codec-op sequences in src/persist that "
       "do not mirror each other"},
  };
  return kCatalog;
}

bool flatmap_required(std::string_view module) {
  return module == "src/sim" || module == "src/volume" ||
         module == "src/proxy" || module == "src/core";
}

bool contracts_required(std::string_view module) {
  return flatmap_required(module);
}

bool determinism_exempt(std::string_view path) {
  return path.starts_with("src/obs/") || path == "src/util/rng.h" ||
         path == "src/util/rng.cc" || path == "src/util/time.h";
}

bool os_calls_allowed(std::string_view path) {
  return path == "src/util/mmap_file.h" || path == "src/util/mmap_file.cc";
}

}  // namespace piggyweb::analysis

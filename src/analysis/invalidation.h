// Shared ref-after-mutate dataflow core. Several container-like types in
// this codebase hand out references, iterators, or spans that a later
// call on the same object invalidates (FlatMap rehashes, TraceView
// reuses its decode buffer, InternTable reallocates its view table).
// The per-rule logic is identical — track bindings obtained from an
// accessor call, track later mutating calls on the same receiver, flag
// any use of a binding after its receiver mutates — so it lives here and
// the rules supply a small config: which declared type marks tracked
// variables, which methods mutate, which accessors produce bindings.
//
// The walk is per-function-body, token-level, and receiver-sensitive
// (mutating `state.volume_of` does not invalidate a reference into
// `pending_`). Bodies come from the scope-stack function scanner.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/source.h"

namespace piggyweb::analysis {

struct InvalidationConfig {
  std::string_view rule;  // diagnostic rule id

  // A variable is tracked when its declaration mentions one of these
  // type names: `FlatMap<K, V> m`, `TraceView& view`,
  // `std::unique_ptr<StreamingTraceSource> src`.
  std::vector<std::string_view> type_names;

  // Require `<...>` template arguments right after the type name
  // (FlatMap is always written with them; a bare mention is not a
  // declaration).
  bool require_template_args = false;

  // `m[k]` counts as a mutation (FlatMap's operator[] may rehash) and,
  // bound by reference, as a binding.
  bool subscript_mutates = false;

  // Flag mutating calls on the receiver inside a range-for over it.
  bool check_range_for = false;

  bool (*mutating)(std::string_view method) = nullptr;
  bool (*accessor)(std::string_view method) = nullptr;

  // Accessors whose plain-copy result is safe to keep (`auto v =
  // m.at(k)` copies the value): binding them requires an explicit '&'.
  // Null means no accessor is copy-safe — even a by-value binding (a
  // span, an iterator) dangles after a mutation.
  bool (*reference_only)(std::string_view method) = nullptr;

  // Message tails: "... used after mutating 'recv.m' on line N — <tail>"
  // and "... inside a range-for over 'recv' — <tail>".
  std::string_view use_after_text;
  std::string_view range_for_text;
};

void check_invalidation(const SourceFile& file,
                        const InvalidationConfig& config,
                        std::vector<Diagnostic>& out);

}  // namespace piggyweb::analysis

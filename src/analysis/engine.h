// Drives staticcheck over a source tree on disk: walks the analyzed
// directories, loads every .h/.cc into a Project, runs all rules, and
// applies the suppression file. The walker skips build output and the
// lint fixtures themselves (any directory named "testdata").
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/project.h"

namespace piggyweb::analysis {

// One `rule-id path[:line]` suppression entry. line == 0 matches every
// line of the file.
struct Suppression {
  std::string rule;
  std::string path;
  std::uint32_t line = 0;

  friend bool operator==(const Suppression&, const Suppression&) = default;
};

// Parse suppression-file text: one entry per line, '#' comments and
// blank lines ignored. Malformed lines are reported into `errors` as
// "line N: ..." strings and skipped.
std::vector<Suppression> parse_suppressions(std::string_view text,
                                            std::vector<std::string>& errors);

struct AnalyzeOptions {
  // Repo root on disk; analyzed paths are reported relative to it.
  std::string root = ".";
  // Subtrees to scan, relative to root.
  std::vector<std::string> subdirs = {"src", "tools", "bench", "tests"};
  std::vector<Suppression> suppressions;
};

struct AnalyzeResult {
  std::vector<Diagnostic> diagnostics;  // after suppression, report order
  std::vector<Diagnostic> suppressed;   // matched by a suppression entry
  std::size_t files_scanned = 0;
};

// Repo-relative paths of every analyzable file under options.subdirs,
// sorted. Skips directories named "testdata", ".git", ".claude", and
// any starting with "build".
std::vector<std::string> collect_tree(const AnalyzeOptions& options);

// Load `paths` (relative to options.root) and run every rule.
AnalyzeResult analyze_paths(const AnalyzeOptions& options,
                            const std::vector<std::string>& paths);

// collect_tree + analyze_paths.
AnalyzeResult analyze_tree(const AnalyzeOptions& options);

}  // namespace piggyweb::analysis

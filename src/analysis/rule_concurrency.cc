// Lock discipline (lock-guarded-state, atomic-plain-mix).
//
// Classes opt in by annotating members with PW_GUARDED_BY(mutex) — the
// no-op macros from util/expect.h. Per function body, a flow walk
// tracks which mutexes are held at every token:
//
//   * RAII guards: std::lock_guard / scoped_lock / unique_lock /
//     shared_lock declarations acquire their argument mutexes for the
//     rest of the enclosing brace scope (std::defer_lock defers until
//     an explicit .lock(); try_to_lock/adopt_lock count as held);
//   * guard.unlock() / guard.release() drop the guard's mutexes early,
//     plain mutex.lock()/.unlock() acquire/drop the receiver;
//   * a PW_REQUIRES(m) annotation holds m for the whole body;
//   * binding the result of a PW_RETURNS_LOCK(expr) guard factory holds
//     `expr` with the factory's parameter names substituted by the call
//     arguments (`auto l = lock_stripe(stripes_[i])` holds
//     `stripes_[i].mutex`).
//
// lock-guarded-state then flags any access to an annotated member
// without its mutex held. Accesses are receiver-sensitive: an
// unqualified (or this->) access checks against annotations of the
// function's own innermost class; a `recv.member` access checks
// annotations of nested/enclosed classes (FlightRecorder methods
// touching `ring.slots` must hold `ring.mutex`). Constructors and
// destructors are exempt — no concurrent access can exist yet/anymore.
//
// atomic-plain-mix piggybacks on the same walk: within a class that
// carries at least one PW_GUARDED_BY, a plain (non-atomic, non-const,
// unannotated) member that is written under a lock and also accessed
// with no lock held is flagged — it is racing and should be an atomic,
// be annotated, or have the unlocked access moved under the mutex.
//
// Annotations are gathered across the analyzed file's transitive
// project includes, so out-of-line .cc definitions see their header's
// annotations. Both rules are heuristic and flow-insensitive across
// calls; DESIGN.md §14 records the model and its limits.
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/functions.h"
#include "analysis/lexer.h"
#include "analysis/rules.h"

namespace piggyweb::analysis {

namespace {

bool guard_type(std::string_view t) {
  return t == "lock_guard" || t == "scoped_lock" || t == "unique_lock" ||
         t == "shared_lock";
}

std::size_t match_punct(const std::vector<Token>& toks, std::size_t open,
                        std::string_view opener, std::string_view closer,
                        std::size_t limit) {
  std::size_t depth = 0;
  for (std::size_t j = open; j < limit; ++j) {
    if (toks[j].is_punct(opener)) ++depth;
    if (toks[j].is_punct(closer) && --depth == 0) return j;
  }
  return limit;
}

// Token texts of [begin, end) concatenated, '->' folded to '.'.
std::string normalize_range(const std::vector<Token>& toks,
                            std::size_t begin, std::size_t end) {
  std::string out;
  for (std::size_t j = begin; j < end; ++j) {
    if (toks[j].is_punct("->")) {
      out += '.';
    } else {
      out += toks[j].text;
    }
  }
  return out;
}

// Top-level comma split of normalized argument text.
std::vector<std::string> split_args(const std::vector<Token>& toks,
                                    std::size_t open, std::size_t close) {
  std::vector<std::string> args;
  std::size_t piece = open + 1;
  std::size_t depth = 0;
  for (std::size_t j = open + 1; j <= close; ++j) {
    const Token& t = toks[j];
    const bool at_end = j == close;
    if (!at_end) {
      if (t.is_punct("(") || t.is_punct("<") || t.is_punct("[") ||
          t.is_punct("{")) {
        ++depth;
        continue;
      }
      if (t.is_punct(")") || t.is_punct(">") || t.is_punct("]") ||
          t.is_punct("}")) {
        if (depth > 0) --depth;
        continue;
      }
    }
    if (at_end || (depth == 0 && t.is_punct(","))) {
      if (j > piece) args.push_back(normalize_range(toks, piece, j));
      piece = j + 1;
    }
  }
  return args;
}

std::vector<std::string> split_on_commas(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  int depth = 0;
  for (std::size_t j = 0; j <= s.size(); ++j) {
    if (j < s.size() && (s[j] == '(' || s[j] == '[' || s[j] == '<')) ++depth;
    if (j < s.size() && (s[j] == ')' || s[j] == ']' || s[j] == '>')) --depth;
    if (j == s.size() || (depth == 0 && s[j] == ',')) {
      if (j > begin) parts.push_back(s.substr(begin, j - begin));
      begin = j + 1;
    }
  }
  return parts;
}

// Reconstruct the simple postfix receiver ending just before the '.' or
// '->' at `dot`: chains of identifiers, '::'/'.'/'->' separators, and
// balanced subscripts ('stripes_[i]', 'table.rings_[k]'). Returns ""
// for anything else (call results, parenthesized expressions) — the
// check then conservatively skips the access.
std::string receiver_before(const std::vector<Token>& toks, std::size_t dot,
                            std::size_t begin) {
  std::size_t start = dot;
  while (start > begin) {
    const Token& p = toks[start - 1];
    if (p.is_punct("]")) {
      std::size_t depth = 0;
      std::size_t k = start - 1;
      while (true) {
        if (toks[k].is_punct("]")) ++depth;
        if (toks[k].is_punct("[") && --depth == 0) break;
        if (k == begin) return {};
        --k;
      }
      if (k == begin) return {};
      start = k;
      continue;  // an identifier should precede the '['
    }
    if (p.kind == TokKind::kIdent && !is_cpp_keyword(p.text)) {
      --start;
      if (start > begin && (toks[start - 1].is_punct(".") ||
                            toks[start - 1].is_punct("->") ||
                            toks[start - 1].is_punct("::"))) {
        --start;
        continue;
      }
      break;
    }
    if (p.is_ident("this")) {
      --start;
      break;
    }
    return {};
  }
  return normalize_range(toks, start, dot);
}

// A guarded-member annotation, flattened for lookup by member name.
struct GuardedFact {
  std::vector<std::string_view> classes;
  std::string_view member;
  std::string mutex;
};

// PW_RETURNS_LOCK factory: binding its result acquires `mutex` with
// parameter names substituted by call-argument text.
struct FactoryFact {
  std::string_view name;
  std::vector<std::string_view> params;
  std::string mutex;
};

struct Facts {
  std::vector<GuardedFact> guarded;
  std::vector<FactoryFact> factories;
  // (innermost class or "", function name) -> PW_REQUIRES mutexes from
  // body-less declarations (the definition may be unannotated).
  std::map<std::pair<std::string_view, std::string_view>,
           std::vector<std::string>>
      requires_by_decl;
};

void add_factory(Facts& facts, std::string_view name,
                 const std::vector<ParamInfo>& params,
                 const std::string& mutex) {
  FactoryFact f;
  f.name = name;
  for (const ParamInfo& p : params) f.params.push_back(p.name);
  f.mutex = mutex;
  facts.factories.push_back(std::move(f));
}

void gather_facts(const Project& project, const SourceFile& file,
                  Facts& facts) {
  for (const std::string& path : project.include_closure(file)) {
    const SourceFile* f = project.find(path);
    if (f == nullptr) continue;
    const ScanResult& scan = project.scan_of(*f);
    for (const GuardedMemberDecl& g : scan.guarded_members) {
      facts.guarded.push_back({g.classes, g.member, g.mutex});
    }
    for (const AnnotatedDecl& d : scan.annotated_decls) {
      const std::string_view inner =
          d.classes.empty() ? std::string_view{} : d.classes.back();
      for (const AnnotationInfo& a : d.annotations) {
        if (a.macro == "PW_RETURNS_LOCK") {
          add_factory(facts, d.name, d.params, a.args);
        } else if (a.macro == "PW_REQUIRES") {
          auto& list = facts.requires_by_decl[{inner, d.name}];
          for (const std::string& m : split_on_commas(a.args)) {
            list.push_back(m);
          }
        }
      }
    }
    for (const FunctionDef& fn : scan.functions) {
      for (const AnnotationInfo& a : fn.annotations) {
        if (a.macro == "PW_RETURNS_LOCK") {
          add_factory(facts, fn.name, fn.params, a.args);
        }
      }
    }
  }
}

// One acquired lock. `guard` is the RAII variable's name (empty for a
// bare mutex.lock()); `depth` the brace depth of the acquisition, -1
// for whole-body PW_REQUIRES locks; inactive locks were declared with
// std::defer_lock and wait for guard.lock().
struct HeldLock {
  std::string mutex;
  std::string guard;
  int depth = 0;
  bool active = true;
};

// Substitute factory parameter names in its mutex expression with the
// call's argument text: params ["stripe"], mutex "stripe.mutex", args
// ["stripes_[i]"] -> "stripes_[i].mutex".
std::string substitute(const FactoryFact& factory,
                       const std::vector<std::string>& args) {
  for (std::size_t k = 0; k < factory.params.size() && k < args.size();
       ++k) {
    const std::string_view p = factory.params[k];
    if (p.empty()) continue;
    if (factory.mutex == p) return args[k];
    const std::string prefix = std::string(p) + ".";
    if (factory.mutex.starts_with(prefix)) {
      return args[k] + factory.mutex.substr(p.size());
    }
  }
  return factory.mutex;
}

// An access to a plain member of an annotated class, for the
// atomic-plain-mix aggregation.
struct PlainAccess {
  bool locked = false;
  bool write = false;
  std::uint32_t line = 0;
};

bool is_write_access(const std::vector<Token>& toks, std::size_t i,
                     std::size_t begin, std::size_t end) {
  if (i + 1 < end && toks[i + 1].is_punct("=") &&
      (i + 2 >= end || !toks[i + 2].is_punct("="))) {
    return true;  // m = x (not m == x)
  }
  if (i + 2 < end && toks[i + 2].is_punct("=") &&
      (toks[i + 1].is_punct("+") || toks[i + 1].is_punct("-") ||
       toks[i + 1].is_punct("*") || toks[i + 1].is_punct("/") ||
       toks[i + 1].is_punct("%") || toks[i + 1].is_punct("|") ||
       toks[i + 1].is_punct("&") || toks[i + 1].is_punct("^"))) {
    return true;  // m += x and friends
  }
  if (i + 2 < end &&
      ((toks[i + 1].is_punct("+") && toks[i + 2].is_punct("+")) ||
       (toks[i + 1].is_punct("-") && toks[i + 2].is_punct("-")))) {
    return true;  // m++
  }
  if (i >= begin + 2 &&
      ((toks[i - 1].is_punct("+") && toks[i - 2].is_punct("+")) ||
       (toks[i - 1].is_punct("-") && toks[i - 2].is_punct("-")))) {
    return true;  // ++m
  }
  return false;
}

}  // namespace

void check_concurrency(const Project& project, const SourceFile& file,
                       std::vector<Diagnostic>& out) {
  if (!file.path.starts_with("src/") && !file.path.starts_with("tools/") &&
      !file.path.starts_with("bench/")) {
    return;
  }
  Facts facts;
  gather_facts(project, file, facts);
  if (facts.guarded.empty()) return;
  const auto& toks = file.tokens;
  const ScanResult& scan = project.scan_of(file);

  // Classes (by full path) that directly carry an annotation: only
  // their plain members participate in atomic-plain-mix.
  const auto annotating_class = [&](const std::vector<std::string_view>&
                                        classes) {
    for (const GuardedFact& g : facts.guarded) {
      if (g.classes == classes) return true;
    }
    return false;
  };
  const auto member_annotated = [&](const std::vector<std::string_view>&
                                        classes,
                                    std::string_view name) {
    for (const GuardedFact& g : facts.guarded) {
      if (g.member == name && g.classes == classes) return true;
    }
    return false;
  };

  // (class path text, member) -> accesses, aggregated across the file.
  std::map<std::pair<std::string, std::string_view>,
           std::vector<PlainAccess>>
      plain_accesses;

  for (const FunctionDef& fn : scan.functions) {
    const std::string_view fn_class =
        fn.classes.empty() ? std::string_view{} : fn.classes.back();
    const bool ctor_or_dtor = !fn.classes.empty() && fn.name == fn_class;

    std::vector<HeldLock> held;
    for (const AnnotationInfo& a : fn.annotations) {
      if (a.macro != "PW_REQUIRES") continue;
      for (const std::string& m : split_on_commas(a.args)) {
        held.push_back({m, "", -1, true});
      }
    }
    const auto decl_requires =
        facts.requires_by_decl.find({fn_class, fn.name});
    if (decl_requires != facts.requires_by_decl.end()) {
      for (const std::string& m : decl_requires->second) {
        held.push_back({m, "", -1, true});
      }
    }

    const auto any_held = [&] {
      for (const HeldLock& l : held) {
        if (l.active) return true;
      }
      return false;
    };
    const auto mutex_held = [&](const std::string& mutex) {
      for (const HeldLock& l : held) {
        if (l.active && l.mutex == mutex) return true;
      }
      return false;
    };

    int depth = 0;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      const Token& t = toks[i];
      if (t.is_punct("{")) {
        ++depth;
        continue;
      }
      if (t.is_punct("}")) {
        --depth;
        std::erase_if(held,
                      [&](const HeldLock& l) { return l.depth > depth; });
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;

      // RAII guard declaration: guard_type [<...>] name (args) | {args}.
      if (guard_type(t.text)) {
        std::size_t j = i + 1;
        if (j < fn.body_end && toks[j].is_punct("<")) {
          std::size_t d = 0;
          while (j < fn.body_end) {
            if (toks[j].is_punct("<")) ++d;
            if (toks[j].is_punct(">") && --d == 0) {
              ++j;
              break;
            }
            if (toks[j].is_punct(";") || toks[j].is_punct("{")) break;
            ++j;
          }
        }
        if (j < fn.body_end && toks[j].kind == TokKind::kIdent &&
            !is_cpp_keyword(toks[j].text) && j + 1 < fn.body_end &&
            (toks[j + 1].is_punct("(") || toks[j + 1].is_punct("{"))) {
          const std::string guard_name(toks[j].text);
          const bool paren = toks[j + 1].is_punct("(");
          const std::size_t close =
              match_punct(toks, j + 1, paren ? "(" : "{",
                          paren ? ")" : "}", fn.body_end);
          bool deferred = false;
          std::vector<std::string> mutexes;
          for (std::string& arg : split_args(toks, j + 1, close)) {
            if (arg.find("defer_lock") != std::string::npos) {
              deferred = true;
            } else if (arg.find("adopt_lock") == std::string::npos &&
                       arg.find("try_to_lock") == std::string::npos) {
              mutexes.push_back(std::move(arg));
            }
          }
          for (std::string& m : mutexes) {
            held.push_back({std::move(m), guard_name, depth, !deferred});
          }
          i = close;
          continue;
        }
      }

      // guard/mutex method calls: .lock() / .unlock() / .release().
      if ((t.text == "lock" || t.text == "unlock" ||
           t.text == "release") &&
          i > fn.body_begin &&
          (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("->")) &&
          i + 1 < fn.body_end && toks[i + 1].is_punct("(")) {
        const std::string recv = receiver_before(toks, i - 1, fn.body_begin);
        if (!recv.empty()) {
          bool matched_guard = false;
          for (HeldLock& l : held) {
            if (!l.guard.empty() && l.guard == recv) {
              l.active = t.text == "lock";
              matched_guard = true;
            }
          }
          if (!matched_guard) {
            if (t.text == "lock") {
              held.push_back({recv, "", depth, true});
            } else {
              std::erase_if(held, [&](const HeldLock& l) {
                return l.guard.empty() && l.mutex == recv;
              });
            }
          }
        }
        i = match_punct(toks, i + 1, "(", ")", fn.body_end);
        continue;
      }

      // Binding a PW_RETURNS_LOCK factory result:
      //   auto l = lock_stripe(stripes_[i]);
      if (i + 1 < fn.body_end && toks[i + 1].is_punct("(")) {
        const FactoryFact* factory = nullptr;
        for (const FactoryFact& f : facts.factories) {
          if (f.name == t.text) {
            factory = &f;
            break;
          }
        }
        if (factory != nullptr) {
          // Walk back over `Class::` qualifiers to the '=' and the
          // bound guard's name.
          std::size_t start = i;
          while (start >= fn.body_begin + 2 &&
                 (toks[start - 1].is_punct("::") ||
                  toks[start - 1].is_punct(".") ||
                  toks[start - 1].is_punct("->")) &&
                 toks[start - 2].kind == TokKind::kIdent) {
            start -= 2;
          }
          if (start > fn.body_begin + 1 &&
              toks[start - 1].is_punct("=") &&
              toks[start - 2].kind == TokKind::kIdent) {
            const std::size_t close =
                match_punct(toks, i + 1, "(", ")", fn.body_end);
            const std::vector<std::string> args =
                split_args(toks, i + 1, close);
            held.push_back({substitute(*factory, args),
                            std::string(toks[start - 2].text), depth,
                            true});
            i = close;
            continue;
          }
        }
      }

      // Guarded-member access?
      std::string receiver;  // empty: unqualified or this->
      bool qualified = false;
      if (i > fn.body_begin &&
          (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("->"))) {
        receiver = receiver_before(toks, i - 1, fn.body_begin);
        if (receiver.empty()) continue;  // call result etc. — skip
        if (receiver == "this") {
          receiver.clear();
        } else {
          qualified = true;
        }
      } else if (i > fn.body_begin && toks[i - 1].is_punct("::")) {
        continue;  // qualified name, not a member access
      }

      const GuardedFact* fact = nullptr;
      for (const GuardedFact& g : facts.guarded) {
        if (g.member != t.text) continue;
        if (!qualified) {
          if (!fn.classes.empty() && fn_class == g.classes.back()) {
            fact = &g;
            break;
          }
        } else {
          if (fn.classes.empty()) continue;
          bool related = fn_class == g.classes.back();
          for (const std::string_view c : g.classes) {
            if (fn_class == c) related = true;
          }
          if (related) {
            fact = &g;
            break;
          }
        }
      }
      if (fact != nullptr) {
        if (!ctor_or_dtor) {
          const std::string required =
              qualified ? receiver + "." + fact->mutex : fact->mutex;
          if (!mutex_held(required)) {
            out.push_back(
                {file.path, t.line, "lock-guarded-state",
                 "'" + std::string(t.text) + "' is guarded by '" +
                     required +
                     "' (PW_GUARDED_BY) but accessed without holding it "
                     "— take a lock_guard/scoped_lock, or mark the "
                     "function PW_REQUIRES(" +
                     required + ")"});
          }
        }
        continue;
      }

      // Plain-member access of an annotating class (atomic-plain-mix).
      if (!qualified && !fn.classes.empty() && !ctor_or_dtor) {
        for (const MemberDecl& m : scan.members) {
          if (m.name != t.text) continue;
          if (m.type_exempt) continue;
          if (m.classes.empty() || m.classes.back() != fn_class) continue;
          if (!annotating_class(m.classes)) continue;
          if (member_annotated(m.classes, m.name)) continue;
          std::string class_key;
          for (const std::string_view c : m.classes) {
            if (!class_key.empty()) class_key += "::";
            class_key += c;
          }
          plain_accesses[{std::move(class_key), m.name}].push_back(
              {any_held(),
               is_write_access(toks, i, fn.body_begin, fn.body_end),
               t.line});
          break;
        }
      }
    }
  }

  for (const auto& [key, accesses] : plain_accesses) {
    std::uint32_t locked_write_line = 0;
    const PlainAccess* unlocked = nullptr;
    for (const PlainAccess& a : accesses) {
      if (a.locked && a.write && locked_write_line == 0) {
        locked_write_line = a.line;
      }
      if (!a.locked && unlocked == nullptr) unlocked = &a;
    }
    if (locked_write_line != 0 && unlocked != nullptr) {
      out.push_back(
          {file.path, unlocked->line, "atomic-plain-mix",
           "'" + std::string(key.second) + "' of '" + key.first +
               "' is written under a lock (line " +
               std::to_string(locked_write_line) +
               ") but accessed here with no lock held — make it a "
               "std::atomic, annotate it PW_GUARDED_BY, or move this "
               "access under the mutex"});
    }
  }
}

}  // namespace piggyweb::analysis

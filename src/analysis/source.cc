#include "analysis/source.h"

#include <tuple>

namespace piggyweb::analysis {

std::string format_diagnostic(const Diagnostic& d) {
  std::string out = d.file;
  out += ':';
  out += std::to_string(d.line);
  out += ": [";
  out += d.rule;
  out += "] ";
  out += d.message;
  return out;
}

bool diagnostic_less(const Diagnostic& a, const Diagnostic& b) {
  return std::tie(a.file, a.line, a.rule, a.message) <
         std::tie(b.file, b.line, b.rule, b.message);
}

std::string_view module_of(std::string_view path) {
  const auto first = path.find('/');
  if (first == std::string_view::npos) return path;
  if (path.substr(0, first) != "src") return path.substr(0, first);
  const auto second = path.find('/', first + 1);
  return second == std::string_view::npos ? path
                                          : path.substr(0, second);
}

std::string_view stem_of(std::string_view path) {
  const auto slash = path.rfind('/');
  std::string_view name =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  const auto dot = name.rfind('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

}  // namespace piggyweb::analysis

// Token stream produced by the project lexer. Comments never become
// tokens; string/char literals become single opaque tokens (their
// contents never leak identifiers into rule matching). Every token's
// text is a view into the owning SourceFile's text buffer.
#pragma once

#include <cstdint>
#include <string_view>

namespace piggyweb::analysis {

enum class TokKind : std::uint8_t {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (including separators/suffixes)
  kString,  // "...", R"(...)" with prefixes, and #include <...> specs
  kChar,    // '...'
  kPunct,   // operators/punctuation; "::" and "->" are single tokens
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string_view text;
  std::uint32_t line = 1;

  bool is(TokKind k, std::string_view t) const {
    return kind == k && text == t;
  }
  bool is_ident(std::string_view t) const { return is(TokKind::kIdent, t); }
  bool is_punct(std::string_view t) const { return is(TokKind::kPunct, t); }
};

}  // namespace piggyweb::analysis

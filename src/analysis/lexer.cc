#include "analysis/lexer.h"

#include <cctype>
#include <string_view>
#include <unordered_set>

namespace piggyweb::analysis {

namespace {

bool ident_start(char c) {
  return c == '_' || std::isalpha(static_cast<unsigned char>(c)) != 0;
}
bool ident_char(char c) {
  return c == '_' || std::isalnum(static_cast<unsigned char>(c)) != 0;
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    if (src_.substr(0, 3) == "\xef\xbb\xbf") i_ = 3;  // UTF-8 BOM
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
      } else if (c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
                 c == '\v') {
        ++i_;
      } else if (splice_at(i_)) {
        skip_splice();
      } else if (c == '/' && peek(1) == '/') {
        line_comment();
      } else if (c == '/' && peek(1) == '*') {
        block_comment();
      } else if (c == '"') {
        string_literal(i_, TokKind::kString);
      } else if (c == '\'') {
        string_literal(i_, TokKind::kChar);
      } else if (digit(c) || (c == '.' && digit(peek(1)))) {
        number();
      } else if (ident_start(c)) {
        identifier();
      } else {
        punct();
      }
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  // Backslash immediately followed by a (possibly \r\n) newline.
  bool splice_at(std::size_t pos) const {
    if (pos >= src_.size() || src_[pos] != '\\') return false;
    const std::size_t next = pos + 1;
    if (next < src_.size() && src_[next] == '\n') return true;
    return next + 1 < src_.size() && src_[next] == '\r' &&
           src_[next + 1] == '\n';
  }

  void skip_splice() {
    ++i_;                              // backslash
    if (src_[i_] == '\r') ++i_;       // optional CR
    ++i_;                              // newline
    ++line_;
  }

  void emit(TokKind kind, std::size_t begin, std::size_t end,
            std::uint32_t line) {
    out_.push_back({kind, src_.substr(begin, end - begin), line});
  }

  void line_comment() {
    i_ += 2;
    while (i_ < src_.size()) {
      if (splice_at(i_)) {
        skip_splice();  // comment continues on the next line
      } else if (src_[i_] == '\n') {
        break;  // newline handled by the main loop
      } else {
        ++i_;
      }
    }
  }

  void block_comment() {
    i_ += 2;
    while (i_ < src_.size()) {
      if (src_[i_] == '*' && peek(1) == '/') {
        i_ += 2;
        return;
      }
      if (src_[i_] == '\n') ++line_;
      ++i_;
    }
  }

  // Scans a quoted literal starting at src_[i_] (a quote); the emitted
  // token begins at `begin` so encoding prefixes stay inside it. An
  // unescaped newline ends the (ill-formed) literal without being
  // consumed, so one bad quote cannot swallow the rest of the file.
  void string_literal(std::size_t begin, TokKind kind) {
    const char quote = src_[i_];
    const std::uint32_t line = line_;
    ++i_;
    while (i_ < src_.size()) {
      if (src_[i_] == '\\') {
        if (splice_at(i_)) {
          skip_splice();
        } else {
          i_ += 2;  // escape sequence; may run past end, clamped below
        }
      } else if (src_[i_] == quote) {
        ++i_;
        break;
      } else if (src_[i_] == '\n') {
        break;
      } else {
        ++i_;
      }
    }
    if (i_ > src_.size()) i_ = src_.size();
    emit(kind, begin, i_, line);
  }

  // R"delim( ... )delim" with the prefix (if any) already consumed;
  // `begin` is the start of the whole literal including the prefix.
  void raw_string(std::size_t begin) {
    const std::uint32_t line = line_;
    ++i_;  // opening quote
    const std::size_t delim_begin = i_;
    while (i_ < src_.size() && src_[i_] != '(') ++i_;
    const std::string_view delim =
        src_.substr(delim_begin, i_ - delim_begin);
    if (i_ < src_.size()) ++i_;  // '('
    while (i_ < src_.size()) {
      if (src_[i_] == ')' &&
          src_.substr(i_ + 1, delim.size()) == delim &&
          i_ + 1 + delim.size() < src_.size() &&
          src_[i_ + 1 + delim.size()] == '"') {
        i_ += delim.size() + 2;
        break;
      }
      if (src_[i_] == '\n') ++line_;
      ++i_;
    }
    emit(TokKind::kString, begin, i_, line);
  }

  void number() {
    const std::size_t begin = i_;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
          (peek(1) == '+' || peek(1) == '-')) {
        i_ += 2;
      } else if (ident_char(c) || c == '.' || c == '\'') {
        ++i_;
      } else {
        break;
      }
    }
    emit(TokKind::kNumber, begin, i_, line_);
  }

  void identifier() {
    const std::size_t begin = i_;
    while (i_ < src_.size() && ident_char(src_[i_])) ++i_;
    const std::string_view id = src_.substr(begin, i_ - begin);
    if (i_ < src_.size() && src_[i_] == '"') {
      if (id == "R" || id == "u8R" || id == "uR" || id == "UR" ||
          id == "LR") {
        raw_string(begin);
        return;
      }
      if (id == "u8" || id == "u" || id == "U" || id == "L") {
        string_literal(begin, TokKind::kString);
        return;
      }
    }
    if (i_ < src_.size() && src_[i_] == '\'' &&
        (id == "u8" || id == "u" || id == "U" || id == "L")) {
      string_literal(begin, TokKind::kChar);
      return;
    }
    emit(TokKind::kIdent, begin, i_, line_);
  }

  void punct() {
    const char c = src_[i_];
    if (c == ':' && peek(1) == ':') {
      emit(TokKind::kPunct, i_, i_ + 2, line_);
      i_ += 2;
      return;
    }
    if (c == '-' && peek(1) == '>') {
      emit(TokKind::kPunct, i_, i_ + 2, line_);
      i_ += 2;
      return;
    }
    emit(TokKind::kPunct, i_, i_ + 1, line_);
    ++i_;
    if (c == '#') include_spec();
  }

  // After a '#': if the directive is #include <...>, the angle-bracket
  // spec is one opaque kString token ("<vector>"), never '<' ident '>'.
  // (#include "..." is covered by ordinary string lexing.)
  void include_spec() {
    std::size_t j = i_;
    while (j < src_.size() && (src_[j] == ' ' || src_[j] == '\t')) ++j;
    if (src_.substr(j, 7) != "include") return;
    emit(TokKind::kIdent, j, j + 7, line_);
    j += 7;
    while (j < src_.size() && (src_[j] == ' ' || src_[j] == '\t')) ++j;
    if (j >= src_.size() || src_[j] != '<') {
      i_ = j;
      return;
    }
    const std::size_t begin = j;
    while (j < src_.size() && src_[j] != '>' && src_[j] != '\n') ++j;
    if (j < src_.size() && src_[j] == '>') ++j;
    emit(TokKind::kString, begin, j, line_);
    i_ = j;
  }

  std::string_view src_;
  std::size_t i_ = 0;
  std::uint32_t line_ = 1;
  std::vector<Token> out_;
};

}  // namespace

std::vector<Token> lex(std::string_view src) { return Lexer(src).run(); }

bool is_cpp_keyword(std::string_view ident) {
  static const std::unordered_set<std::string_view> kKeywords = {
      "alignas",   "alignof",      "and",        "asm",
      "auto",      "bool",         "break",      "case",
      "catch",     "char",         "class",      "co_await",
      "co_return", "co_yield",     "concept",    "const",
      "consteval", "constexpr",    "constinit",  "const_cast",
      "continue",  "decltype",     "default",    "delete",
      "do",        "double",       "dynamic_cast", "else",
      "enum",      "explicit",     "export",     "extern",
      "false",     "final",        "float",      "for",
      "friend",    "goto",         "if",         "inline",
      "int",       "long",         "mutable",    "namespace",
      "new",       "noexcept",     "not",        "nullptr",
      "operator",  "or",           "override",   "private",
      "protected", "public",       "register",   "reinterpret_cast",
      "requires",  "return",       "short",      "signed",
      "sizeof",    "static",       "static_assert", "static_cast",
      "struct",    "switch",       "template",   "this",
      "thread_local", "throw",     "true",       "try",
      "typedef",   "typeid",       "typename",   "union",
      "unsigned",  "using",        "virtual",    "void",
      "volatile",  "wchar_t",      "while",
  };
  return kKeywords.contains(ident);
}

}  // namespace piggyweb::analysis

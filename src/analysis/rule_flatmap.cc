// Flat-map safety. util::FlatMap invalidates every reference and
// iterator on any mutation (rehash on insert, backward-shift on erase),
// unlike std::unordered_map. This rule flags, within one function body:
//
//   * a reference/iterator obtained from a FlatMap and used after a
//     later mutating call on the same map expression;
//   * a mutating call on a FlatMap inside a range-for over that map.
//
// The tracking itself lives in the shared invalidation core
// (invalidation.h); this file only supplies the FlatMap method tables.
#include <string_view>
#include <vector>

#include "analysis/invalidation.h"
#include "analysis/rules.h"

namespace piggyweb::analysis {

namespace {

bool mutating_method(std::string_view m) {
  return m == "insert" || m == "emplace" || m == "try_emplace" ||
         m == "erase" || m == "clear" || m == "reserve" || m == "rehash";
}

bool accessor_method(std::string_view m) {
  return m == "find" || m == "at" || m == "insert" || m == "emplace" ||
         m == "try_emplace";
}

// Methods whose plain-copy result is safe to keep (`auto v = m.at(k)`):
// binding them requires an explicit '&' in the declaration.
bool reference_only_method(std::string_view m) { return m == "at"; }

}  // namespace

void check_flatmap_safety(const Project& /*project*/,
                          const SourceFile& file,
                          std::vector<Diagnostic>& out) {
  if (!file.path.starts_with("src/") && !file.path.starts_with("tools/") &&
      !file.path.starts_with("bench/")) {
    return;
  }
  InvalidationConfig config;
  config.rule = "flatmap-ref-after-mutate";
  config.type_names = {"FlatMap"};
  config.require_template_args = true;
  config.subscript_mutates = true;
  config.check_range_for = true;
  config.mutating = mutating_method;
  config.accessor = accessor_method;
  config.reference_only = reference_only_method;
  config.use_after_text =
      "FlatMap mutation invalidates references and iterators";
  config.range_for_text = "FlatMap mutation invalidates the loop iterators";
  check_invalidation(file, config, out);
}

}  // namespace piggyweb::analysis

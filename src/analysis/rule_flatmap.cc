// Flat-map safety. util::FlatMap invalidates every reference and
// iterator on any mutation (rehash on insert, backward-shift on erase),
// unlike std::unordered_map. This rule flags, within one function body:
//
//   * a reference/iterator obtained from a FlatMap and used after a
//     later mutating call on the same map expression;
//   * a mutating call on a FlatMap inside a range-for over that map.
//
// Heuristic, token-level, and deliberately receiver-sensitive: mutating
// `state.volume_of` does not invalidate a reference into `pending_`.
#include <string>
#include <string_view>
#include <vector>

#include "analysis/functions.h"
#include "analysis/lexer.h"
#include "analysis/rules.h"

namespace piggyweb::analysis {

namespace {

bool mutating_method(std::string_view m) {
  return m == "insert" || m == "emplace" || m == "try_emplace" ||
         m == "erase" || m == "clear" || m == "reserve" || m == "rehash";
}

bool accessor_method(std::string_view m) {
  return m == "find" || m == "at" || m == "insert" || m == "emplace" ||
         m == "try_emplace";
}

// Methods whose plain-copy result is safe to keep (`auto v = m.at(k)`):
// binding them requires an explicit '&' in the declaration.
bool reference_only_method(std::string_view m) { return m == "at"; }

std::size_t match_punct(const std::vector<Token>& toks, std::size_t open,
                        std::string_view opener, std::string_view closer,
                        std::size_t limit) {
  std::size_t depth = 0;
  for (std::size_t j = open; j < limit; ++j) {
    if (toks[j].is_punct(opener)) ++depth;
    if (toks[j].is_punct(closer) && --depth == 0) return j;
  }
  return limit;
}

struct Chain {
  std::vector<std::size_t> parts;  // token indices of the identifiers
  std::size_t end = 0;             // index just past the last identifier
};

// Parse `a.b->c` starting at token `i` (an identifier).
Chain parse_chain(const std::vector<Token>& toks, std::size_t i,
                  std::size_t limit) {
  Chain chain;
  chain.parts.push_back(i);
  std::size_t j = i + 1;
  while (j + 1 < limit &&
         (toks[j].is_punct(".") || toks[j].is_punct("->")) &&
         toks[j + 1].kind == TokKind::kIdent) {
    chain.parts.push_back(j + 1);
    j += 2;
  }
  chain.end = j;
  return chain;
}

std::string chain_text(const std::vector<Token>& toks, const Chain& chain,
                       std::size_t n_parts) {
  std::string out;
  for (std::size_t k = 0; k < n_parts; ++k) {
    if (k > 0) out += '.';
    out += toks[chain.parts[k]].text;
  }
  return out;
}

struct Binding {
  std::string_view name;
  std::string receiver;
  std::string_view method;
  std::size_t name_pos = 0;
  std::size_t rhs_end = 0;  // end of the initializing expression's call
  std::uint32_t line = 0;
};

struct Mutation {
  std::string receiver;
  std::string_view method;
  std::size_t start = 0;
  std::size_t end = 0;  // just past the call's closing ')' / ']'
  std::uint32_t line = 0;
};

// Declared-with-auto binding ending right before the '=' at `eq`:
//   auto it = ..., auto& v = ..., const auto* p = ..., auto [a, b] = ...
// Returns bound names (empty when the tokens before '=' are not a
// declaration) and whether the declaration takes a reference.
struct DeclInfo {
  std::vector<std::string_view> names;
  bool is_reference = false;
};

bool has_auto(const std::vector<Token>& toks, std::size_t begin,
              std::size_t end);

DeclInfo parse_decl(const std::vector<Token>& toks, std::size_t eq,
                    std::size_t begin) {
  DeclInfo decl;
  if (eq == 0) return decl;
  std::size_t j = eq - 1;
  if (toks[j].is_punct("]")) {  // structured binding
    std::vector<std::string_view> names;
    while (j > begin && !toks[j].is_punct("[")) {
      if (toks[j].kind == TokKind::kIdent) names.push_back(toks[j].text);
      --j;
    }
    if (j <= begin || !toks[j].is_punct("[")) return decl;
    if (j == begin || !has_auto(toks, begin, j)) return decl;
    decl.names = std::move(names);
    decl.is_reference = true;  // holds an iterator either way
    return decl;
  }
  if (toks[j].kind != TokKind::kIdent || is_cpp_keyword(toks[j].text)) {
    return decl;
  }
  const std::string_view name = toks[j].text;
  bool saw_auto = false;
  bool saw_ref = false;
  while (j > begin) {
    --j;
    const Token& t = toks[j];
    if (t.is_ident("auto")) saw_auto = true;
    if (t.is_punct("&") || t.is_punct("*")) saw_ref = true;
    if (t.is_ident("const")) continue;
    if (!t.is_ident("auto") && !t.is_punct("&") && !t.is_punct("*")) break;
  }
  if (!saw_auto) return decl;
  decl.names = {name};
  decl.is_reference = saw_ref;
  return decl;
}

bool has_auto(const std::vector<Token>& toks, std::size_t begin,
              std::size_t end) {
  for (std::size_t j = end; j-- > begin;) {
    if (toks[j].is_ident("auto")) return true;
    if (toks[j].is_punct(";") || toks[j].is_punct("{") ||
        toks[j].is_punct("}")) {
      return false;
    }
  }
  return false;
}

}  // namespace

void check_flatmap_safety(const Project& /*project*/,
                          const SourceFile& file,
                          std::vector<Diagnostic>& out) {
  if (!file.path.starts_with("src/") && !file.path.starts_with("tools/") &&
      !file.path.starts_with("bench/")) {
    return;
  }
  const auto& toks = file.tokens;

  // Names declared with a FlatMap type anywhere in the file.
  std::vector<std::string_view> map_names;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].is_ident("FlatMap") || !toks[i + 1].is_punct("<")) continue;
    std::size_t depth = 0;
    std::size_t j = i + 1;
    while (j < toks.size()) {
      if (toks[j].is_punct("<")) ++depth;
      if (toks[j].is_punct(">") && --depth == 0) {
        ++j;
        break;
      }
      if (toks[j].is_punct("{") || toks[j].is_punct(";")) break;
      ++j;
    }
    while (j < toks.size() &&
           (toks[j].is_punct("&") || toks[j].is_punct("*"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
        !is_cpp_keyword(toks[j].text)) {
      map_names.push_back(toks[j].text);
    }
  }
  if (map_names.empty()) return;
  const auto is_map_name = [&](std::string_view text) {
    for (const auto name : map_names) {
      if (name == text) return true;
    }
    return false;
  };

  for (const FunctionDef& fn : scan_functions(file)) {
    std::vector<Binding> bindings;
    std::vector<Mutation> mutations;

    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      if (i > fn.body_begin && (toks[i - 1].is_punct(".") ||
                                toks[i - 1].is_punct("->"))) {
        continue;  // chain continuation, already handled
      }
      const Chain chain = parse_chain(toks, i, fn.body_end);

      // Range-for over a FlatMap: `for (... : chain)` — the iterated
      // map's name is the chain's last identifier.
      if (toks[i].is_ident("for") && i + 1 < fn.body_end &&
          toks[i + 1].is_punct("(")) {
        const std::size_t close =
            match_punct(toks, i + 1, "(", ")", fn.body_end);
        std::size_t colon = close;
        std::size_t depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          if (toks[j].is_punct("(") || toks[j].is_punct("[")) ++depth;
          if (toks[j].is_punct(")") || toks[j].is_punct("]")) --depth;
          if (depth == 1 && toks[j].is_punct(":")) {
            colon = j;
            break;
          }
        }
        if (colon < close && colon + 1 < close &&
            toks[colon + 1].kind == TokKind::kIdent) {
          const Chain range = parse_chain(toks, colon + 1, close);
          if (is_map_name(toks[range.parts.back()].text) &&
              close + 1 < fn.body_end && toks[close + 1].is_punct("{")) {
            const std::string key =
                chain_text(toks, range, range.parts.size());
            const std::size_t body_close =
                match_punct(toks, close + 1, "{", "}", fn.body_end);
            for (std::size_t j = close + 2; j < body_close; ++j) {
              if (toks[j].kind != TokKind::kIdent) continue;
              if (j > 0 && (toks[j - 1].is_punct(".") ||
                            toks[j - 1].is_punct("->"))) {
                continue;
              }
              const Chain inner = parse_chain(toks, j, body_close);
              if (inner.parts.size() < 2) continue;
              const std::string_view method =
                  toks[inner.parts.back()].text;
              if (!mutating_method(method)) continue;
              if (chain_text(toks, inner, inner.parts.size() - 1) != key) {
                continue;
              }
              if (inner.end >= body_close ||
                  !toks[inner.end].is_punct("(")) {
                continue;
              }
              out.push_back(
                  {file.path, toks[j].line, "flatmap-ref-after-mutate",
                   "'" + key + "." + std::string(method) +
                       "' inside a range-for over '" + key +
                       "' — FlatMap mutation invalidates the loop "
                       "iterators"});
            }
          }
        }
        i = close;
        continue;
      }

      if (chain.parts.size() < 2) continue;
      const std::string_view last = toks[chain.parts.back()].text;
      const std::string_view map_part =
          toks[chain.parts[chain.parts.size() - 2]].text;

      // Method call on a FlatMap: receiver is the chain minus the
      // method name.
      if (is_map_name(map_part) && chain.end < fn.body_end &&
          toks[chain.end].is_punct("(")) {
        const std::string receiver =
            chain_text(toks, chain, chain.parts.size() - 1);
        const std::size_t call_close =
            match_punct(toks, chain.end, "(", ")", fn.body_end);
        if (mutating_method(last)) {
          mutations.push_back({receiver, last, i, call_close + 1,
                               toks[i].line});
        }
        if (accessor_method(last) && i > fn.body_begin &&
            toks[i - 1].is_punct("=")) {
          DeclInfo decl = parse_decl(toks, i - 1, fn.body_begin);
          const bool binds =
              !decl.names.empty() &&
              (decl.is_reference || !reference_only_method(last));
          if (binds) {
            for (const auto name : decl.names) {
              bindings.push_back({name, receiver, last, i,
                                  call_close + 1, toks[i].line});
            }
          }
        }
        i = chain.end;
        continue;
      }

      // operator[] on a FlatMap: both a mutation (may rehash) and, with
      // `auto& v = m[k]`, a reference binding.
      if (is_map_name(last) && chain.end < fn.body_end &&
          toks[chain.end].is_punct("[")) {
        const std::string receiver =
            chain_text(toks, chain, chain.parts.size());
        const std::size_t close =
            match_punct(toks, chain.end, "[", "]", fn.body_end);
        mutations.push_back(
            {receiver, "operator[]", i, close + 1, toks[i].line});
        if (i > fn.body_begin && toks[i - 1].is_punct("=")) {
          DeclInfo decl = parse_decl(toks, i - 1, fn.body_begin);
          if (!decl.names.empty() && decl.is_reference) {
            for (const auto name : decl.names) {
              bindings.push_back({name, receiver, "operator[]", i,
                                  close + 1, toks[i].line});
            }
          }
        }
        i = chain.end;
      }
    }

    // A binding is dead once its map is mutated again; any later use of
    // the bound name is a finding.
    for (const Binding& b : bindings) {
      for (const Mutation& m : mutations) {
        if (m.receiver != b.receiver) continue;
        if (m.start <= b.rhs_end) continue;  // the originating call itself
        for (std::size_t u = m.end; u < fn.body_end; ++u) {
          if (toks[u].kind == TokKind::kIdent && toks[u].text == b.name) {
            out.push_back(
                {file.path, toks[u].line, "flatmap-ref-after-mutate",
                 "'" + std::string(b.name) + "' (from '" + b.receiver +
                     "." + std::string(b.method) + "', line " +
                     std::to_string(b.line) + ") used after mutating '" +
                     m.receiver + "." + std::string(m.method) +
                     "' on line " + std::to_string(m.line) +
                     " — FlatMap mutation invalidates references and "
                     "iterators"});
            break;  // one finding per binding/mutation pair
          }
        }
        break;  // report against the first invalidating mutation only
      }
    }
  }
}

}  // namespace piggyweb::analysis

// Snapshot serializer symmetry (persist-serializer-symmetry).
//
// Every durable table in src/persist/ is a (serialize_X, deserialize_X)
// function pair over the codec's ByteWriter/ByteReader; restore safety
// rests on the write sequence and the read sequence staying mirror
// images in order and type. This rule extracts, per function taking a
// codec by reference, its codec-op stream:
//
//   * primitive calls on the codec (u8/u16/u32/u64/i64/f64/str) in
//     source order — a loop body contributes its ops once, which is
//     symmetric as long as both sides loop at the same step;
//   * calls passing the codec to another function: expanded recursively
//     when the callee is known (same file or an included persist
//     header), cycle-guarded; unknown callees become an opaque
//     "call:<suffix>" op with the serialize_/deserialize_ prefix
//     stripped so symmetric unknown calls still compare equal;
//   * calls through a function *parameter* (serialize_flat_map's
//     `write_value(out, v)`) become "param#k" ops, where k indexes the
//     non-codec parameters — the writer's WriteValue and the reader's
//     ReadValue unify even though their names differ. At a call site
//     the k-th non-codec argument is substituted: a lambda taking the
//     codec contributes its own extracted ops, a named function its
//     expansion;
//   * lambdas that capture the codec (proxy_cache's write_queue /
//     read_queue) contribute their ops once, at the definition — again
//     symmetric when both sides define and invoke in the same shape.
//
// Pairs are matched by suffix within the file that defines them; a
// mismatch is reported on the deserializer. Non-codec-parameter
// functions (whole-snapshot entry points that own a local ByteWriter)
// are out of scope — the round-trip suites cover those end-to-end.
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/functions.h"
#include "analysis/lexer.h"
#include "analysis/rules.h"

namespace piggyweb::analysis {

namespace {

bool primitive_op(std::string_view m) {
  return m == "u8" || m == "u16" || m == "u32" || m == "u64" ||
         m == "i64" || m == "f64" || m == "str";
}

std::size_t match_punct(const std::vector<Token>& toks, std::size_t open,
                        std::string_view opener, std::string_view closer,
                        std::size_t limit) {
  std::size_t depth = 0;
  for (std::size_t j = open; j < limit; ++j) {
    if (toks[j].is_punct(opener)) ++depth;
    if (toks[j].is_punct(closer) && --depth == 0) return j;
  }
  return limit;
}

std::string normalize_range(const std::vector<Token>& toks,
                            std::size_t begin, std::size_t end) {
  std::string out;
  for (std::size_t j = begin; j < end; ++j) {
    if (toks[j].is_punct("->")) {
      out += '.';
    } else {
      out += toks[j].text;
    }
  }
  return out;
}

// Top-level argument token ranges of the call whose '(' is at `open`.
std::vector<std::pair<std::size_t, std::size_t>> arg_ranges(
    const std::vector<Token>& toks, std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  std::size_t piece = open + 1;
  std::size_t depth = 0;
  for (std::size_t j = open + 1; j <= close; ++j) {
    const Token& t = toks[j];
    const bool at_end = j == close;
    if (!at_end) {
      if (t.is_punct("(") || t.is_punct("<") || t.is_punct("[") ||
          t.is_punct("{")) {
        ++depth;
        continue;
      }
      if (t.is_punct(")") || t.is_punct(">") || t.is_punct("]") ||
          t.is_punct("}")) {
        if (depth > 0) --depth;
        continue;
      }
    }
    if (at_end || (depth == 0 && t.is_punct(","))) {
      if (j > piece) args.push_back({piece, j});
      piece = j + 1;
    }
  }
  return args;
}

struct CodecFn;

// A non-codec argument at a codec-forwarding call site.
struct Arg {
  bool is_lambda = false;
  std::vector<struct Op> lambda_ops;   // when is_lambda
  std::string text;                    // normalized expression otherwise
};

struct Op {
  enum Kind { kPrim, kCall, kParamCall };
  Kind kind = kPrim;
  std::string_view prim;     // kPrim: u8..str
  std::string_view callee;   // kCall: function name
  std::size_t param = 0;     // kParamCall: non-codec parameter index
  std::vector<Arg> args;     // kCall/kParamCall: non-codec call args
  std::uint32_t line = 0;
};

// A function (or lambda) taking the codec by reference.
struct CodecFn {
  std::string_view name;
  bool is_writer = false;
  std::uint32_t line = 0;
  std::vector<std::string> noncodec_params;  // declared order
  std::vector<Op> ops;
};

// The last identifier of a parameter piece — its declared name.
std::string param_piece_name(const std::vector<Token>& toks,
                             std::size_t begin, std::size_t end) {
  for (std::size_t j = end; j-- > begin;) {
    if (toks[j].kind == TokKind::kIdent && !is_cpp_keyword(toks[j].text)) {
      if (j > begin && toks[j - 1].is_punct("::")) return {};
      return std::string(toks[j].text);
    }
    if (!toks[j].is_punct("[") && !toks[j].is_punct("]")) return {};
  }
  return {};
}

bool piece_mentions(const std::vector<Token>& toks, std::size_t begin,
                    std::size_t end, std::string_view ident) {
  for (std::size_t j = begin; j < end; ++j) {
    if (toks[j].is_ident(ident)) return true;
  }
  return false;
}

std::vector<Op> extract_ops(const std::vector<Token>& toks,
                            std::size_t begin, std::size_t end,
                            std::string_view codec,
                            const std::vector<std::string>& noncodec_params);

// Parse a lambda starting at `begin` (the '[' of its capture list):
// capture, optional params, body. Its ops are extracted with the
// lambda's own codec parameter if it declares one, else with the
// enclosing codec (capture by reference).
Arg parse_lambda_arg(const std::vector<Token>& toks, std::size_t begin,
                     std::size_t end, std::string_view outer_codec) {
  Arg arg;
  arg.is_lambda = true;
  std::size_t j = match_punct(toks, begin, "[", "]", end) + 1;
  std::string codec(outer_codec);
  std::vector<std::string> noncodec;
  if (j < end && toks[j].is_punct("(")) {
    const std::size_t close = match_punct(toks, j, "(", ")", end);
    for (const auto& [pb, pe] : arg_ranges(toks, j, close)) {
      if (piece_mentions(toks, pb, pe, "ByteWriter") ||
          piece_mentions(toks, pb, pe, "ByteReader")) {
        codec = param_piece_name(toks, pb, pe);
      } else {
        noncodec.push_back(param_piece_name(toks, pb, pe));
      }
    }
    j = close + 1;
  }
  while (j < end && !toks[j].is_punct("{")) ++j;  // mutable/noexcept/->
  if (j >= end) return arg;
  const std::size_t body_close = match_punct(toks, j, "{", "}", end);
  arg.lambda_ops = extract_ops(toks, j + 1, body_close, codec, noncodec);
  return arg;
}

std::vector<Op> extract_ops(const std::vector<Token>& toks,
                            std::size_t begin, std::size_t end,
                            std::string_view codec,
                            const std::vector<std::string>& noncodec_params) {
  std::vector<Op> ops;
  if (codec.empty()) return ops;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool chained = i > begin && (toks[i - 1].is_punct(".") ||
                                       toks[i - 1].is_punct("->"));

    // Primitive op on the codec: `out.u64(...)`, `in.str()`.
    if (!chained && t.text == codec && i + 3 < end &&
        (toks[i + 1].is_punct(".") || toks[i + 1].is_punct("->")) &&
        toks[i + 2].kind == TokKind::kIdent && toks[i + 3].is_punct("(")) {
      if (primitive_op(toks[i + 2].text)) {
        Op op;
        op.kind = Op::kPrim;
        op.prim = toks[i + 2].text;
        op.line = toks[i + 2].line;
        ops.push_back(std::move(op));
      }
      i += 2;  // non-primitive codec methods (ok/fits/skip) are ignored
      continue;
    }

    // A call forwarding the codec: one top-level argument is exactly
    // the codec variable.
    if (!chained && !is_cpp_keyword(t.text) && i + 1 < end &&
        toks[i + 1].is_punct("(") && t.text != codec) {
      const std::size_t close = match_punct(toks, i + 1, "(", ")", end);
      const auto ranges = arg_ranges(toks, i + 1, close);
      bool has_codec_arg = false;
      for (const auto& [ab, ae] : ranges) {
        if (ae - ab == 1 && toks[ab].is_ident(codec)) has_codec_arg = true;
      }
      if (!has_codec_arg) continue;  // keep scanning inside the args
      Op op;
      op.kind = Op::kCall;
      op.callee = t.text;
      op.line = t.line;
      for (std::size_t k = 0; k < noncodec_params.size(); ++k) {
        if (noncodec_params[k] == t.text) {
          op.kind = Op::kParamCall;
          op.param = k;
          break;
        }
      }
      for (const auto& [ab, ae] : ranges) {
        if (ae - ab == 1 && toks[ab].is_ident(codec)) continue;
        if (toks[ab].is_punct("[")) {
          op.args.push_back(parse_lambda_arg(toks, ab, ae, codec));
        } else {
          Arg a;
          a.text = normalize_range(toks, ab, ae);
          op.args.push_back(std::move(a));
        }
      }
      ops.push_back(std::move(op));
      i = close;  // lambda bodies in the args were handled above
      continue;
    }
  }
  return ops;
}

// Canonical op text for the flattened stream. Known calls are expanded
// recursively; a param call is resolved through the caller's argument
// list when one is in scope.
struct FlatOp {
  std::string text;
  std::uint32_t line = 0;
};

struct Flattener {
  const std::map<std::string_view, const CodecFn*>& known;
  std::set<std::string_view> expanding;

  void flatten(const std::vector<Op>& ops, const std::vector<Arg>* args,
               std::vector<FlatOp>& out) {
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::kPrim:
          out.push_back({std::string(op.prim), op.line});
          break;
        case Op::kParamCall: {
          const Arg* bound =
              args != nullptr && op.param < args->size()
                  ? &(*args)[op.param]
                  : nullptr;
          if (bound == nullptr) {
            out.push_back({"param#" + std::to_string(op.param), op.line});
          } else if (bound->is_lambda) {
            flatten(bound->lambda_ops, nullptr, out);
          } else {
            expand_named(bound->text, op, out);
          }
          break;
        }
        case Op::kCall:
          expand_named(std::string(op.callee), op, out);
          break;
      }
    }
  }

  void expand_named(const std::string& name, const Op& op,
                    std::vector<FlatOp>& out) {
    const auto it = known.find(name);
    if (it != known.end() && !expanding.contains(it->second->name)) {
      expanding.insert(it->second->name);
      flatten(it->second->ops, &op.args, out);
      expanding.erase(it->second->name);
      return;
    }
    std::string suffix = name;
    for (const std::string_view prefix : {"serialize_", "deserialize_"}) {
      if (suffix.starts_with(prefix)) suffix = suffix.substr(prefix.size());
    }
    out.push_back({"call:" + suffix, op.line});
  }
};

// Extract every codec-parameter function of `file` (writer or reader).
void collect_codec_fns(const Project& project, const SourceFile& file,
                       std::vector<CodecFn>& out) {
  const auto& toks = file.tokens;
  for (const FunctionDef& fn : project.scan_of(file).functions) {
    // Parameter pieces come from the declarator between name and body;
    // re-scan them to find a ByteWriter&/ByteReader& parameter.
    std::size_t open = 0;
    for (std::size_t j = fn.body_begin; j-- > 0;) {
      if (toks[j].is_ident(fn.name) && j + 1 < toks.size() &&
          toks[j + 1].is_punct("(") && toks[j].line == fn.line) {
        open = j + 1;
        break;
      }
    }
    if (open == 0) continue;
    const std::size_t close =
        match_punct(toks, open, "(", ")", toks.size());
    CodecFn cf;
    cf.name = fn.name;
    cf.line = fn.line;
    std::string codec;
    for (const auto& [pb, pe] : arg_ranges(toks, open, close)) {
      const bool writer = piece_mentions(toks, pb, pe, "ByteWriter");
      const bool reader = piece_mentions(toks, pb, pe, "ByteReader");
      if (writer || reader) {
        codec = param_piece_name(toks, pb, pe);
        cf.is_writer = writer;
      } else {
        cf.noncodec_params.push_back(param_piece_name(toks, pb, pe));
      }
    }
    if (codec.empty()) continue;
    cf.ops = extract_ops(toks, fn.body_begin, fn.body_end, codec,
                         cf.noncodec_params);
    out.push_back(std::move(cf));
  }
}

}  // namespace

void check_serializer_symmetry(const Project& project,
                               const SourceFile& file,
                               std::vector<Diagnostic>& out) {
  if (!file.path.starts_with("src/persist/")) return;

  // Known expansions: codec functions of this file and of every persist
  // file it (transitively) includes.
  std::vector<CodecFn> own;
  collect_codec_fns(project, file, own);
  if (own.empty()) return;
  std::vector<CodecFn> all = own;
  for (const std::string& path : project.include_closure(file)) {
    if (path == file.path || !path.starts_with("src/persist/")) continue;
    const SourceFile* f = project.find(path);
    if (f != nullptr) collect_codec_fns(project, *f, all);
  }
  std::map<std::string_view, const CodecFn*> known;
  for (const CodecFn& cf : all) known.try_emplace(cf.name, &cf);

  // Pair serialize_X / deserialize_X defined in this file, by suffix.
  for (const CodecFn& writer : own) {
    if (!writer.is_writer || !writer.name.starts_with("serialize_")) {
      continue;
    }
    const std::string_view suffix =
        writer.name.substr(std::string_view("serialize_").size());
    const CodecFn* reader = nullptr;
    for (const CodecFn& cf : own) {
      if (!cf.is_writer && cf.name.starts_with("deserialize_") &&
          cf.name.substr(std::string_view("deserialize_").size()) ==
              suffix) {
        reader = &cf;
        break;
      }
    }
    if (reader == nullptr) continue;

    std::vector<FlatOp> writes;
    std::vector<FlatOp> reads;
    Flattener{known, {}}.flatten(writer.ops, nullptr, writes);
    Flattener{known, {}}.flatten(reader->ops, nullptr, reads);

    const std::string pair_name = "'" + std::string(writer.name) + "'/'" +
                                  std::string(reader->name) + "'";
    std::size_t diverge = writes.size();
    for (std::size_t k = 0; k < writes.size() && k < reads.size(); ++k) {
      if (writes[k].text != reads[k].text) {
        diverge = k;
        break;
      }
    }
    if (diverge < writes.size() && diverge < reads.size()) {
      out.push_back(
          {file.path, reads[diverge].line, "persist-serializer-symmetry",
           pair_name + " drift at codec op " +
               std::to_string(diverge + 1) + ": writer '" +
               writes[diverge].text + "' (line " +
               std::to_string(writes[diverge].line) + ") vs reader '" +
               reads[diverge].text +
               "' — encode/decode sequences must mirror each other"});
    } else if (writes.size() != reads.size()) {
      out.push_back(
          {file.path, reader->line, "persist-serializer-symmetry",
           pair_name + " drift: writer emits " +
               std::to_string(writes.size()) +
               " codec op(s) but reader consumes " +
               std::to_string(reads.size()) +
               " — encode/decode sequences must mirror each other"});
    }
  }
}

}  // namespace piggyweb::analysis
